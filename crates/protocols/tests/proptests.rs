//! Randomized tests on the protocol codecs: encode/decode round trips
//! with arbitrary field values, and decoder robustness against
//! arbitrary byte soup. Driven by `simnet::rng::DeterministicRng`
//! (reproducible, no external property-testing dependency).

use protocols::coap::{CoapCode, CoapMessage, CoapType};
use protocols::enocean::{Eep, EepReading, Erp1Telegram, Rorg};
use protocols::ieee802154::{Address, FrameType, MacFrame, PanId};
use protocols::opcua::{
    AttributeId, DataValue, Message, NodeId, ReadValueId, StatusCode, Variant, WriteValue,
};
use protocols::zigbee::{report_builder, ClusterId, ZclAttribute, ZclValue, ZigbeeFrame};
use simnet::rng::DeterministicRng;

const CASES: usize = 256;

fn rand_bytes(rng: &mut DeterministicRng, max_len: usize) -> Vec<u8> {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn string_from(rng: &mut DeterministicRng, charset: &str, lo: usize, hi: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.next_range(lo as u64, hi as u64) as usize;
    (0..len)
        .map(|_| chars[rng.next_bounded(chars.len() as u64) as usize])
        .collect()
}

fn rand_address(rng: &mut DeterministicRng) -> Address {
    match rng.next_bounded(3) {
        0 => Address::None,
        1 => Address::Short(rng.next_u64() as u16),
        _ => Address::Extended(rng.next_u64()),
    }
}

fn rand_zcl_value(rng: &mut DeterministicRng) -> ZclValue {
    match rng.next_bounded(7) {
        0 => ZclValue::Bool(rng.chance(0.5)),
        1 => ZclValue::U8(rng.next_u64() as u8),
        2 => ZclValue::U16(rng.next_u64() as u16),
        3 => ZclValue::U32(rng.next_u64() as u32),
        4 => ZclValue::U48(rng.next_bounded(1 << 48)),
        5 => ZclValue::I16(rng.next_u64() as i16),
        _ => ZclValue::I32(rng.next_u64() as i32),
    }
}

fn rand_variant(rng: &mut DeterministicRng) -> Variant {
    match rng.next_bounded(6) {
        0 => Variant::Boolean(rng.chance(0.5)),
        1 => Variant::Int32(rng.next_u64() as i32),
        2 => Variant::Int64(rng.next_u64() as i64),
        3 => {
            // No NaN (PartialEq).
            let f = f64::from_bits(rng.next_u64());
            Variant::Double(if f.is_nan() { 0.5 } else { f })
        }
        4 => Variant::Str(string_from(rng, "abcXYZ019 ._é✓", 0, 16)),
        _ => Variant::DateTime(rng.next_u64() as i64),
    }
}

fn rand_node_id(rng: &mut DeterministicRng) -> NodeId {
    if rng.chance(0.5) {
        NodeId::numeric(rng.next_u64() as u16, rng.next_u64() as u32)
    } else {
        NodeId::string(rng.next_u64() as u16, string_from(rng, "abcdefgh.", 0, 12))
    }
}

#[test]
fn mac_frame_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x0154_0001);
    for _ in 0..CASES {
        let pan = rng.next_u64() as u16;
        let dest = rand_address(&mut rng);
        let src = rand_address(&mut rng);
        let dest_pan = if dest == Address::None {
            None
        } else {
            Some(PanId(pan))
        };
        // Wire consistency: a present source needs a PAN, either its own
        // or via PAN-id compression (which requires a destination PAN).
        let src_pan = if src != Address::None && dest_pan.is_none() {
            Some(PanId(pan.wrapping_add(1)))
        } else {
            None
        };
        let frame = MacFrame {
            frame_type: FrameType::Data,
            ack_request: rng.chance(0.5),
            frame_pending: rng.chance(0.5),
            sequence: rng.next_u64() as u8,
            dest_pan,
            dest,
            src_pan,
            src,
            payload: rand_bytes(&mut rng, 99),
        };
        let back = MacFrame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
    }
}

#[test]
fn mac_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x0154_0002);
    for _ in 0..CASES {
        let _ = MacFrame::decode(&rand_bytes(&mut rng, 63));
    }
}

#[test]
fn mac_bit_flips_never_yield_wrong_frames() {
    let mut rng = DeterministicRng::seed_from(0x0154_0003);
    for _ in 0..CASES {
        let mut payload = rand_bytes(&mut rng, 39);
        if payload.is_empty() {
            payload.push(0);
        }
        let frame = MacFrame::data(PanId(7), Address::Short(1), Address::Short(2), 1, payload);
        let mut bytes = frame.encode();
        let bit = rng.next_bounded((bytes.len() * 8) as u64) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        // A flipped bit must either fail the FCS or (never) decode to the
        // original; silently yielding a *different* valid frame is the
        // 1-in-65536 CRC collision, impossible for single-bit flips.
        if let Ok(decoded) = MacFrame::decode(&bytes) {
            assert_ne!(decoded, frame);
        }
    }
}

#[test]
fn zigbee_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x0154_0004);
    for _ in 0..CASES {
        let nwk = rng.next_u64() as u16;
        let seq = rng.next_u64() as u8;
        let values: Vec<ZclValue> = (0..rng.next_bounded(6))
            .map(|_| rand_zcl_value(&mut rng))
            .collect();
        let mut b = report_builder(nwk, ClusterId::SIMPLE_METERING).sequence(seq);
        for (i, v) in values.iter().enumerate() {
            b = b.attribute(ZclAttribute::new(i as u16, *v));
        }
        let frame = b.build();
        let back = ZigbeeFrame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
    }
}

#[test]
fn zigbee_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x0154_0005);
    for _ in 0..CASES {
        let _ = ZigbeeFrame::decode(&rand_bytes(&mut rng, 63));
    }
}

#[test]
fn erp1_esp3_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x0154_0006);
    for _ in 0..CASES {
        let data4: Vec<u8> = (0..4).map(|_| rng.next_u64() as u8).collect();
        let t = Erp1Telegram::new(
            Rorg::FourBs,
            data4,
            rng.next_u64() as u32,
            rng.next_u64() as u8,
        );
        let back = Erp1Telegram::from_esp3(&t.to_esp3()).unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn esp3_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x0154_0007);
    for _ in 0..CASES {
        let _ = Erp1Telegram::from_esp3(&rand_bytes(&mut rng, 63));
    }
}

#[test]
fn enocean_temperature_quantization_bounded() {
    let mut rng = DeterministicRng::seed_from(0x0154_0008);
    for _ in 0..CASES {
        let t = rng.next_f64_range(0.0, 40.0);
        let tel = Eep::A50205.encode_reading(&EepReading::Temperature { celsius: t }, 1);
        match Eep::A50205.decode_reading(&tel).unwrap() {
            EepReading::Temperature { celsius } => {
                assert!((celsius - t).abs() <= 40.0 / 255.0 / 2.0 + 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn opcua_messages_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x0154_0009);
    for _ in 0..CASES {
        let reads: Vec<NodeId> = (0..rng.next_bounded(5))
            .map(|_| rand_node_id(&mut rng))
            .collect();
        let variants: Vec<Variant> = (0..rng.next_bounded(5))
            .map(|_| rand_variant(&mut rng))
            .collect();
        let statuses: Vec<u32> = (0..rng.next_bounded(5))
            .map(|_| rng.next_u64() as u32)
            .collect();
        let messages = [
            Message::ReadRequest {
                nodes: reads
                    .iter()
                    .cloned()
                    .map(|node_id| ReadValueId {
                        node_id,
                        attribute: AttributeId::Value,
                    })
                    .collect(),
            },
            Message::ReadResponse {
                results: variants
                    .iter()
                    .cloned()
                    .map(|v| DataValue::good(v, 7))
                    .collect(),
            },
            Message::WriteRequest {
                nodes: reads
                    .iter()
                    .cloned()
                    .zip(variants.iter().cloned())
                    .map(|(node_id, value)| WriteValue {
                        node_id,
                        attribute: AttributeId::Value,
                        value,
                    })
                    .collect(),
            },
            Message::WriteResponse {
                results: statuses.iter().map(|&s| StatusCode(s)).collect(),
            },
        ];
        for m in &messages {
            assert_eq!(&Message::decode(&m.encode()).unwrap(), m);
        }
    }
}

#[test]
fn opcua_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x0154_000A);
    for _ in 0..CASES {
        let _ = Message::decode(&rand_bytes(&mut rng, 95));
    }
}

#[test]
fn coap_round_trip() {
    let mut rng = DeterministicRng::seed_from(0x0154_000B);
    for _ in 0..CASES {
        let path: Vec<String> = (0..rng.next_bounded(5))
            .map(|_| string_from(&mut rng, "abcXYZ019._-", 1, 24))
            .collect();
        let msg = CoapMessage {
            mtype: match rng.next_bounded(4) {
                0 => CoapType::Confirmable,
                1 => CoapType::NonConfirmable,
                2 => CoapType::Acknowledgement,
                _ => CoapType::Reset,
            },
            code: *[CoapCode::GET, CoapCode::POST, CoapCode::CONTENT]
                .get(rng.next_bounded(3) as usize)
                .unwrap(),
            message_id: rng.next_u64() as u16,
            token: rand_bytes(&mut rng, 8),
            uri_path: path,
            content_format: if rng.chance(0.5) {
                Some(rng.next_u64() as u16)
            } else {
                None
            },
            payload: rand_bytes(&mut rng, 63),
        };
        assert_eq!(CoapMessage::decode(&msg.encode()).expect("round trip"), msg);
    }
}

#[test]
fn coap_decoder_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x0154_000C);
    for _ in 0..CASES {
        let _ = CoapMessage::decode(&rand_bytes(&mut rng, 95));
    }
}
