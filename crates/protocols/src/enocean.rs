//! EnOcean ESP3 packets and ERP1 radio telegrams.
//!
//! EnOcean devices are energy-harvesting (batteryless) radio sensors.
//! A gateway receives **ERP1** radio telegrams wrapped in **ESP3** serial
//! packets. This module implements:
//!
//! * the ESP3 framing (sync 0x55, header with CRC-8, data + optional data
//!   with CRC-8 — polynomial 0x07);
//! * ERP1 telegrams for the three classic RORGs: RPS (0xF6, rocker
//!   switches), 1BS (0xD5, contacts) and 4BS (0xA5, four data bytes);
//! * EnOcean Equipment Profiles (EEP) used in district monitoring:
//!   A5-02-05 (temperature 0–40 °C), A5-04-01 (temperature + humidity),
//!   A5-12-01 (automated meter reading), D5-00-01 (single input contact)
//!   and F6-02-01 (rocker switch).

use crate::ieee802154::Reader;
use crate::ProtocolError;

/// CRC-8 with polynomial 0x07 (init 0), as used by ESP3.
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            if crc & 0x80 != 0 {
                crc = (crc << 1) ^ 0x07;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// The radio-telegram organization (RORG) byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rorg {
    /// Repeated switch communication (rocker switches), 1 data byte.
    Rps,
    /// 1-byte communication (contacts), 1 data byte.
    OneBs,
    /// 4-byte communication (most sensors), 4 data bytes.
    FourBs,
}

impl Rorg {
    /// The RORG discriminator byte.
    pub fn byte(self) -> u8 {
        match self {
            Rorg::Rps => 0xF6,
            Rorg::OneBs => 0xD5,
            Rorg::FourBs => 0xA5,
        }
    }

    /// Number of user-data bytes for this RORG.
    pub fn data_len(self) -> usize {
        match self {
            Rorg::Rps | Rorg::OneBs => 1,
            Rorg::FourBs => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        match b {
            0xF6 => Ok(Rorg::Rps),
            0xD5 => Ok(Rorg::OneBs),
            0xA5 => Ok(Rorg::FourBs),
            other => Err(ProtocolError::Unsupported {
                context: "enocean rorg",
                value: u64::from(other),
            }),
        }
    }
}

/// An ERP1 radio telegram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Erp1Telegram {
    /// The telegram organization.
    pub rorg: Rorg,
    /// User data; length must equal `rorg.data_len()`.
    pub data: Vec<u8>,
    /// The 32-bit unique sender id.
    pub sender_id: u32,
    /// The status byte (repeater count, integrity bits).
    pub status: u8,
}

impl Erp1Telegram {
    /// Creates a telegram, validating the data length.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rorg.data_len()` — telegram builders are
    /// internal producers, so a mismatch is a programming error.
    pub fn new(rorg: Rorg, data: Vec<u8>, sender_id: u32, status: u8) -> Self {
        assert_eq!(
            data.len(),
            rorg.data_len(),
            "ERP1 data length must match the RORG"
        );
        Erp1Telegram {
            rorg,
            data,
            sender_id,
            status,
        }
    }

    /// Encodes the telegram body (RORG + data + sender + status).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.data.len() + 4);
        out.push(self.rorg.byte());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.sender_id.to_be_bytes());
        out.push(self.status);
        out
    }

    /// Decodes a telegram body.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation or an unknown RORG.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        const CTX: &str = "erp1 telegram";
        let mut r = Reader::new(bytes, CTX);
        let rorg = Rorg::from_byte(r.u8()?)?;
        let data = r.take(rorg.data_len())?.to_vec();
        let sender_hi = r.u8()?;
        let sender = u32::from_be_bytes([sender_hi, r.u8()?, r.u8()?, r.u8()?]);
        let status = r.u8()?;
        if r.remaining() != 0 {
            return Err(ProtocolError::Malformed {
                reason: "trailing bytes after erp1 telegram",
            });
        }
        Ok(Erp1Telegram {
            rorg,
            data,
            sender_id: sender,
            status,
        })
    }

    /// Wraps the telegram in an ESP3 packet (type 1, RADIO_ERP1).
    pub fn to_esp3(&self) -> Vec<u8> {
        let data = self.encode();
        // Optional data: subTelNum=3, destination broadcast, dBm=0xFF,
        // security level 0 — the fixed shape gateways emit.
        let optional = [0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x00];
        let mut out = Vec::with_capacity(6 + data.len() + optional.len() + 2);
        out.push(0x55);
        let header = [
            (data.len() >> 8) as u8,
            data.len() as u8,
            optional.len() as u8,
            0x01, // packet type RADIO_ERP1
        ];
        out.extend_from_slice(&header);
        out.push(crc8(&header));
        out.extend_from_slice(&data);
        out.extend_from_slice(&optional);
        let mut payload_crc = Vec::with_capacity(data.len() + optional.len());
        payload_crc.extend_from_slice(&data);
        payload_crc.extend_from_slice(&optional);
        out.push(crc8(&payload_crc));
        out
    }

    /// Extracts the telegram from an ESP3 packet, verifying both CRCs.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on a bad sync byte, CRC mismatch,
    /// truncation, or a non-ERP1 packet type.
    pub fn from_esp3(bytes: &[u8]) -> Result<Self, ProtocolError> {
        const CTX: &str = "esp3 packet";
        if bytes.is_empty() {
            return Err(ProtocolError::Truncated { context: CTX });
        }
        if bytes[0] != 0x55 {
            return Err(ProtocolError::BadSync { found: bytes[0] });
        }
        if bytes.len() < 6 {
            return Err(ProtocolError::Truncated { context: CTX });
        }
        let header = &bytes[1..5];
        let header_crc = bytes[5];
        let expected = crc8(header);
        if header_crc != expected {
            return Err(ProtocolError::BadChecksum {
                context: "esp3 header",
                expected: u32::from(expected),
                found: u32::from(header_crc),
            });
        }
        let data_len = (usize::from(header[0]) << 8) | usize::from(header[1]);
        let opt_len = usize::from(header[2]);
        let packet_type = header[3];
        if packet_type != 0x01 {
            return Err(ProtocolError::Unsupported {
                context: "esp3 packet type",
                value: u64::from(packet_type),
            });
        }
        let total = 6 + data_len + opt_len + 1;
        if bytes.len() < total {
            return Err(ProtocolError::Truncated { context: CTX });
        }
        let payload = &bytes[6..6 + data_len + opt_len];
        let found = bytes[6 + data_len + opt_len];
        let expected = crc8(payload);
        if found != expected {
            return Err(ProtocolError::BadChecksum {
                context: "esp3 data",
                expected: u32::from(expected),
                found: u32::from(found),
            });
        }
        Erp1Telegram::decode(&payload[..data_len])
    }
}

/// Decoded sensor readings per EnOcean Equipment Profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EepReading {
    /// A5-02-05: temperature 0–40 °C.
    Temperature {
        /// Degrees Celsius.
        celsius: f64,
    },
    /// A5-04-01: temperature 0–40 °C and relative humidity 0–100 %.
    TemperatureHumidity {
        /// Degrees Celsius.
        celsius: f64,
        /// Percent relative humidity.
        humidity: f64,
    },
    /// A5-12-01: automated meter reading, cumulative value in kWh.
    MeterReading {
        /// Kilowatt-hours after applying the divisor.
        kilowatt_hours: f64,
        /// The meter channel (tariff) 0–15.
        channel: u8,
    },
    /// D5-00-01: single input contact.
    Contact {
        /// True when the contact is closed.
        closed: bool,
    },
    /// F6-02-01: rocker switch action.
    Rocker {
        /// True when a button is pressed (energy-bow pressed).
        pressed: bool,
        /// The rocker button code 0–3.
        button: u8,
    },
}

/// The EnOcean Equipment Profiles the framework understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Eep {
    /// A5-02-05: temperature sensor 0–40 °C.
    A50205,
    /// A5-04-01: temperature + humidity sensor.
    A50401,
    /// A5-12-01: automated meter reading (electricity).
    A51201,
    /// D5-00-01: single input contact.
    D50001,
    /// F6-02-01: two-rocker switch.
    F60201,
}

impl Eep {
    /// The RORG this profile rides on.
    pub fn rorg(self) -> Rorg {
        match self {
            Eep::A50205 | Eep::A50401 | Eep::A51201 => Rorg::FourBs,
            Eep::D50001 => Rorg::OneBs,
            Eep::F60201 => Rorg::Rps,
        }
    }

    /// The profile name in `RR-FF-TT` notation.
    pub fn name(self) -> &'static str {
        match self {
            Eep::A50205 => "A5-02-05",
            Eep::A50401 => "A5-04-01",
            Eep::A51201 => "A5-12-01",
            Eep::D50001 => "D5-00-01",
            Eep::F60201 => "F6-02-01",
        }
    }

    /// Encodes a reading into a telegram from `sender_id`.
    ///
    /// # Panics
    ///
    /// Panics if `reading` does not match the profile, or a field is out
    /// of the profile's range (e.g. temperature outside 0–40 °C is
    /// clamped, but a mismatched variant is a programming error).
    pub fn encode_reading(self, reading: &EepReading, sender_id: u32) -> Erp1Telegram {
        match (self, reading) {
            (Eep::A50205, EepReading::Temperature { celsius }) => {
                // DB1 holds 255..0 over 0..40 degC (inverted scale).
                let t = celsius.clamp(0.0, 40.0);
                let raw = (255.0 - t / 40.0 * 255.0).round() as u8;
                // DB0 bit3 = 1 marks a data telegram (not teach-in).
                Erp1Telegram::new(Rorg::FourBs, vec![0, 0, raw, 0x08], sender_id, 0)
            }
            (Eep::A50401, EepReading::TemperatureHumidity { celsius, humidity }) => {
                let h = humidity.clamp(0.0, 100.0);
                let t = celsius.clamp(0.0, 40.0);
                let hraw = (h / 100.0 * 250.0).round() as u8;
                let traw = (t / 40.0 * 250.0).round() as u8;
                // DB0 bit3 data telegram, bit1 temperature available.
                Erp1Telegram::new(Rorg::FourBs, vec![0, hraw, traw, 0x0A], sender_id, 0)
            }
            (
                Eep::A51201,
                EepReading::MeterReading {
                    kilowatt_hours,
                    channel,
                },
            ) => {
                assert!(*channel < 16, "meter channel out of range");
                // 24-bit counter, divisor fixed at 10 (0.1 kWh units).
                let counter = ((kilowatt_hours * 10.0).round().clamp(0.0, 16_777_215.0)) as u32;
                let db0 = 0x08 // data telegram (LRN bit set)
                    | 0x01 // divisor 10 (DIV field DB0.0-1 = 01)
                    | ((channel & 0x0F) << 4);
                Erp1Telegram::new(
                    Rorg::FourBs,
                    vec![
                        (counter >> 16) as u8,
                        (counter >> 8) as u8,
                        counter as u8,
                        db0,
                    ],
                    sender_id,
                    0,
                )
            }
            (Eep::D50001, EepReading::Contact { closed }) => {
                // Bit3 = learn (1 = data), bit0 = contact.
                let byte = 0x08 | u8::from(*closed);
                Erp1Telegram::new(Rorg::OneBs, vec![byte], sender_id, 0)
            }
            (Eep::F60201, EepReading::Rocker { pressed, button }) => {
                assert!(*button < 4, "rocker button out of range");
                let byte = if *pressed {
                    (button << 5) | 0x10 // energy bow pressed
                } else {
                    0x00
                };
                // Status 0x30: T21 + NU flags for RPS data telegrams.
                Erp1Telegram::new(Rorg::Rps, vec![byte], sender_id, 0x30)
            }
            (profile, reading) => {
                panic!(
                    "reading {reading:?} does not match profile {}",
                    profile.name()
                )
            }
        }
    }

    /// Decodes a telegram according to this profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] if the telegram's RORG does
    /// not match the profile or marks a teach-in telegram.
    pub fn decode_reading(self, telegram: &Erp1Telegram) -> Result<EepReading, ProtocolError> {
        if telegram.rorg != self.rorg() {
            return Err(ProtocolError::Malformed {
                reason: "telegram rorg does not match the profile",
            });
        }
        match self {
            Eep::A50205 => {
                let db0 = telegram.data[3];
                if db0 & 0x08 == 0 {
                    return Err(ProtocolError::Malformed {
                        reason: "teach-in telegram",
                    });
                }
                let raw = telegram.data[2];
                Ok(EepReading::Temperature {
                    celsius: (255.0 - f64::from(raw)) / 255.0 * 40.0,
                })
            }
            Eep::A50401 => {
                let db0 = telegram.data[3];
                if db0 & 0x08 == 0 {
                    return Err(ProtocolError::Malformed {
                        reason: "teach-in telegram",
                    });
                }
                Ok(EepReading::TemperatureHumidity {
                    celsius: f64::from(telegram.data[2]) / 250.0 * 40.0,
                    humidity: f64::from(telegram.data[1]) / 250.0 * 100.0,
                })
            }
            Eep::A51201 => {
                let db0 = telegram.data[3];
                if db0 & 0x08 == 0 {
                    return Err(ProtocolError::Malformed {
                        reason: "teach-in telegram",
                    });
                }
                let counter = (u32::from(telegram.data[0]) << 16)
                    | (u32::from(telegram.data[1]) << 8)
                    | u32::from(telegram.data[2]);
                let divisor = match db0 & 0b11 {
                    0 => 1.0,
                    1 => 10.0,
                    2 => 100.0,
                    _ => 1000.0,
                };
                Ok(EepReading::MeterReading {
                    kilowatt_hours: f64::from(counter) / divisor,
                    channel: db0 >> 4,
                })
            }
            Eep::D50001 => {
                let byte = telegram.data[0];
                if byte & 0x08 == 0 {
                    return Err(ProtocolError::Malformed {
                        reason: "teach-in telegram",
                    });
                }
                Ok(EepReading::Contact {
                    closed: byte & 0x01 != 0,
                })
            }
            Eep::F60201 => {
                let byte = telegram.data[0];
                let pressed = byte & 0x10 != 0;
                Ok(EepReading::Rocker {
                    pressed,
                    button: (byte >> 5) & 0b11,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc8_known_vectors() {
        // CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0x00);
    }

    #[test]
    fn erp1_round_trip_all_rorgs() {
        for (rorg, data) in [
            (Rorg::Rps, vec![0x30]),
            (Rorg::OneBs, vec![0x09]),
            (Rorg::FourBs, vec![1, 2, 3, 8]),
        ] {
            let t = Erp1Telegram::new(rorg, data, 0x0180_92AB, 0x30);
            assert_eq!(Erp1Telegram::decode(&t.encode()).unwrap(), t);
        }
    }

    #[test]
    fn esp3_round_trip() {
        let t = Erp1Telegram::new(Rorg::FourBs, vec![0, 0, 128, 8], 0x0180_92AB, 0);
        let packet = t.to_esp3();
        assert_eq!(packet[0], 0x55);
        assert_eq!(Erp1Telegram::from_esp3(&packet).unwrap(), t);
    }

    #[test]
    fn esp3_detects_corruption() {
        let t = Erp1Telegram::new(Rorg::OneBs, vec![0x09], 42, 0);
        let good = t.to_esp3();

        let mut bad_sync = good.clone();
        bad_sync[0] = 0x54;
        assert!(matches!(
            Erp1Telegram::from_esp3(&bad_sync),
            Err(ProtocolError::BadSync { .. })
        ));

        let mut bad_header = good.clone();
        bad_header[2] ^= 0x01;
        assert!(matches!(
            Erp1Telegram::from_esp3(&bad_header),
            Err(ProtocolError::BadChecksum { .. })
        ));

        let mut bad_data = good.clone();
        bad_data[7] ^= 0x01;
        assert!(matches!(
            Erp1Telegram::from_esp3(&bad_data),
            Err(ProtocolError::BadChecksum { .. })
        ));

        for cut in [0, 3, 8] {
            assert!(Erp1Telegram::from_esp3(&good[..cut]).is_err());
        }
    }

    #[test]
    fn temperature_profile_round_trip() {
        for t in [0.0, 10.5, 21.3, 39.9, 40.0] {
            let tel = Eep::A50205.encode_reading(&EepReading::Temperature { celsius: t }, 1);
            match Eep::A50205.decode_reading(&tel).unwrap() {
                EepReading::Temperature { celsius } => {
                    // 8-bit quantization over 40 degC: ±0.08 degC.
                    assert!((celsius - t).abs() < 0.08, "{t} -> {celsius}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn temperature_out_of_range_clamped() {
        let tel = Eep::A50205.encode_reading(&EepReading::Temperature { celsius: 99.0 }, 1);
        match Eep::A50205.decode_reading(&tel).unwrap() {
            EepReading::Temperature { celsius } => assert!((celsius - 40.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn temperature_humidity_round_trip() {
        let tel = Eep::A50401.encode_reading(
            &EepReading::TemperatureHumidity {
                celsius: 22.0,
                humidity: 55.0,
            },
            7,
        );
        match Eep::A50401.decode_reading(&tel).unwrap() {
            EepReading::TemperatureHumidity { celsius, humidity } => {
                assert!((celsius - 22.0).abs() < 0.1);
                assert!((humidity - 55.0).abs() < 0.3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn meter_reading_round_trip() {
        let tel = Eep::A51201.encode_reading(
            &EepReading::MeterReading {
                kilowatt_hours: 12_345.6,
                channel: 2,
            },
            9,
        );
        match Eep::A51201.decode_reading(&tel).unwrap() {
            EepReading::MeterReading {
                kilowatt_hours,
                channel,
            } => {
                assert!((kilowatt_hours - 12_345.6).abs() < 0.051);
                assert_eq!(channel, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contact_round_trip() {
        for closed in [true, false] {
            let tel = Eep::D50001.encode_reading(&EepReading::Contact { closed }, 3);
            assert_eq!(
                Eep::D50001.decode_reading(&tel).unwrap(),
                EepReading::Contact { closed }
            );
        }
    }

    #[test]
    fn rocker_round_trip() {
        for button in 0..4 {
            let tel = Eep::F60201.encode_reading(
                &EepReading::Rocker {
                    pressed: true,
                    button,
                },
                3,
            );
            assert_eq!(
                Eep::F60201.decode_reading(&tel).unwrap(),
                EepReading::Rocker {
                    pressed: true,
                    button
                }
            );
        }
        let tel = Eep::F60201.encode_reading(
            &EepReading::Rocker {
                pressed: false,
                button: 0,
            },
            3,
        );
        assert_eq!(
            Eep::F60201.decode_reading(&tel).unwrap(),
            EepReading::Rocker {
                pressed: false,
                button: 0
            }
        );
    }

    #[test]
    fn teach_in_telegram_rejected() {
        // DB0 bit3 = 0 marks teach-in for 4BS profiles.
        let tel = Erp1Telegram::new(Rorg::FourBs, vec![0, 0, 100, 0x00], 1, 0);
        assert!(matches!(
            Eep::A50205.decode_reading(&tel),
            Err(ProtocolError::Malformed { .. })
        ));
    }

    #[test]
    fn profile_rorg_mismatch_rejected() {
        let tel = Erp1Telegram::new(Rorg::OneBs, vec![0x09], 1, 0);
        assert!(Eep::A50205.decode_reading(&tel).is_err());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn wrong_data_length_panics() {
        Erp1Telegram::new(Rorg::FourBs, vec![1, 2], 1, 0);
    }

    #[test]
    fn profile_names() {
        assert_eq!(Eep::A51201.name(), "A5-12-01");
        assert_eq!(Eep::A51201.rorg(), Rorg::FourBs);
        assert_eq!(Eep::F60201.rorg(), Rorg::Rps);
    }
}
