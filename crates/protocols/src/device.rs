//! Simulated field devices.
//!
//! Stand-ins for the physical hardware of the paper's test sites: each
//! device turns a physical reading into the **exact bytes** its protocol
//! would put on the air, so the Device-proxy's dedicated layer exercises
//! the real decode path. Uplink devices ([`UplinkDevice`]) push frames;
//! the OPC UA device ([`OpcUaFieldServer`]) is a server that is polled.

use dimmer_core::QuantityKind;

use crate::enocean::{Eep, EepReading};
use crate::ieee802154::{Address, MacFrame, PanId};
use crate::opcua::{AddressSpace, Message, NodeId, Variant};
use crate::zigbee::{self, ClusterId, ZclAttribute, ZclValue};
use crate::{ProtocolError, ProtocolKind};

/// Marker byte opening the raw-802.15.4 application payload.
pub const RAW_SENSOR_MARKER: u8 = 0xA0;

/// A device that spontaneously pushes uplink frames (802.15.4, ZigBee,
/// EnOcean). The caller decides *when* to emit; the device decides *what
/// bytes* that emission is. `Send` because devices live inside simulated
/// nodes, which a sharded parallel run executes on worker threads.
pub trait UplinkDevice: Send {
    /// The protocol family of the emitted frames.
    fn protocol(&self) -> ProtocolKind;

    /// The quantity this device reports.
    fn quantity(&self) -> QuantityKind;

    /// Produces the wire bytes reporting `value` (in the quantity's
    /// canonical unit).
    fn emit(&mut self, value: f64) -> Vec<u8>;
}

/// Quantity codes used in the raw 802.15.4 application payload.
fn quantity_code(q: QuantityKind) -> u8 {
    match q {
        QuantityKind::Temperature => 1,
        QuantityKind::ActivePower => 2,
        QuantityKind::ElectricalEnergy => 3,
        QuantityKind::ThermalEnergy => 4,
        QuantityKind::Voltage => 5,
        QuantityKind::Current => 6,
        QuantityKind::FlowRate => 7,
        QuantityKind::Illuminance => 8,
        QuantityKind::Humidity => 9,
        QuantityKind::Co2 => 10,
        QuantityKind::Occupancy => 11,
        QuantityKind::SwitchState => 12,
        // `QuantityKind` is non-exhaustive; new kinds get no raw code
        // until one is assigned here.
        _ => 0,
    }
}

/// Reverses the raw quantity code used in 802.15.4 sensor payloads.
///
/// # Errors
///
/// Returns [`ProtocolError::Unsupported`] for unknown codes.
pub fn quantity_from_code(code: u8) -> Result<QuantityKind, ProtocolError> {
    QuantityKind::all()
        .iter()
        .copied()
        .find(|&q| quantity_code(q) == code)
        .ok_or(ProtocolError::Unsupported {
            context: "raw sensor quantity code",
            value: u64::from(code),
        })
}

/// A raw IEEE 802.15.4 sensor: MAC data frames whose payload is
/// `[marker, quantity, f32-LE value]`.
#[derive(Debug, Clone)]
pub struct Ieee802154Sensor {
    pan: PanId,
    short_address: u16,
    coordinator: u16,
    quantity: QuantityKind,
    sequence: u8,
}

impl Ieee802154Sensor {
    /// Creates a sensor on `pan` with MAC short address `short_address`,
    /// reporting to coordinator `0x0000`.
    pub fn new(pan: PanId, short_address: u16, quantity: QuantityKind) -> Self {
        Ieee802154Sensor {
            pan,
            short_address,
            coordinator: 0x0000,
            quantity,
            sequence: 0,
        }
    }

    /// The MAC short address.
    pub fn short_address(&self) -> u16 {
        self.short_address
    }

    /// Parses the application payload of a frame this sensor type emits.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the payload is not a raw sensor
    /// report.
    pub fn parse_payload(payload: &[u8]) -> Result<(QuantityKind, f64), ProtocolError> {
        if payload.len() != 6 {
            return Err(ProtocolError::Malformed {
                reason: "raw sensor payload must be 6 bytes",
            });
        }
        if payload[0] != RAW_SENSOR_MARKER {
            return Err(ProtocolError::BadSync { found: payload[0] });
        }
        let quantity = quantity_from_code(payload[1])?;
        let value = f32::from_le_bytes(payload[2..6].try_into().expect("length checked"));
        Ok((quantity, f64::from(value)))
    }
}

impl UplinkDevice for Ieee802154Sensor {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::Ieee802154
    }

    fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    fn emit(&mut self, value: f64) -> Vec<u8> {
        let mut payload = Vec::with_capacity(6);
        payload.push(RAW_SENSOR_MARKER);
        payload.push(quantity_code(self.quantity));
        payload.extend_from_slice(&(value as f32).to_le_bytes());
        let frame = MacFrame::data(
            self.pan,
            Address::Short(self.coordinator),
            Address::Short(self.short_address),
            self.sequence,
            payload,
        );
        self.sequence = self.sequence.wrapping_add(1);
        frame.encode()
    }
}

/// A ZigBee sensor reporting through the ZCL cluster matching its
/// quantity.
#[derive(Debug, Clone)]
pub struct ZigbeeSensor {
    nwk_address: u16,
    quantity: QuantityKind,
    sequence: u8,
}

impl ZigbeeSensor {
    /// Creates a sensor with NWK short address `nwk_address`.
    ///
    /// # Panics
    ///
    /// Panics if no ZCL cluster maps to `quantity` (see
    /// [`ZigbeeSensor::cluster_for`]).
    pub fn new(nwk_address: u16, quantity: QuantityKind) -> Self {
        assert!(
            ZigbeeSensor::cluster_for(quantity).is_some(),
            "no zigbee cluster for {quantity}"
        );
        ZigbeeSensor {
            nwk_address,
            quantity,
            sequence: 0,
        }
    }

    /// The NWK short address.
    pub fn nwk_address(&self) -> u16 {
        self.nwk_address
    }

    /// The cluster and attribute that report `quantity`, if supported.
    pub fn cluster_for(quantity: QuantityKind) -> Option<(ClusterId, u16)> {
        match quantity {
            QuantityKind::Temperature => Some((ClusterId::TEMPERATURE_MEASUREMENT, 0x0000)),
            QuantityKind::Humidity => Some((ClusterId::RELATIVE_HUMIDITY, 0x0000)),
            QuantityKind::ActivePower => Some((ClusterId::ELECTRICAL_MEASUREMENT, 0x050B)),
            QuantityKind::ElectricalEnergy => Some((ClusterId::SIMPLE_METERING, 0x0000)),
            QuantityKind::SwitchState | QuantityKind::Occupancy => {
                Some((ClusterId::ON_OFF, 0x0000))
            }
            _ => None,
        }
    }

    /// Converts a canonical-unit value into the cluster's wire scaling.
    pub fn scale_to_wire(quantity: QuantityKind, value: f64) -> ZclValue {
        match quantity {
            // centidegrees Celsius
            QuantityKind::Temperature => ZclValue::I16((value * 100.0) as i16),
            // centipercent
            QuantityKind::Humidity => ZclValue::U16((value * 100.0) as u16),
            // watts
            QuantityKind::ActivePower => ZclValue::I16(value as i16),
            // metering: 0.01 kWh ticks
            QuantityKind::ElectricalEnergy => ZclValue::U48((value * 100.0).max(0.0) as u64),
            _ => ZclValue::Bool(value != 0.0),
        }
    }

    /// Converts a wire value back to the canonical unit.
    pub fn scale_from_wire(quantity: QuantityKind, value: ZclValue) -> f64 {
        match quantity {
            QuantityKind::Temperature => value.as_f64() / 100.0,
            QuantityKind::Humidity => value.as_f64() / 100.0,
            QuantityKind::ElectricalEnergy => value.as_f64() / 100.0,
            _ => value.as_f64(),
        }
    }
}

impl UplinkDevice for ZigbeeSensor {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::Zigbee
    }

    fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    fn emit(&mut self, value: f64) -> Vec<u8> {
        let (cluster, attr_id) =
            ZigbeeSensor::cluster_for(self.quantity).expect("checked in constructor");
        let frame = zigbee::report_builder(self.nwk_address, cluster)
            .sequence(self.sequence)
            .attribute(ZclAttribute::new(
                attr_id,
                ZigbeeSensor::scale_to_wire(self.quantity, value),
            ))
            .build();
        self.sequence = self.sequence.wrapping_add(1);
        frame.encode()
    }
}

/// An EnOcean sensor emitting ESP3-wrapped ERP1 telegrams.
#[derive(Debug, Clone)]
pub struct EnoceanSensor {
    sender_id: u32,
    eep: Eep,
}

impl EnoceanSensor {
    /// Creates a sensor with unique radio id `sender_id` speaking `eep`.
    pub fn new(sender_id: u32, eep: Eep) -> Self {
        EnoceanSensor { sender_id, eep }
    }

    /// The 32-bit radio id.
    pub fn sender_id(&self) -> u32 {
        self.sender_id
    }

    /// The equipment profile.
    pub fn eep(&self) -> Eep {
        self.eep
    }

    fn reading_for(&self, value: f64) -> EepReading {
        match self.eep {
            Eep::A50205 => EepReading::Temperature { celsius: value },
            Eep::A50401 => EepReading::TemperatureHumidity {
                celsius: value,
                humidity: 50.0,
            },
            Eep::A51201 => EepReading::MeterReading {
                kilowatt_hours: value,
                channel: 0,
            },
            Eep::D50001 => EepReading::Contact {
                closed: value != 0.0,
            },
            Eep::F60201 => EepReading::Rocker {
                pressed: value != 0.0,
                button: 0,
            },
        }
    }
}

impl UplinkDevice for EnoceanSensor {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::EnOcean
    }

    fn quantity(&self) -> QuantityKind {
        match self.eep {
            Eep::A50205 | Eep::A50401 => QuantityKind::Temperature,
            Eep::A51201 => QuantityKind::ElectricalEnergy,
            Eep::D50001 | Eep::F60201 => QuantityKind::SwitchState,
        }
    }

    fn emit(&mut self, value: f64) -> Vec<u8> {
        self.eep
            .encode_reading(&self.reading_for(value), self.sender_id)
            .to_esp3()
    }
}

/// A simulated OPC UA field server (e.g. a heating-plant PLC gateway).
///
/// Unlike the uplink devices it is *polled*: the proxy sends encoded
/// [`Message`] requests to [`OpcUaFieldServer::handle_bytes`].
#[derive(Debug)]
pub struct OpcUaFieldServer {
    space: AddressSpace,
    value_node: NodeId,
    quantity: QuantityKind,
}

impl OpcUaFieldServer {
    /// Creates a server exposing one variable for `quantity` under a
    /// plant object, readable at the returned [`OpcUaFieldServer::value_node`].
    pub fn new(quantity: QuantityKind) -> Self {
        let mut space = AddressSpace::new();
        let root = NodeId::numeric(1, 1);
        let value_node = NodeId::string(1, format!("plant.{quantity}"));
        space.add_object(root.clone(), "Plant", None);
        space.add_variable(value_node.clone(), quantity.as_str(), Some(&root), false);
        OpcUaFieldServer {
            space,
            value_node,
            quantity,
        }
    }

    /// The node id holding the live value.
    pub fn value_node(&self) -> &NodeId {
        &self.value_node
    }

    /// The quantity served.
    pub fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    /// Updates the live value (the "field" side changing).
    pub fn update(&mut self, value: f64, timestamp_millis: i64) {
        self.space
            .set_value(&self.value_node, Variant::Double(value), timestamp_millis)
            .expect("value node exists");
    }

    /// Grants direct access to the address space (for browsing tests).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Handles an encoded service request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the request bytes do not decode.
    pub fn handle_bytes(&mut self, request: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        let msg = Message::decode(request)?;
        Ok(self.space.handle(&msg).encode())
    }
}

/// A constrained CoAP sensor node (e.g. a 6LoWPAN mote) exposing:
///
/// * `GET sensor` → `2.05 Content` with a JSON body
///   `{"value": .., "unix_millis": ..}`;
/// * `POST actuate` with `{"value": ..}` → `2.04 Changed`.
///
/// Like [`OpcUaFieldServer`] it is *polled* by its proxy.
#[derive(Debug)]
pub struct CoapFieldServer {
    quantity: QuantityKind,
    value: f64,
    unix_millis: i64,
    /// Actuation values received via POST, most recent last.
    pub actuations: Vec<f64>,
}

impl CoapFieldServer {
    /// Creates a server for `quantity` with no reading yet.
    pub fn new(quantity: QuantityKind) -> Self {
        CoapFieldServer {
            quantity,
            value: 0.0,
            unix_millis: 0,
            actuations: Vec::new(),
        }
    }

    /// The quantity served.
    pub fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    /// Updates the live reading.
    pub fn update(&mut self, value: f64, unix_millis: i64) {
        self.value = value;
        self.unix_millis = unix_millis;
    }

    /// Handles an encoded CoAP request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the request bytes do not decode.
    pub fn handle_bytes(&mut self, request: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        use crate::coap::{content_format, CoapCode, CoapMessage};
        let msg = CoapMessage::decode(request)?;
        let response = match (msg.code, msg.path().as_str()) {
            (CoapCode::GET, "sensor") => {
                let body = format!(
                    "{{\"value\":{},\"unix_millis\":{}}}",
                    self.value, self.unix_millis
                );
                msg.respond(
                    CoapCode::CONTENT,
                    Some(content_format::JSON),
                    body.into_bytes(),
                )
            }
            (CoapCode::POST, "actuate") => {
                let value = std::str::from_utf8(&msg.payload)
                    .ok()
                    .and_then(|text| dimmer_core::json::from_str(text).ok())
                    .and_then(|v| v.get("value").and_then(dimmer_core::Value::as_f64));
                match value {
                    Some(v) => {
                        self.actuations.push(v);
                        msg.respond(CoapCode::CHANGED, None, Vec::new())
                    }
                    None => msg.respond(CoapCode::METHOD_NOT_ALLOWED, None, Vec::new()),
                }
            }
            (CoapCode::GET, _) => msg.respond(CoapCode::NOT_FOUND, None, Vec::new()),
            _ => msg.respond(CoapCode::METHOD_NOT_ALLOWED, None, Vec::new()),
        };
        Ok(response.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcua::{AttributeId, ReadValueId};

    #[test]
    fn raw_sensor_emits_valid_mac_frames() {
        let mut dev = Ieee802154Sensor::new(PanId(0x1234), 0x0042, QuantityKind::Temperature);
        let bytes = dev.emit(21.5);
        let frame = MacFrame::decode(&bytes).unwrap();
        let (q, v) = Ieee802154Sensor::parse_payload(&frame.payload).unwrap();
        assert_eq!(q, QuantityKind::Temperature);
        assert!((v - 21.5).abs() < 1e-6);
        // Sequence increments.
        let second = MacFrame::decode(&dev.emit(22.0)).unwrap();
        assert_eq!(second.sequence, frame.sequence.wrapping_add(1));
    }

    #[test]
    fn raw_payload_rejects_garbage() {
        assert!(Ieee802154Sensor::parse_payload(&[]).is_err());
        assert!(Ieee802154Sensor::parse_payload(&[0xA0, 1, 0, 0]).is_err());
        assert!(Ieee802154Sensor::parse_payload(&[0x00, 1, 0, 0, 0, 0]).is_err());
        assert!(Ieee802154Sensor::parse_payload(&[0xA0, 99, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn quantity_codes_round_trip() {
        for &q in QuantityKind::all() {
            assert_eq!(quantity_from_code(quantity_code(q)).unwrap(), q);
        }
    }

    #[test]
    fn zigbee_sensor_scales_per_cluster() {
        let mut dev = ZigbeeSensor::new(0x77, QuantityKind::Temperature);
        let frame = zigbee::ZigbeeFrame::decode(&dev.emit(21.57)).unwrap();
        assert_eq!(frame.cluster, ClusterId::TEMPERATURE_MEASUREMENT);
        assert_eq!(frame.attributes[0].value, ZclValue::I16(2157));
        assert_eq!(
            ZigbeeSensor::scale_from_wire(QuantityKind::Temperature, frame.attributes[0].value),
            21.57
        );
    }

    #[test]
    fn zigbee_energy_uses_metering_u48() {
        let mut dev = ZigbeeSensor::new(0x78, QuantityKind::ElectricalEnergy);
        let frame = zigbee::ZigbeeFrame::decode(&dev.emit(12_345.67)).unwrap();
        assert_eq!(frame.cluster, ClusterId::SIMPLE_METERING);
        match frame.attributes[0].value {
            ZclValue::U48(v) => assert_eq!(v, 1_234_567),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no zigbee cluster")]
    fn zigbee_unsupported_quantity_panics() {
        ZigbeeSensor::new(1, QuantityKind::Co2);
    }

    #[test]
    fn enocean_sensor_emits_decodable_esp3() {
        let mut dev = EnoceanSensor::new(0x0180_92AB, Eep::A50205);
        let packet = dev.emit(18.0);
        let telegram = crate::enocean::Erp1Telegram::from_esp3(&packet).unwrap();
        assert_eq!(telegram.sender_id, 0x0180_92AB);
        match Eep::A50205.decode_reading(&telegram).unwrap() {
            EepReading::Temperature { celsius } => assert!((celsius - 18.0).abs() < 0.1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn enocean_quantities_match_profiles() {
        assert_eq!(
            EnoceanSensor::new(1, Eep::A51201).quantity(),
            QuantityKind::ElectricalEnergy
        );
        assert_eq!(
            EnoceanSensor::new(1, Eep::D50001).quantity(),
            QuantityKind::SwitchState
        );
    }

    #[test]
    fn opcua_server_answers_polls() {
        let mut server = OpcUaFieldServer::new(QuantityKind::ThermalEnergy);
        server.update(4321.0, 5_000);
        let request = Message::ReadRequest {
            nodes: vec![ReadValueId {
                node_id: server.value_node().clone(),
                attribute: AttributeId::Value,
            }],
        }
        .encode();
        let response = server.handle_bytes(&request).unwrap();
        let Message::ReadResponse { results } = Message::decode(&response).unwrap() else {
            panic!("wrong response");
        };
        assert_eq!(results[0].value, Some(Variant::Double(4321.0)));
        assert_eq!(results[0].source_timestamp, Some(5_000));
    }

    #[test]
    fn coap_server_serves_and_actuates() {
        use crate::coap::{CoapCode, CoapMessage};
        let mut server = CoapFieldServer::new(QuantityKind::Co2);
        server.update(417.0, 9_000);
        let get = CoapMessage::get(1, vec![7], "sensor");
        let resp = CoapMessage::decode(&server.handle_bytes(&get.encode()).unwrap()).unwrap();
        assert_eq!(resp.code, CoapCode::CONTENT);
        assert_eq!(resp.token, vec![7]);
        let body =
            dimmer_core::json::from_str(std::str::from_utf8(&resp.payload).unwrap()).unwrap();
        assert_eq!(
            body.get("value").and_then(dimmer_core::Value::as_f64),
            Some(417.0)
        );

        let post = CoapMessage::post_json(2, vec![8], "actuate", b"{\"value\":1.0}".to_vec());
        let resp = CoapMessage::decode(&server.handle_bytes(&post.encode()).unwrap()).unwrap();
        assert_eq!(resp.code, CoapCode::CHANGED);
        assert_eq!(server.actuations, vec![1.0]);

        let missing = CoapMessage::get(3, vec![], "ghost");
        let resp = CoapMessage::decode(&server.handle_bytes(&missing.encode()).unwrap()).unwrap();
        assert_eq!(resp.code, CoapCode::NOT_FOUND);
        assert!(server.handle_bytes(&[0xFF, 0x00]).is_err());
    }

    #[test]
    fn opcua_server_rejects_garbage() {
        let mut server = OpcUaFieldServer::new(QuantityKind::Temperature);
        assert!(server.handle_bytes(&[0xFF, 0x00]).is_err());
    }
}
