//! # dimmer-protocols — wire-level device protocols
//!
//! The paper's Device-proxies speak four field protocols: **IEEE
//! 802.15.4**, **ZigBee**, **EnOcean**, and **OPC UA** (the bridge to
//! legacy wired standards). This crate implements bit-accurate codecs for
//! the subset of each protocol that district energy devices actually use,
//! plus builders for the frames simulated sensors emit.
//!
//! The proxies' *dedicated layer* (see `dimmer-proxy`) decodes these
//! frames and translates them into the common data format; the
//! translation cost is measured by experiment E3.
//!
//! | Module | Standard | Subset |
//! |---|---|---|
//! | [`ieee802154`] | IEEE 802.15.4-2006 MAC | data/ack/beacon frames, short + extended addressing, FCS (CRC-16/CCITT) |
//! | [`zigbee`] | ZigBee PRO / ZCL | NWK + APS headers, ZCL attribute reports for the on/off, temperature, humidity, electrical-measurement and metering clusters |
//! | [`enocean`] | EnOcean ESP3 / ERP1 | RPS, 1BS and 4BS telegrams with common EEPs (A5-02-05, A5-04-01, A5-12-01, D5-00-01, F6-02-01), CRC-8 |
//! | [`opcua`] | OPC UA binary | NodeId, Variant, DataValue, Read/Write/Browse services over a tiny address space |
//!
//! ## Example
//!
//! ```
//! use protocols::zigbee::{self, ClusterId, ZclAttribute, ZclValue};
//!
//! # fn main() -> Result<(), protocols::ProtocolError> {
//! // A ZigBee temperature report: 21.57 degC as centidegrees.
//! let frame = zigbee::report_builder(0x1234, ClusterId::TEMPERATURE_MEASUREMENT)
//!     .attribute(ZclAttribute::new(0x0000, ZclValue::I16(2157)))
//!     .build();
//! let bytes = frame.encode();
//! let back = zigbee::ZigbeeFrame::decode(&bytes)?;
//! assert_eq!(back, frame);
//! # Ok(())
//! # }
//! ```

pub mod coap;
pub mod device;
pub mod enocean;
pub mod ieee802154;
pub mod opcua;
pub mod zigbee;

mod error;

pub use error::ProtocolError;

use std::fmt;

/// The device protocol families supported by the infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Raw IEEE 802.15.4 MAC devices.
    Ieee802154,
    /// ZigBee (NWK/APS/ZCL on top of 802.15.4).
    Zigbee,
    /// EnOcean energy-harvesting radio.
    EnOcean,
    /// OPC UA, bridging legacy wired automation.
    OpcUa,
    /// CoAP over 6LoWPAN — the IoT direction the paper's §III names.
    Coap,
}

impl ProtocolKind {
    /// The lowercase name used in ontology device properties.
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolKind::Ieee802154 => "ieee802154",
            ProtocolKind::Zigbee => "zigbee",
            ProtocolKind::EnOcean => "enocean",
            ProtocolKind::OpcUa => "opcua",
            ProtocolKind::Coap => "coap",
        }
    }

    /// Parses a name produced by [`ProtocolKind::as_str`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownProtocol`] for anything else.
    pub fn parse(s: &str) -> Result<Self, ProtocolError> {
        ProtocolKind::all()
            .iter()
            .copied()
            .find(|p| p.as_str() == s)
            .ok_or_else(|| ProtocolError::UnknownProtocol(s.to_owned()))
    }

    /// All protocol kinds.
    pub fn all() -> &'static [ProtocolKind] {
        &[
            ProtocolKind::Ieee802154,
            ProtocolKind::Zigbee,
            ProtocolKind::EnOcean,
            ProtocolKind::OpcUa,
            ProtocolKind::Coap,
        ]
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_round_trip() {
        for &p in ProtocolKind::all() {
            assert_eq!(ProtocolKind::parse(p.as_str()).unwrap(), p);
        }
        assert!(ProtocolKind::parse("lonworks").is_err());
    }
}
