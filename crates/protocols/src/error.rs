//! The protocol error type.

use std::fmt;

/// Errors raised by the protocol codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The byte stream ended before the frame was complete.
    Truncated {
        /// Which layer/field was being decoded.
        context: &'static str,
    },
    /// A checksum or FCS did not match.
    BadChecksum {
        /// Which checksum failed.
        context: &'static str,
        /// The expected value.
        expected: u32,
        /// The value found in the frame.
        found: u32,
    },
    /// A sync byte / magic number was wrong.
    BadSync {
        /// The byte found instead.
        found: u8,
    },
    /// A field held a value the codec does not support.
    Unsupported {
        /// Which field.
        context: &'static str,
        /// The unsupported raw value.
        value: u64,
    },
    /// The frame is syntactically valid but semantically inconsistent.
    Malformed {
        /// What is wrong.
        reason: &'static str,
    },
    /// An unknown protocol name was parsed.
    UnknownProtocol(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { context } => {
                write!(f, "truncated frame while decoding {context}")
            }
            ProtocolError::BadChecksum {
                context,
                expected,
                found,
            } => write!(
                f,
                "bad {context} checksum: expected {expected:#x}, found {found:#x}"
            ),
            ProtocolError::BadSync { found } => {
                write!(f, "bad sync byte {found:#04x}")
            }
            ProtocolError::Unsupported { context, value } => {
                write!(f, "unsupported {context} value {value:#x}")
            }
            ProtocolError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            ProtocolError::UnknownProtocol(s) => write!(f, "unknown protocol {s:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = ProtocolError::BadChecksum {
            context: "fcs",
            expected: 0xBEEF,
            found: 0xDEAD,
        };
        let text = e.to_string();
        assert!(text.contains("fcs") && text.contains("0xbeef") && text.contains("0xdead"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
