//! An OPC UA binary-protocol subset.
//!
//! The paper uses an OPC UA proxy to give the infrastructure backward
//! compatibility with wired automation standards (BACnet/KNX gateways,
//! PLCs). This module implements the slice of OPC UA such a proxy needs:
//!
//! * [`NodeId`]s (numeric and string identifiers, namespaced);
//! * [`Variant`] values and [`DataValue`]s with status + source timestamp;
//! * the **Read**, **Write** and **Browse** services in OPC UA binary
//!   encoding (little-endian, length-prefixed strings);
//! * a server-side [`AddressSpace`] that answers those services.

use std::collections::BTreeMap;

use crate::ieee802154::Reader;
use crate::ProtocolError;

/// An OPC UA node identifier: a namespace index plus a numeric or string
/// identifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// The namespace index.
    pub namespace: u16,
    /// The identifier within the namespace.
    pub identifier: Identifier,
}

/// The identifier part of a [`NodeId`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Identifier {
    /// Numeric identifier (encoding byte 0x01 — four-byte form).
    Numeric(u32),
    /// String identifier (encoding byte 0x03).
    Str(String),
}

impl NodeId {
    /// A numeric node id.
    pub fn numeric(namespace: u16, id: u32) -> Self {
        NodeId {
            namespace,
            identifier: Identifier::Numeric(id),
        }
    }

    /// A string node id.
    pub fn string(namespace: u16, id: impl Into<String>) -> Self {
        NodeId {
            namespace,
            identifier: Identifier::Str(id.into()),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match &self.identifier {
            Identifier::Numeric(id) => {
                out.push(0x01);
                out.extend_from_slice(&self.namespace.to_le_bytes());
                out.extend_from_slice(&id.to_le_bytes());
            }
            Identifier::Str(s) => {
                out.push(0x03);
                out.extend_from_slice(&self.namespace.to_le_bytes());
                encode_string(s, out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0x01 => Ok(NodeId {
                namespace: r.u16()?,
                identifier: Identifier::Numeric(r.u32()?),
            }),
            0x03 => Ok(NodeId {
                namespace: r.u16()?,
                identifier: Identifier::Str(decode_string(r)?),
            }),
            other => Err(ProtocolError::Unsupported {
                context: "opcua nodeid encoding",
                value: u64::from(other),
            }),
        }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.identifier {
            Identifier::Numeric(id) => write!(f, "ns={};i={}", self.namespace, id),
            Identifier::Str(s) => write!(f, "ns={};s={}", self.namespace, s),
        }
    }
}

/// A typed OPC UA value.
#[derive(Debug, Clone, PartialEq)]
pub enum Variant {
    /// Boolean (type 1).
    Boolean(bool),
    /// Int32 (type 6).
    Int32(i32),
    /// Int64 (type 8).
    Int64(i64),
    /// Double (type 11).
    Double(f64),
    /// String (type 12).
    Str(String),
    /// DateTime as milliseconds since the Unix epoch (type 13; real OPC UA
    /// uses 100 ns ticks since 1601 — the proxy converts at the boundary).
    DateTime(i64),
}

impl Variant {
    fn type_id(&self) -> u8 {
        match self {
            Variant::Boolean(_) => 1,
            Variant::Int32(_) => 6,
            Variant::Int64(_) => 8,
            Variant::Double(_) => 11,
            Variant::Str(_) => 12,
            Variant::DateTime(_) => 13,
        }
    }

    /// The value widened to `f64`, if numeric or boolean.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Variant::Boolean(b) => Some(f64::from(u8::from(*b))),
            Variant::Int32(v) => Some(f64::from(*v)),
            Variant::Int64(v) => Some(*v as f64),
            Variant::Double(v) => Some(*v),
            _ => None,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.type_id());
        match self {
            Variant::Boolean(b) => out.push(u8::from(*b)),
            Variant::Int32(v) => out.extend_from_slice(&v.to_le_bytes()),
            Variant::Int64(v) => out.extend_from_slice(&v.to_le_bytes()),
            Variant::Double(v) => out.extend_from_slice(&v.to_le_bytes()),
            Variant::Str(s) => encode_string(s, out),
            Variant::DateTime(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(match r.u8()? {
            1 => Variant::Boolean(r.u8()? != 0),
            6 => Variant::Int32(r.u32()? as i32),
            8 => Variant::Int64(r.u64()? as i64),
            11 => Variant::Double(f64::from_le_bytes(
                r.take(8)?.try_into().expect("length checked"),
            )),
            12 => Variant::Str(decode_string(r)?),
            13 => Variant::DateTime(r.u64()? as i64),
            other => {
                return Err(ProtocolError::Unsupported {
                    context: "opcua variant type",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// An OPC UA status code; `0` is *Good*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StatusCode(pub u32);

impl StatusCode {
    /// The operation succeeded.
    pub const GOOD: StatusCode = StatusCode(0);
    /// The node id refers to a node that does not exist.
    pub const BAD_NODE_ID_UNKNOWN: StatusCode = StatusCode(0x8034_0000);
    /// The requested attribute is not supported by the node.
    pub const BAD_ATTRIBUTE_ID_INVALID: StatusCode = StatusCode(0x8035_0000);
    /// The node is not writable.
    pub const BAD_NOT_WRITABLE: StatusCode = StatusCode(0x803B_0000);
    /// The supplied value's type does not match the variable's type.
    pub const BAD_TYPE_MISMATCH: StatusCode = StatusCode(0x8074_0000);

    /// Whether the code reports success.
    pub fn is_good(self) -> bool {
        self.0 & 0x8000_0000 == 0
    }
}

/// A value with quality and source timestamp, as returned by Read.
#[derive(Debug, Clone, PartialEq)]
pub struct DataValue {
    /// The value, absent when `status` is bad.
    pub value: Option<Variant>,
    /// The quality of the value.
    pub status: StatusCode,
    /// When the underlying source produced the value (Unix millis).
    pub source_timestamp: Option<i64>,
}

impl DataValue {
    /// A good value stamped at `timestamp_millis`.
    pub fn good(value: Variant, timestamp_millis: i64) -> Self {
        DataValue {
            value: Some(value),
            status: StatusCode::GOOD,
            source_timestamp: Some(timestamp_millis),
        }
    }

    /// A bad-quality placeholder carrying only a status.
    pub fn bad(status: StatusCode) -> Self {
        DataValue {
            value: None,
            status,
            source_timestamp: None,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut mask = 0u8;
        if self.value.is_some() {
            mask |= 0x01;
        }
        mask |= 0x02; // status always present
        if self.source_timestamp.is_some() {
            mask |= 0x04;
        }
        out.push(mask);
        if let Some(v) = &self.value {
            v.encode_into(out);
        }
        out.extend_from_slice(&self.status.0.to_le_bytes());
        if let Some(t) = self.source_timestamp {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        let mask = r.u8()?;
        let value = if mask & 0x01 != 0 {
            Some(Variant::decode(r)?)
        } else {
            None
        };
        let status = if mask & 0x02 != 0 {
            StatusCode(r.u32()?)
        } else {
            StatusCode::GOOD
        };
        let source_timestamp = if mask & 0x04 != 0 {
            Some(r.u64()? as i64)
        } else {
            None
        };
        Ok(DataValue {
            value,
            status,
            source_timestamp,
        })
    }
}

/// The attribute of a node a service addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttributeId {
    /// The node's class (object/variable).
    NodeClass,
    /// The browse name.
    BrowseName,
    /// The current value (variables only).
    Value,
}

impl AttributeId {
    fn id(self) -> u32 {
        match self {
            AttributeId::NodeClass => 2,
            AttributeId::BrowseName => 3,
            AttributeId::Value => 13,
        }
    }

    fn from_id(id: u32) -> Result<Self, ProtocolError> {
        match id {
            2 => Ok(AttributeId::NodeClass),
            3 => Ok(AttributeId::BrowseName),
            13 => Ok(AttributeId::Value),
            other => Err(ProtocolError::Unsupported {
                context: "opcua attribute id",
                value: u64::from(other),
            }),
        }
    }
}

/// The class of an address-space node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeClass {
    /// A folder/object node.
    Object,
    /// A variable node holding a value.
    Variable,
}

impl NodeClass {
    fn id(self) -> i32 {
        match self {
            NodeClass::Object => 1,
            NodeClass::Variable => 2,
        }
    }

    fn from_id(id: i32) -> Result<Self, ProtocolError> {
        match id {
            1 => Ok(NodeClass::Object),
            2 => Ok(NodeClass::Variable),
            other => Err(ProtocolError::Unsupported {
                context: "opcua node class",
                value: other as u64,
            }),
        }
    }
}

/// One read target: a node attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadValueId {
    /// The node to read.
    pub node_id: NodeId,
    /// Which attribute of the node.
    pub attribute: AttributeId,
}

/// One write target with the value to write.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteValue {
    /// The node to write.
    pub node_id: NodeId,
    /// Which attribute (only [`AttributeId::Value`] is writable).
    pub attribute: AttributeId,
    /// The value to write.
    pub value: Variant,
}

/// A browse result entry: one forward reference from the browsed node.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceDescription {
    /// The target node.
    pub node_id: NodeId,
    /// Its browse name.
    pub browse_name: String,
    /// Its class.
    pub node_class: NodeClass,
}

/// An OPC UA service message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Read one or more attributes.
    ReadRequest {
        /// The attributes to read.
        nodes: Vec<ReadValueId>,
    },
    /// Results in request order.
    ReadResponse {
        /// One result per requested attribute.
        results: Vec<DataValue>,
    },
    /// Write one or more values.
    WriteRequest {
        /// The writes to perform.
        nodes: Vec<WriteValue>,
    },
    /// Per-write status codes in request order.
    WriteResponse {
        /// One status per requested write.
        results: Vec<StatusCode>,
    },
    /// Browse the forward references of one node.
    BrowseRequest {
        /// The node to browse.
        node_id: NodeId,
    },
    /// The references found.
    BrowseResponse {
        /// Status of the browse itself.
        status: StatusCode,
        /// One entry per child.
        references: Vec<ReferenceDescription>,
    },
}

impl Message {
    /// Encodes the message in OPC UA binary style with a leading service
    /// discriminator byte.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Message::ReadRequest { nodes } => {
                out.push(1);
                encode_len(nodes.len(), &mut out);
                for n in nodes {
                    n.node_id.encode_into(&mut out);
                    out.extend_from_slice(&n.attribute.id().to_le_bytes());
                }
            }
            Message::ReadResponse { results } => {
                out.push(2);
                encode_len(results.len(), &mut out);
                for r in results {
                    r.encode_into(&mut out);
                }
            }
            Message::WriteRequest { nodes } => {
                out.push(3);
                encode_len(nodes.len(), &mut out);
                for n in nodes {
                    n.node_id.encode_into(&mut out);
                    out.extend_from_slice(&n.attribute.id().to_le_bytes());
                    n.value.encode_into(&mut out);
                }
            }
            Message::WriteResponse { results } => {
                out.push(4);
                encode_len(results.len(), &mut out);
                for r in results {
                    out.extend_from_slice(&r.0.to_le_bytes());
                }
            }
            Message::BrowseRequest { node_id } => {
                out.push(5);
                node_id.encode_into(&mut out);
            }
            Message::BrowseResponse { status, references } => {
                out.push(6);
                out.extend_from_slice(&status.0.to_le_bytes());
                encode_len(references.len(), &mut out);
                for r in references {
                    r.node_id.encode_into(&mut out);
                    encode_string(&r.browse_name, &mut out);
                    out.extend_from_slice(&r.node_class.id().to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a message produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation or unknown discriminators.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        const CTX: &str = "opcua message";
        let mut r = Reader::new(bytes, CTX);
        let msg = match r.u8()? {
            1 => {
                let n = decode_len(&mut r)?;
                let mut nodes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let node_id = NodeId::decode(&mut r)?;
                    let attribute = AttributeId::from_id(r.u32()?)?;
                    nodes.push(ReadValueId { node_id, attribute });
                }
                Message::ReadRequest { nodes }
            }
            2 => {
                let n = decode_len(&mut r)?;
                let mut results = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    results.push(DataValue::decode(&mut r)?);
                }
                Message::ReadResponse { results }
            }
            3 => {
                let n = decode_len(&mut r)?;
                let mut nodes = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let node_id = NodeId::decode(&mut r)?;
                    let attribute = AttributeId::from_id(r.u32()?)?;
                    let value = Variant::decode(&mut r)?;
                    nodes.push(WriteValue {
                        node_id,
                        attribute,
                        value,
                    });
                }
                Message::WriteRequest { nodes }
            }
            4 => {
                let n = decode_len(&mut r)?;
                let mut results = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    results.push(StatusCode(r.u32()?));
                }
                Message::WriteResponse { results }
            }
            5 => Message::BrowseRequest {
                node_id: NodeId::decode(&mut r)?,
            },
            6 => {
                let status = StatusCode(r.u32()?);
                let n = decode_len(&mut r)?;
                let mut references = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let node_id = NodeId::decode(&mut r)?;
                    let browse_name = decode_string(&mut r)?;
                    let node_class = NodeClass::from_id(r.u32()? as i32)?;
                    references.push(ReferenceDescription {
                        node_id,
                        browse_name,
                        node_class,
                    });
                }
                Message::BrowseResponse { status, references }
            }
            other => {
                return Err(ProtocolError::Unsupported {
                    context: "opcua service",
                    value: u64::from(other),
                })
            }
        };
        if r.remaining() != 0 {
            return Err(ProtocolError::Malformed {
                reason: "trailing bytes after opcua message",
            });
        }
        Ok(msg)
    }
}

fn encode_len(n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, ProtocolError> {
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(ProtocolError::Malformed {
            reason: "implausible array length",
        });
    }
    Ok(n)
}

fn encode_string(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as i32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn decode_string(r: &mut Reader<'_>) -> Result<String, ProtocolError> {
    let len = r.u32()? as i32;
    if len < 0 {
        return Ok(String::new());
    }
    let bytes = r.take(len as usize)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed {
        reason: "string is not valid utf-8",
    })
}

struct SpaceNode {
    browse_name: String,
    node_class: NodeClass,
    value: Option<DataValue>,
    writable: bool,
    children: Vec<NodeId>,
}

/// A server-side address space answering Read/Write/Browse.
///
/// ```
/// use protocols::opcua::{AddressSpace, NodeId, Variant, Message, ReadValueId, AttributeId};
/// let mut space = AddressSpace::new();
/// let folder = NodeId::numeric(1, 100);
/// let var = NodeId::string(1, "boiler.supply_temp");
/// space.add_object(folder.clone(), "Plant", None);
/// space.add_variable(var.clone(), "SupplyTemp", Some(&folder), false);
/// space.set_value(&var, Variant::Double(71.5), 0).unwrap();
/// let resp = space.handle(&Message::ReadRequest {
///     nodes: vec![ReadValueId { node_id: var, attribute: AttributeId::Value }],
/// });
/// match resp {
///     Message::ReadResponse { results } => assert!(results[0].status.is_good()),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Default)]
pub struct AddressSpace {
    nodes: BTreeMap<NodeId, SpaceNode>,
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the space has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an object (folder) node, optionally under `parent`.
    pub fn add_object(
        &mut self,
        id: NodeId,
        browse_name: impl Into<String>,
        parent: Option<&NodeId>,
    ) {
        self.add(
            id,
            browse_name.into(),
            NodeClass::Object,
            None,
            false,
            parent,
        );
    }

    /// Adds a variable node, optionally under `parent`.
    pub fn add_variable(
        &mut self,
        id: NodeId,
        browse_name: impl Into<String>,
        parent: Option<&NodeId>,
        writable: bool,
    ) {
        self.add(
            id,
            browse_name.into(),
            NodeClass::Variable,
            Some(DataValue::bad(StatusCode::GOOD)),
            writable,
            parent,
        );
    }

    fn add(
        &mut self,
        id: NodeId,
        browse_name: String,
        node_class: NodeClass,
        value: Option<DataValue>,
        writable: bool,
        parent: Option<&NodeId>,
    ) {
        self.nodes.insert(
            id.clone(),
            SpaceNode {
                browse_name,
                node_class,
                value,
                writable,
                children: Vec::new(),
            },
        );
        if let Some(p) = parent {
            if let Some(pn) = self.nodes.get_mut(p) {
                pn.children.push(id);
            }
        }
    }

    /// Sets a variable's current value (server-internal update).
    ///
    /// # Errors
    ///
    /// Returns [`StatusCode::BAD_NODE_ID_UNKNOWN`] if the node does not
    /// exist or is not a variable.
    pub fn set_value(
        &mut self,
        id: &NodeId,
        value: Variant,
        timestamp_millis: i64,
    ) -> Result<(), StatusCode> {
        match self.nodes.get_mut(id) {
            Some(node) if node.node_class == NodeClass::Variable => {
                node.value = Some(DataValue::good(value, timestamp_millis));
                Ok(())
            }
            _ => Err(StatusCode::BAD_NODE_ID_UNKNOWN),
        }
    }

    /// Reads a variable's current value.
    pub fn value(&self, id: &NodeId) -> Option<&DataValue> {
        self.nodes.get(id).and_then(|n| n.value.as_ref())
    }

    /// Answers a service request. Requests that are themselves responses
    /// yield an empty `ReadResponse` (servers ignore them).
    pub fn handle(&mut self, request: &Message) -> Message {
        match request {
            Message::ReadRequest { nodes } => Message::ReadResponse {
                results: nodes.iter().map(|rv| self.read_one(rv)).collect(),
            },
            Message::WriteRequest { nodes } => Message::WriteResponse {
                results: nodes.iter().map(|wv| self.write_one(wv)).collect(),
            },
            Message::BrowseRequest { node_id } => match self.nodes.get(node_id) {
                Some(node) => Message::BrowseResponse {
                    status: StatusCode::GOOD,
                    references: node
                        .children
                        .iter()
                        .filter_map(|c| {
                            self.nodes.get(c).map(|cn| ReferenceDescription {
                                node_id: c.clone(),
                                browse_name: cn.browse_name.clone(),
                                node_class: cn.node_class,
                            })
                        })
                        .collect(),
                },
                None => Message::BrowseResponse {
                    status: StatusCode::BAD_NODE_ID_UNKNOWN,
                    references: Vec::new(),
                },
            },
            _ => Message::ReadResponse {
                results: Vec::new(),
            },
        }
    }

    fn read_one(&self, rv: &ReadValueId) -> DataValue {
        let Some(node) = self.nodes.get(&rv.node_id) else {
            return DataValue::bad(StatusCode::BAD_NODE_ID_UNKNOWN);
        };
        match rv.attribute {
            AttributeId::Value => node
                .value
                .clone()
                .unwrap_or_else(|| DataValue::bad(StatusCode::BAD_ATTRIBUTE_ID_INVALID)),
            AttributeId::BrowseName => DataValue::good(Variant::Str(node.browse_name.clone()), 0),
            AttributeId::NodeClass => DataValue::good(Variant::Int32(node.node_class.id()), 0),
        }
    }

    fn write_one(&mut self, wv: &WriteValue) -> StatusCode {
        if wv.attribute != AttributeId::Value {
            return StatusCode::BAD_ATTRIBUTE_ID_INVALID;
        }
        match self.nodes.get_mut(&wv.node_id) {
            None => StatusCode::BAD_NODE_ID_UNKNOWN,
            Some(node) => {
                if node.node_class != NodeClass::Variable {
                    return StatusCode::BAD_ATTRIBUTE_ID_INVALID;
                }
                if !node.writable {
                    return StatusCode::BAD_NOT_WRITABLE;
                }
                // Type check against the current value, if one exists.
                if let Some(DataValue {
                    value: Some(current),
                    ..
                }) = &node.value
                {
                    if std::mem::discriminant(current) != std::mem::discriminant(&wv.value) {
                        return StatusCode::BAD_TYPE_MISMATCH;
                    }
                }
                node.value = Some(DataValue::good(wv.value.clone(), 0));
                StatusCode::GOOD
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (AddressSpace, NodeId, NodeId, NodeId) {
        let mut s = AddressSpace::new();
        let root = NodeId::numeric(1, 1);
        let temp = NodeId::string(1, "plant.supply_temp");
        let setpoint = NodeId::string(1, "plant.setpoint");
        s.add_object(root.clone(), "Plant", None);
        s.add_variable(temp.clone(), "SupplyTemp", Some(&root), false);
        s.add_variable(setpoint.clone(), "Setpoint", Some(&root), true);
        s.set_value(&temp, Variant::Double(71.5), 1000).unwrap();
        s.set_value(&setpoint, Variant::Double(65.0), 1000).unwrap();
        (s, root, temp, setpoint)
    }

    #[test]
    fn all_messages_round_trip() {
        let messages = [
            Message::ReadRequest {
                nodes: vec![
                    ReadValueId {
                        node_id: NodeId::numeric(2, 42),
                        attribute: AttributeId::Value,
                    },
                    ReadValueId {
                        node_id: NodeId::string(0, "x"),
                        attribute: AttributeId::BrowseName,
                    },
                ],
            },
            Message::ReadResponse {
                results: vec![
                    DataValue::good(Variant::Double(1.5), 123),
                    DataValue::bad(StatusCode::BAD_NODE_ID_UNKNOWN),
                    DataValue::good(Variant::Str("té".into()), 0),
                    DataValue::good(Variant::Boolean(true), -5),
                    DataValue::good(Variant::Int64(i64::MIN), 0),
                    DataValue::good(Variant::DateTime(1_425_900_000_000), 0),
                ],
            },
            Message::WriteRequest {
                nodes: vec![WriteValue {
                    node_id: NodeId::string(1, "sp"),
                    attribute: AttributeId::Value,
                    value: Variant::Int32(-7),
                }],
            },
            Message::WriteResponse {
                results: vec![StatusCode::GOOD, StatusCode::BAD_NOT_WRITABLE],
            },
            Message::BrowseRequest {
                node_id: NodeId::numeric(1, 1),
            },
            Message::BrowseResponse {
                status: StatusCode::GOOD,
                references: vec![ReferenceDescription {
                    node_id: NodeId::string(1, "child"),
                    browse_name: "Child".into(),
                    node_class: NodeClass::Variable,
                }],
            },
        ];
        for m in &messages {
            let bytes = m.encode();
            assert_eq!(&Message::decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let m = Message::ReadResponse {
            results: vec![DataValue::good(Variant::Str("hello".into()), 9)],
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn read_value_and_metadata() {
        let (mut s, root, temp, _) = space();
        let resp = s.handle(&Message::ReadRequest {
            nodes: vec![
                ReadValueId {
                    node_id: temp.clone(),
                    attribute: AttributeId::Value,
                },
                ReadValueId {
                    node_id: temp.clone(),
                    attribute: AttributeId::BrowseName,
                },
                ReadValueId {
                    node_id: root,
                    attribute: AttributeId::NodeClass,
                },
                ReadValueId {
                    node_id: NodeId::numeric(9, 9),
                    attribute: AttributeId::Value,
                },
            ],
        });
        let Message::ReadResponse { results } = resp else {
            panic!("wrong response type");
        };
        assert_eq!(results[0].value, Some(Variant::Double(71.5)));
        assert_eq!(results[0].source_timestamp, Some(1000));
        assert_eq!(results[1].value, Some(Variant::Str("SupplyTemp".into())));
        assert_eq!(results[2].value, Some(Variant::Int32(1)));
        assert_eq!(results[3].status, StatusCode::BAD_NODE_ID_UNKNOWN);
    }

    #[test]
    fn write_rules_enforced() {
        let (mut s, _, temp, setpoint) = space();
        let resp = s.handle(&Message::WriteRequest {
            nodes: vec![
                WriteValue {
                    node_id: setpoint.clone(),
                    attribute: AttributeId::Value,
                    value: Variant::Double(60.0),
                },
                WriteValue {
                    node_id: temp, // read-only
                    attribute: AttributeId::Value,
                    value: Variant::Double(0.0),
                },
                WriteValue {
                    node_id: setpoint.clone(), // type mismatch
                    attribute: AttributeId::Value,
                    value: Variant::Boolean(true),
                },
                WriteValue {
                    node_id: setpoint.clone(), // non-value attribute
                    attribute: AttributeId::BrowseName,
                    value: Variant::Str("nope".into()),
                },
            ],
        });
        let Message::WriteResponse { results } = resp else {
            panic!("wrong response type");
        };
        assert_eq!(results[0], StatusCode::GOOD);
        assert_eq!(results[1], StatusCode::BAD_NOT_WRITABLE);
        assert_eq!(results[2], StatusCode::BAD_TYPE_MISMATCH);
        assert_eq!(results[3], StatusCode::BAD_ATTRIBUTE_ID_INVALID);
        assert_eq!(
            s.value(&setpoint).unwrap().value,
            Some(Variant::Double(60.0))
        );
    }

    #[test]
    fn browse_lists_children() {
        let (mut s, root, _, _) = space();
        let resp = s.handle(&Message::BrowseRequest { node_id: root });
        let Message::BrowseResponse { status, references } = resp else {
            panic!("wrong response type");
        };
        assert!(status.is_good());
        let names: Vec<&str> = references.iter().map(|r| r.browse_name.as_str()).collect();
        assert_eq!(names, vec!["SupplyTemp", "Setpoint"]);
    }

    #[test]
    fn browse_unknown_node_is_bad() {
        let (mut s, ..) = space();
        let resp = s.handle(&Message::BrowseRequest {
            node_id: NodeId::numeric(7, 7),
        });
        let Message::BrowseResponse { status, references } = resp else {
            panic!("wrong response type");
        };
        assert!(!status.is_good());
        assert!(references.is_empty());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::numeric(2, 42).to_string(), "ns=2;i=42");
        assert_eq!(NodeId::string(1, "a.b").to_string(), "ns=1;s=a.b");
    }

    #[test]
    fn implausible_length_rejected() {
        let mut bytes = Message::ReadRequest { nodes: vec![] }.encode();
        bytes[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn variant_as_f64() {
        assert_eq!(Variant::Boolean(true).as_f64(), Some(1.0));
        assert_eq!(Variant::Int32(-3).as_f64(), Some(-3.0));
        assert_eq!(Variant::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Variant::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn status_code_goodness() {
        assert!(StatusCode::GOOD.is_good());
        assert!(!StatusCode::BAD_NOT_WRITABLE.is_good());
    }
}
