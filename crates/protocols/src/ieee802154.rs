//! IEEE 802.15.4 MAC frames.
//!
//! Implements the 2006 MAC frame format: a 16-bit frame control field,
//! sequence number, PAN/device addressing (none, 16-bit short, 64-bit
//! extended), payload, and the 16-bit FCS (CRC-16/CCITT, polynomial
//! 0x1021, as specified in §7.2.1.9 of the standard). Multi-byte fields
//! are little-endian per the standard.

use crate::ProtocolError;

/// A 16-bit PAN identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PanId(pub u16);

/// A device address: none, 16-bit short, or 64-bit extended (EUI-64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Address {
    /// Address field absent.
    None,
    /// 16-bit short address assigned at association.
    Short(u16),
    /// 64-bit extended address (EUI-64).
    Extended(u64),
}

impl Address {
    fn mode_bits(self) -> u16 {
        match self {
            Address::None => 0b00,
            Address::Short(_) => 0b10,
            Address::Extended(_) => 0b11,
        }
    }

    fn encoded_len(self) -> usize {
        match self {
            Address::None => 0,
            Address::Short(_) => 2,
            Address::Extended(_) => 8,
        }
    }
}

/// The MAC frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameType {
    /// A beacon frame.
    Beacon,
    /// A data frame.
    Data,
    /// An acknowledgement frame.
    Ack,
    /// A MAC command frame.
    MacCommand,
}

impl FrameType {
    fn bits(self) -> u16 {
        match self {
            FrameType::Beacon => 0b000,
            FrameType::Data => 0b001,
            FrameType::Ack => 0b010,
            FrameType::MacCommand => 0b011,
        }
    }

    fn from_bits(bits: u16) -> Result<Self, ProtocolError> {
        match bits {
            0b000 => Ok(FrameType::Beacon),
            0b001 => Ok(FrameType::Data),
            0b010 => Ok(FrameType::Ack),
            0b011 => Ok(FrameType::MacCommand),
            other => Err(ProtocolError::Unsupported {
                context: "802.15.4 frame type",
                value: u64::from(other),
            }),
        }
    }
}

/// A complete IEEE 802.15.4 MAC frame.
///
/// ```
/// use protocols::ieee802154::{MacFrame, FrameType, Address, PanId};
/// # fn main() -> Result<(), protocols::ProtocolError> {
/// let frame = MacFrame::data(
///     PanId(0x23AD),
///     Address::Short(0x0001),   // coordinator
///     Address::Short(0x004F),   // sensor
///     17,
///     vec![0xA0, 0x42],
/// );
/// let bytes = frame.encode();
/// assert_eq!(MacFrame::decode(&bytes)?, frame);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacFrame {
    /// The frame type.
    pub frame_type: FrameType,
    /// Whether the sender requests an acknowledgement.
    pub ack_request: bool,
    /// Whether more frames are pending for the recipient.
    pub frame_pending: bool,
    /// The sequence number.
    pub sequence: u8,
    /// Destination PAN (present whenever the destination address is).
    pub dest_pan: Option<PanId>,
    /// Destination address.
    pub dest: Address,
    /// Source PAN (elided when equal to `dest_pan`, per PAN-id compression).
    pub src_pan: Option<PanId>,
    /// Source address.
    pub src: Address,
    /// MAC payload.
    pub payload: Vec<u8>,
}

impl MacFrame {
    /// Builds an intra-PAN data frame with ack-request set, the common
    /// shape for sensor uplinks.
    pub fn data(pan: PanId, dest: Address, src: Address, sequence: u8, payload: Vec<u8>) -> Self {
        MacFrame {
            frame_type: FrameType::Data,
            ack_request: true,
            frame_pending: false,
            sequence,
            dest_pan: Some(pan),
            dest,
            src_pan: None, // compressed: same as dest_pan
            src,
            payload,
        }
    }

    /// Builds the acknowledgement for a frame with `sequence`.
    pub fn ack(sequence: u8) -> Self {
        MacFrame {
            frame_type: FrameType::Ack,
            ack_request: false,
            frame_pending: false,
            sequence,
            dest_pan: None,
            dest: Address::None,
            src_pan: None,
            src: Address::None,
            payload: Vec::new(),
        }
    }

    /// Builds a beacon frame from `src` in `pan`.
    pub fn beacon(pan: PanId, src: Address, sequence: u8, payload: Vec<u8>) -> Self {
        MacFrame {
            frame_type: FrameType::Beacon,
            ack_request: false,
            frame_pending: false,
            sequence,
            dest_pan: None,
            dest: Address::None,
            src_pan: Some(pan),
            src,
            payload,
        }
    }

    /// Whether PAN-id compression (src PAN elided) applies.
    fn pan_compression(&self) -> bool {
        self.dest_pan.is_some() && self.src_pan.is_none() && !matches!(self.src, Address::None)
    }

    /// Encodes the frame including the trailing FCS.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not wire-consistent: a present destination
    /// address requires `dest_pan`, and a present source address requires
    /// either `src_pan` or PAN-id compression (which needs `dest_pan`).
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            matches!(self.dest, Address::None) || self.dest_pan.is_some(),
            "destination address requires a destination PAN"
        );
        assert!(
            matches!(self.src, Address::None) || self.src_pan.is_some() || self.pan_compression(),
            "source address requires a source PAN or PAN-id compression"
        );
        let mut out = Vec::with_capacity(
            2 + 1
                + 2 * 2
                + self.dest.encoded_len()
                + self.src.encoded_len()
                + self.payload.len()
                + 2,
        );
        let mut fc: u16 = self.frame_type.bits();
        if self.frame_pending {
            fc |= 1 << 4;
        }
        if self.ack_request {
            fc |= 1 << 5;
        }
        if self.pan_compression() {
            fc |= 1 << 6;
        }
        fc |= self.dest.mode_bits() << 10;
        fc |= 0b01 << 12; // frame version: IEEE 802.15.4-2006
        fc |= self.src.mode_bits() << 14;
        out.extend_from_slice(&fc.to_le_bytes());
        out.push(self.sequence);
        if let Some(PanId(pan)) = self.dest_pan {
            out.extend_from_slice(&pan.to_le_bytes());
        }
        push_address(&mut out, self.dest);
        if let Some(PanId(pan)) = self.src_pan {
            out.extend_from_slice(&pan.to_le_bytes());
        }
        push_address(&mut out, self.src);
        out.extend_from_slice(&self.payload);
        let fcs = crc16_ccitt(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        out
    }

    /// Decodes a frame, verifying the FCS.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation, FCS mismatch, or
    /// unsupported field values.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        const CTX: &str = "802.15.4 frame";
        if bytes.len() < 5 {
            return Err(ProtocolError::Truncated { context: CTX });
        }
        let (body, fcs_bytes) = bytes.split_at(bytes.len() - 2);
        let found = u16::from_le_bytes([fcs_bytes[0], fcs_bytes[1]]);
        let expected = crc16_ccitt(body);
        if found != expected {
            return Err(ProtocolError::BadChecksum {
                context: "802.15.4 fcs",
                expected: u32::from(expected),
                found: u32::from(found),
            });
        }
        let mut r = Reader::new(body, CTX);
        let fc = r.u16()?;
        let frame_type = FrameType::from_bits(fc & 0b111)?;
        if fc & (1 << 3) != 0 {
            return Err(ProtocolError::Unsupported {
                context: "802.15.4 security",
                value: 1,
            });
        }
        let frame_pending = fc & (1 << 4) != 0;
        let ack_request = fc & (1 << 5) != 0;
        let pan_compressed = fc & (1 << 6) != 0;
        let dest_mode = (fc >> 10) & 0b11;
        let src_mode = (fc >> 14) & 0b11;
        let sequence = r.u8()?;
        let (dest_pan, dest) = read_pan_address(&mut r, dest_mode)?;
        let src_pan = if src_mode != 0b00 && !pan_compressed {
            Some(PanId(r.u16()?))
        } else {
            None
        };
        let src = read_address(&mut r, src_mode)?;
        let payload = r.rest().to_vec();
        Ok(MacFrame {
            frame_type,
            ack_request,
            frame_pending,
            sequence,
            dest_pan,
            dest,
            src_pan,
            src,
            payload,
        })
    }
}

fn push_address(out: &mut Vec<u8>, addr: Address) {
    match addr {
        Address::None => {}
        Address::Short(a) => out.extend_from_slice(&a.to_le_bytes()),
        Address::Extended(a) => out.extend_from_slice(&a.to_le_bytes()),
    }
}

fn read_pan_address(
    r: &mut Reader<'_>,
    mode: u16,
) -> Result<(Option<PanId>, Address), ProtocolError> {
    if mode == 0b00 {
        return Ok((None, Address::None));
    }
    let pan = PanId(r.u16()?);
    Ok((Some(pan), read_address(r, mode)?))
}

fn read_address(r: &mut Reader<'_>, mode: u16) -> Result<Address, ProtocolError> {
    match mode {
        0b00 => Ok(Address::None),
        0b10 => Ok(Address::Short(r.u16()?)),
        0b11 => Ok(Address::Extended(r.u64()?)),
        other => Err(ProtocolError::Unsupported {
            context: "802.15.4 addressing mode",
            value: u64::from(other),
        }),
    }
}

/// CRC-16/CCITT as used by the 802.15.4 FCS (poly 0x1021, init 0x0000,
/// reflected input/output).
pub fn crc16_ccitt(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &b in bytes {
        crc ^= u16::from(b);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408; // 0x1021 reflected
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// A bounds-checked little-endian byte reader.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Reader {
            bytes,
            pos: 0,
            context,
        }
    }

    fn need(&self, n: usize) -> Result<(), ProtocolError> {
        if self.pos + n > self.bytes.len() {
            Err(ProtocolError::Truncated {
                context: self.context,
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtocolError> {
        self.need(1)?;
        let b = self.bytes[self.pos];
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ProtocolError> {
        self.need(2)?;
        let v = u16::from_le_bytes([self.bytes[self.pos], self.bytes[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtocolError> {
        self.need(4)?;
        let v = u32::from_le_bytes(
            self.bytes[self.pos..self.pos + 4]
                .try_into()
                .expect("length checked"),
        );
        self.pos += 4;
        Ok(v)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtocolError> {
        self.need(8)?;
        let v = u64::from_le_bytes(
            self.bytes[self.pos..self.pos + 8]
                .try_into()
                .expect("length checked"),
        );
        self.pos += 8;
        Ok(v)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        self.need(n)?;
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        s
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MacFrame {
        MacFrame::data(
            PanId(0x23AD),
            Address::Short(0x0001),
            Address::Short(0x004F),
            17,
            vec![0xDE, 0xAD, 0xBE, 0xEF],
        )
    }

    #[test]
    fn data_frame_round_trip() {
        let f = sample();
        assert_eq!(MacFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn ack_frame_round_trip() {
        let f = MacFrame::ack(200);
        let bytes = f.encode();
        // fc(2) + seq(1) + fcs(2)
        assert_eq!(bytes.len(), 5);
        assert_eq!(MacFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn beacon_frame_round_trip() {
        let f = MacFrame::beacon(
            PanId(0x0001),
            Address::Extended(0x00_12_4B_00_01_02_03_04),
            3,
            vec![0xFF, 0xCF, 0x00, 0x00],
        );
        assert_eq!(MacFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn extended_addresses_round_trip() {
        let mut f = sample();
        f.dest = Address::Extended(0xAABB_CCDD_EEFF_0011);
        f.src = Address::Extended(0x1122_3344_5566_7788);
        assert_eq!(MacFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn uncompressed_src_pan_round_trip() {
        let mut f = sample();
        f.src_pan = Some(PanId(0x1111)); // inter-PAN frame
        assert_eq!(MacFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn corrupted_fcs_detected() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            MacFrame::decode(&bytes),
            Err(ProtocolError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut bytes = sample().encode();
        bytes[7] ^= 0x01;
        assert!(matches!(
            MacFrame::decode(&bytes),
            Err(ProtocolError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().encode();
        for cut in 0..5 {
            assert!(MacFrame::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/KERMIT ("123456789") = 0x2189
        assert_eq!(crc16_ccitt(b"123456789"), 0x2189);
        assert_eq!(crc16_ccitt(b""), 0x0000);
    }

    #[test]
    fn empty_payload_allowed() {
        let f = MacFrame::data(
            PanId(1),
            Address::Short(1),
            Address::Short(2),
            0,
            Vec::new(),
        );
        let back = MacFrame::decode(&f.encode()).unwrap();
        assert!(back.payload.is_empty());
    }

    #[test]
    fn large_payload_round_trip() {
        let payload: Vec<u8> = (0..=255).collect();
        let f = MacFrame::data(
            PanId(9),
            Address::Short(1),
            Address::Extended(42),
            9,
            payload,
        );
        assert_eq!(MacFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn security_bit_unsupported() {
        let mut bytes = sample().encode();
        // Set the security-enabled bit in the frame control field…
        bytes[0] |= 1 << 3;
        // …and fix up the FCS so only that feature triggers the error.
        let body_len = bytes.len() - 2;
        let fcs = crc16_ccitt(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&fcs.to_le_bytes());
        assert!(matches!(
            MacFrame::decode(&bytes),
            Err(ProtocolError::Unsupported { .. })
        ));
    }
}
