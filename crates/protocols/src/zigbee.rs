//! ZigBee frames: NWK + APS headers and ZCL attribute reports.
//!
//! The subset implemented is what battery-powered district sensors send:
//! an NWK data header, an APS data header addressing a cluster, and a ZCL
//! *Report Attributes* (0x0A) or *Read Attributes Response* (0x01)
//! command carrying typed attribute records. Clusters covered: On/Off,
//! Temperature Measurement, Relative Humidity, Electrical Measurement and
//! Simple Metering.

use crate::ieee802154::Reader;
use crate::ProtocolError;

/// A ZigBee cluster identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u16);

impl ClusterId {
    /// On/Off cluster (0x0006).
    pub const ON_OFF: ClusterId = ClusterId(0x0006);
    /// Temperature Measurement cluster (0x0402); attribute 0x0000 is the
    /// measured value in centidegrees Celsius.
    pub const TEMPERATURE_MEASUREMENT: ClusterId = ClusterId(0x0402);
    /// Relative Humidity Measurement cluster (0x0405); attribute 0x0000
    /// in centipercent.
    pub const RELATIVE_HUMIDITY: ClusterId = ClusterId(0x0405);
    /// Electrical Measurement cluster (0x0B04); attribute 0x050B is
    /// active power in watts.
    pub const ELECTRICAL_MEASUREMENT: ClusterId = ClusterId(0x0B04);
    /// Simple Metering cluster (0x0702); attribute 0x0000 is the current
    /// summation delivered.
    pub const SIMPLE_METERING: ClusterId = ClusterId(0x0702);
}

/// A typed ZCL attribute value (ZCL data types subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZclValue {
    /// Boolean (type 0x10).
    Bool(bool),
    /// Unsigned 8-bit (type 0x20).
    U8(u8),
    /// Unsigned 16-bit (type 0x21).
    U16(u16),
    /// Unsigned 32-bit (type 0x23).
    U32(u32),
    /// Unsigned 48-bit (type 0x25), used by metering summations.
    U48(u64),
    /// Signed 16-bit (type 0x29), used by temperature and power.
    I16(i16),
    /// Signed 32-bit (type 0x2B).
    I32(i32),
}

impl ZclValue {
    /// The ZCL data type discriminator byte.
    pub fn type_id(self) -> u8 {
        match self {
            ZclValue::Bool(_) => 0x10,
            ZclValue::U8(_) => 0x20,
            ZclValue::U16(_) => 0x21,
            ZclValue::U32(_) => 0x23,
            ZclValue::U48(_) => 0x25,
            ZclValue::I16(_) => 0x29,
            ZclValue::I32(_) => 0x2B,
        }
    }

    /// The value widened to `f64` (how adapters consume it).
    pub fn as_f64(self) -> f64 {
        match self {
            ZclValue::Bool(b) => f64::from(u8::from(b)),
            ZclValue::U8(v) => f64::from(v),
            ZclValue::U16(v) => f64::from(v),
            ZclValue::U32(v) => f64::from(v),
            ZclValue::U48(v) => v as f64,
            ZclValue::I16(v) => f64::from(v),
            ZclValue::I32(v) => f64::from(v),
        }
    }

    fn encode_into(self, out: &mut Vec<u8>) {
        match self {
            ZclValue::Bool(b) => out.push(u8::from(b)),
            ZclValue::U8(v) => out.push(v),
            ZclValue::U16(v) => out.extend_from_slice(&v.to_le_bytes()),
            ZclValue::U32(v) => out.extend_from_slice(&v.to_le_bytes()),
            ZclValue::U48(v) => out.extend_from_slice(&v.to_le_bytes()[..6]),
            ZclValue::I16(v) => out.extend_from_slice(&v.to_le_bytes()),
            ZclValue::I32(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    fn decode(type_id: u8, r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(match type_id {
            0x10 => ZclValue::Bool(r.u8()? != 0),
            0x20 => ZclValue::U8(r.u8()?),
            0x21 => ZclValue::U16(r.u16()?),
            0x23 => ZclValue::U32(r.u32()?),
            0x25 => {
                let lo = r.u32()?;
                let hi = r.u16()?;
                ZclValue::U48(u64::from(lo) | (u64::from(hi) << 32))
            }
            0x29 => ZclValue::I16(r.u16()? as i16),
            0x2B => ZclValue::I32(r.u32()? as i32),
            other => {
                return Err(ProtocolError::Unsupported {
                    context: "zcl data type",
                    value: u64::from(other),
                })
            }
        })
    }
}

/// One attribute record in a ZCL report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZclAttribute {
    /// The attribute identifier within its cluster.
    pub id: u16,
    /// The typed value.
    pub value: ZclValue,
}

impl ZclAttribute {
    /// Creates an attribute record.
    pub fn new(id: u16, value: ZclValue) -> Self {
        ZclAttribute { id, value }
    }
}

/// The ZCL command carried in the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZclCommand {
    /// Report Attributes (0x0A) — unsolicited sensor reports.
    ReportAttributes,
    /// Read Attributes Response (0x01) — reply to a poll.
    ReadAttributesResponse,
}

impl ZclCommand {
    fn id(self) -> u8 {
        match self {
            ZclCommand::ReportAttributes => 0x0A,
            ZclCommand::ReadAttributesResponse => 0x01,
        }
    }

    fn from_id(id: u8) -> Result<Self, ProtocolError> {
        match id {
            0x0A => Ok(ZclCommand::ReportAttributes),
            0x01 => Ok(ZclCommand::ReadAttributesResponse),
            other => Err(ProtocolError::Unsupported {
                context: "zcl command",
                value: u64::from(other),
            }),
        }
    }
}

/// A complete ZigBee frame: NWK header, APS header and ZCL payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZigbeeFrame {
    /// NWK destination short address.
    pub nwk_dest: u16,
    /// NWK source short address (the reporting device).
    pub nwk_src: u16,
    /// Remaining hop radius.
    pub radius: u8,
    /// NWK sequence number.
    pub nwk_sequence: u8,
    /// Destination endpoint.
    pub dest_endpoint: u8,
    /// The addressed cluster.
    pub cluster: ClusterId,
    /// The application profile (0x0104 = Home Automation).
    pub profile: u16,
    /// Source endpoint.
    pub src_endpoint: u8,
    /// APS counter.
    pub aps_counter: u8,
    /// ZCL transaction sequence number.
    pub zcl_sequence: u8,
    /// The ZCL command.
    pub command: ZclCommand,
    /// The attribute records.
    pub attributes: Vec<ZclAttribute>,
}

impl ZigbeeFrame {
    /// Encodes NWK + APS + ZCL into bytes (the payload of an 802.15.4
    /// data frame in a real stack).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + 3 + 5 * self.attributes.len());
        // NWK header: frame control (data, protocol version 2), dest, src,
        // radius, sequence.
        let nwk_fc: u16 = 0b0000_0000_0000_1000; // version 2 in bits 2..5
        out.extend_from_slice(&nwk_fc.to_le_bytes());
        out.extend_from_slice(&self.nwk_dest.to_le_bytes());
        out.extend_from_slice(&self.nwk_src.to_le_bytes());
        out.push(self.radius);
        out.push(self.nwk_sequence);
        // APS header: frame control (data, unicast), dest endpoint,
        // cluster, profile, src endpoint, counter.
        out.push(0x00);
        out.push(self.dest_endpoint);
        out.extend_from_slice(&self.cluster.0.to_le_bytes());
        out.extend_from_slice(&self.profile.to_le_bytes());
        out.push(self.src_endpoint);
        out.push(self.aps_counter);
        // ZCL header: frame control (global, server-to-client, disable
        // default response), sequence, command.
        out.push(0x18);
        out.push(self.zcl_sequence);
        out.push(self.command.id());
        for attr in &self.attributes {
            out.extend_from_slice(&attr.id.to_le_bytes());
            if self.command == ZclCommand::ReadAttributesResponse {
                out.push(0x00); // status SUCCESS
            }
            out.push(attr.value.type_id());
            attr.value.encode_into(&mut out);
        }
        out
    }

    /// Decodes a frame produced by [`ZigbeeFrame::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation or unsupported fields.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        const CTX: &str = "zigbee frame";
        let mut r = Reader::new(bytes, CTX);
        let nwk_fc = r.u16()?;
        if nwk_fc & 0b11 != 0 {
            return Err(ProtocolError::Unsupported {
                context: "nwk frame type",
                value: u64::from(nwk_fc & 0b11),
            });
        }
        let nwk_dest = r.u16()?;
        let nwk_src = r.u16()?;
        let radius = r.u8()?;
        let nwk_sequence = r.u8()?;
        let aps_fc = r.u8()?;
        if aps_fc & 0b11 != 0 {
            return Err(ProtocolError::Unsupported {
                context: "aps frame type",
                value: u64::from(aps_fc & 0b11),
            });
        }
        let dest_endpoint = r.u8()?;
        let cluster = ClusterId(r.u16()?);
        let profile = r.u16()?;
        let src_endpoint = r.u8()?;
        let aps_counter = r.u8()?;
        let zcl_fc = r.u8()?;
        if zcl_fc & 0b11 != 0 {
            return Err(ProtocolError::Unsupported {
                context: "zcl frame type (cluster-specific commands)",
                value: u64::from(zcl_fc & 0b11),
            });
        }
        let zcl_sequence = r.u8()?;
        let command = ZclCommand::from_id(r.u8()?)?;
        let mut attributes = Vec::new();
        while r.remaining() > 0 {
            let id = r.u16()?;
            if command == ZclCommand::ReadAttributesResponse {
                let status = r.u8()?;
                if status != 0 {
                    return Err(ProtocolError::Malformed {
                        reason: "attribute status is not SUCCESS",
                    });
                }
            }
            let type_id = r.u8()?;
            let value = ZclValue::decode(type_id, &mut r)?;
            attributes.push(ZclAttribute { id, value });
        }
        Ok(ZigbeeFrame {
            nwk_dest,
            nwk_src,
            radius,
            nwk_sequence,
            dest_endpoint,
            cluster,
            profile,
            src_endpoint,
            aps_counter,
            zcl_sequence,
            command,
            attributes,
        })
    }
}

/// Builder for the common case: an unsolicited attribute report.
///
/// ```
/// use protocols::zigbee::{report_builder, ClusterId, ZclAttribute, ZclValue};
/// let frame = report_builder(0x77AA, ClusterId::ON_OFF)
///     .attribute(ZclAttribute::new(0x0000, ZclValue::Bool(true)))
///     .build();
/// assert_eq!(frame.cluster, ClusterId::ON_OFF);
/// ```
pub fn report_builder(nwk_src: u16, cluster: ClusterId) -> ReportBuilder {
    ReportBuilder {
        frame: ZigbeeFrame {
            nwk_dest: 0x0000, // coordinator
            nwk_src,
            radius: 30,
            nwk_sequence: 0,
            dest_endpoint: 1,
            cluster,
            profile: 0x0104, // Home Automation
            src_endpoint: 1,
            aps_counter: 0,
            zcl_sequence: 0,
            command: ZclCommand::ReportAttributes,
            attributes: Vec::new(),
        },
    }
}

/// Builder returned by [`report_builder`].
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    frame: ZigbeeFrame,
}

impl ReportBuilder {
    /// Adds an attribute record.
    pub fn attribute(mut self, attr: ZclAttribute) -> Self {
        self.frame.attributes.push(attr);
        self
    }

    /// Sets the three sequence/counter fields at once (stacks keep them
    /// loosely coupled; simulated devices just tick one counter).
    pub fn sequence(mut self, seq: u8) -> Self {
        self.frame.nwk_sequence = seq;
        self.frame.aps_counter = seq;
        self.frame.zcl_sequence = seq;
        self
    }

    /// Finalizes the frame.
    pub fn build(self) -> ZigbeeFrame {
        self.frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ZigbeeFrame {
        report_builder(0x4F21, ClusterId::TEMPERATURE_MEASUREMENT)
            .sequence(9)
            .attribute(ZclAttribute::new(0x0000, ZclValue::I16(2157)))
            .build()
    }

    #[test]
    fn report_round_trip() {
        let f = sample();
        assert_eq!(ZigbeeFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn every_value_type_round_trips() {
        let values = [
            ZclValue::Bool(true),
            ZclValue::Bool(false),
            ZclValue::U8(200),
            ZclValue::U16(65500),
            ZclValue::U32(4_000_000_000),
            ZclValue::U48(0x0000_FFFF_FFFF_FFFF),
            ZclValue::I16(-2157),
            ZclValue::I32(-2_000_000_000),
        ];
        let mut b = report_builder(1, ClusterId::SIMPLE_METERING);
        for (i, v) in values.iter().enumerate() {
            b = b.attribute(ZclAttribute::new(i as u16, *v));
        }
        let f = b.build();
        let back = ZigbeeFrame::decode(&f.encode()).unwrap();
        assert_eq!(back.attributes.len(), values.len());
        for (attr, v) in back.attributes.iter().zip(values.iter()) {
            assert_eq!(&attr.value, v);
        }
    }

    #[test]
    fn read_attributes_response_round_trip() {
        let mut f = sample();
        f.command = ZclCommand::ReadAttributesResponse;
        assert_eq!(ZigbeeFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().encode();
        for cut in [0, 1, 5, 8, 10, 15, bytes.len() - 1] {
            assert!(ZigbeeFrame::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_zcl_type_rejected() {
        let mut bytes = sample().encode();
        // The type byte of the first attribute is third from last + value:
        // locate it by structure: header 8 + aps 8 + zcl 3 + attr id 2 = 21.
        bytes[21] = 0xEE;
        assert!(matches!(
            ZigbeeFrame::decode(&bytes),
            Err(ProtocolError::Unsupported { .. })
        ));
    }

    #[test]
    fn u48_boundary_values() {
        for v in [0u64, 1, 0xFFFF_FFFF, 0x0000_FFFF_FFFF_FFFF] {
            let f = report_builder(1, ClusterId::SIMPLE_METERING)
                .attribute(ZclAttribute::new(0, ZclValue::U48(v)))
                .build();
            let back = ZigbeeFrame::decode(&f.encode()).unwrap();
            assert_eq!(back.attributes[0].value, ZclValue::U48(v));
        }
    }

    #[test]
    fn as_f64_widens() {
        assert_eq!(ZclValue::Bool(true).as_f64(), 1.0);
        assert_eq!(ZclValue::I16(-100).as_f64(), -100.0);
        assert_eq!(ZclValue::U48(1 << 40).as_f64(), (1u64 << 40) as f64);
    }

    #[test]
    fn builder_defaults_are_home_automation() {
        let f = sample();
        assert_eq!(f.profile, 0x0104);
        assert_eq!(f.nwk_dest, 0x0000);
        assert_eq!(f.command, ZclCommand::ReportAttributes);
    }

    #[test]
    fn empty_attribute_list_round_trips() {
        let f = report_builder(7, ClusterId::ON_OFF).build();
        let back = ZigbeeFrame::decode(&f.encode()).unwrap();
        assert!(back.attributes.is_empty());
    }
}
