//! CoAP (RFC 7252) — the paper's §III names CoAP (with 6LoWPAN and RPL)
//! as the direction for "development and optimized management of
//! wireless sensors within the Internet of Things paradigm". This module
//! implements the message layer and a constrained sensor server so the
//! infrastructure can onboard CoAP devices alongside the four original
//! families.
//!
//! Subset: CON/NON/ACK/RST types, GET/POST requests, piggy-backed
//! responses, tokens, Uri-Path and Content-Format options (delta
//! encoding with the extended 13 form), payload marker `0xFF`.

use crate::ieee802154::Reader;
use crate::ProtocolError;

/// The message type (RFC 7252 §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoapType {
    /// Confirmable — requires an ACK.
    Confirmable,
    /// Non-confirmable.
    NonConfirmable,
    /// Acknowledgement (possibly piggy-backing a response).
    Acknowledgement,
    /// Reset.
    Reset,
}

impl CoapType {
    fn bits(self) -> u8 {
        match self {
            CoapType::Confirmable => 0,
            CoapType::NonConfirmable => 1,
            CoapType::Acknowledgement => 2,
            CoapType::Reset => 3,
        }
    }

    fn from_bits(b: u8) -> Self {
        match b & 0b11 {
            0 => CoapType::Confirmable,
            1 => CoapType::NonConfirmable,
            2 => CoapType::Acknowledgement,
            _ => CoapType::Reset,
        }
    }
}

/// A CoAP code: class.detail (e.g. `0.01` GET, `2.05` Content).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoapCode(pub u8);

impl CoapCode {
    /// 0.00 — empty message (pure ACK/RST).
    pub const EMPTY: CoapCode = CoapCode(0x00);
    /// 0.01 — GET.
    pub const GET: CoapCode = CoapCode(0x01);
    /// 0.02 — POST.
    pub const POST: CoapCode = CoapCode(0x02);
    /// 2.04 — Changed.
    pub const CHANGED: CoapCode = CoapCode(0x44);
    /// 2.05 — Content.
    pub const CONTENT: CoapCode = CoapCode(0x45);
    /// 4.04 — Not Found.
    pub const NOT_FOUND: CoapCode = CoapCode(0x84);
    /// 4.05 — Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: CoapCode = CoapCode(0x85);

    /// The class digit (0 request, 2 success, 4 client error, 5 server
    /// error).
    pub fn class(self) -> u8 {
        self.0 >> 5
    }

    /// The detail digits.
    pub fn detail(self) -> u8 {
        self.0 & 0x1F
    }

    /// Whether this code marks a success response.
    pub fn is_success(self) -> bool {
        self.class() == 2
    }
}

impl std::fmt::Display for CoapCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{:02}", self.class(), self.detail())
    }
}

/// Content-Format option values used by the framework.
pub mod content_format {
    /// text/plain; charset=utf-8
    pub const TEXT_PLAIN: u16 = 0;
    /// application/json
    pub const JSON: u16 = 50;
}

/// A CoAP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapMessage {
    /// Message type.
    pub mtype: CoapType,
    /// Code (request method or response code).
    pub code: CoapCode,
    /// Message id for deduplication/ACK matching.
    pub message_id: u16,
    /// Token correlating responses to requests (0–8 bytes).
    pub token: Vec<u8>,
    /// Uri-Path segments (option 11).
    pub uri_path: Vec<String>,
    /// Content-Format (option 12).
    pub content_format: Option<u16>,
    /// Payload (after the `0xFF` marker).
    pub payload: Vec<u8>,
}

impl CoapMessage {
    /// A confirmable GET for `path` (segments joined by `/`).
    pub fn get(message_id: u16, token: Vec<u8>, path: &str) -> Self {
        CoapMessage {
            mtype: CoapType::Confirmable,
            code: CoapCode::GET,
            message_id,
            token,
            uri_path: path
                .split('/')
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect(),
            content_format: None,
            payload: Vec::new(),
        }
    }

    /// A confirmable POST for `path` carrying a JSON payload.
    pub fn post_json(message_id: u16, token: Vec<u8>, path: &str, payload: Vec<u8>) -> Self {
        CoapMessage {
            mtype: CoapType::Confirmable,
            code: CoapCode::POST,
            message_id,
            token,
            uri_path: path
                .split('/')
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect(),
            content_format: Some(content_format::JSON),
            payload,
        }
    }

    /// The piggy-backed response to this request.
    pub fn respond(&self, code: CoapCode, content_format: Option<u16>, payload: Vec<u8>) -> Self {
        CoapMessage {
            mtype: CoapType::Acknowledgement,
            code,
            message_id: self.message_id,
            token: self.token.clone(),
            uri_path: Vec::new(),
            content_format,
            payload,
        }
    }

    /// The Uri-Path joined with `/`.
    pub fn path(&self) -> String {
        self.uri_path.join("/")
    }

    /// Encodes the message (RFC 7252 §3 framing).
    ///
    /// # Panics
    ///
    /// Panics if the token exceeds 8 bytes.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.token.len() <= 8, "token too long");
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.push(0x40 | (self.mtype.bits() << 4) | self.token.len() as u8);
        out.push(self.code.0);
        out.extend_from_slice(&self.message_id.to_be_bytes());
        out.extend_from_slice(&self.token);
        // Options must be encoded in ascending option-number order:
        // Uri-Path (11) repeats, then Content-Format (12).
        let mut last_option = 0u16;
        for seg in &self.uri_path {
            encode_option(11, seg.as_bytes(), &mut last_option, &mut out);
        }
        if let Some(cf) = self.content_format {
            let value = if cf == 0 {
                Vec::new()
            } else if cf < 256 {
                vec![cf as u8]
            } else {
                cf.to_be_bytes().to_vec()
            };
            encode_option(12, &value, &mut last_option, &mut out);
        }
        if !self.payload.is_empty() {
            out.push(0xFF);
            out.extend_from_slice(&self.payload);
        }
        out
    }

    /// Decodes a message produced by [`CoapMessage::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on truncation, a bad version, or an
    /// unsupported option.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        const CTX: &str = "coap message";
        let mut r = Reader::new(bytes, CTX);
        let first = r.u8()?;
        if first >> 6 != 1 {
            return Err(ProtocolError::Unsupported {
                context: "coap version",
                value: u64::from(first >> 6),
            });
        }
        let mtype = CoapType::from_bits(first >> 4);
        let token_len = (first & 0x0F) as usize;
        if token_len > 8 {
            return Err(ProtocolError::Malformed {
                reason: "token length above 8",
            });
        }
        let code = CoapCode(r.u8()?);
        let message_id = u16::from_be_bytes([r.u8()?, r.u8()?]);
        let token = r.take(token_len)?.to_vec();
        let mut uri_path = Vec::new();
        let mut content_format = None;
        let mut payload = Vec::new();
        let mut option_number = 0u16;
        while r.remaining() > 0 {
            let byte = r.u8()?;
            if byte == 0xFF {
                payload = r.rest().to_vec();
                if payload.is_empty() {
                    return Err(ProtocolError::Malformed {
                        reason: "payload marker with empty payload",
                    });
                }
                break;
            }
            let delta = decode_option_part(byte >> 4, &mut r)?;
            let length = decode_option_part(byte & 0x0F, &mut r)? as usize;
            option_number = option_number
                .checked_add(delta)
                .ok_or(ProtocolError::Malformed {
                    reason: "option delta overflow",
                })?;
            let value = r.take(length)?;
            match option_number {
                11 => uri_path.push(String::from_utf8(value.to_vec()).map_err(|_| {
                    ProtocolError::Malformed {
                        reason: "uri-path is not utf-8",
                    }
                })?),
                12 => {
                    content_format = Some(match value.len() {
                        0 => 0,
                        1 => u16::from(value[0]),
                        2 => u16::from_be_bytes([value[0], value[1]]),
                        _ => {
                            return Err(ProtocolError::Malformed {
                                reason: "content-format too long",
                            })
                        }
                    })
                }
                other => {
                    // Critical options (odd) must be understood; elective
                    // (even) may be skipped.
                    if other % 2 == 1 {
                        return Err(ProtocolError::Unsupported {
                            context: "critical coap option",
                            value: u64::from(other),
                        });
                    }
                }
            }
        }
        Ok(CoapMessage {
            mtype,
            code,
            message_id,
            token,
            uri_path,
            content_format,
            payload,
        })
    }
}

fn encode_option(number: u16, value: &[u8], last: &mut u16, out: &mut Vec<u8>) {
    let delta = number - *last;
    *last = number;
    let (delta_nibble, delta_ext) = nibble(delta);
    let (len_nibble, len_ext) = nibble(value.len() as u16);
    out.push((delta_nibble << 4) | len_nibble);
    out.extend_from_slice(&delta_ext);
    out.extend_from_slice(&len_ext);
    out.extend_from_slice(value);
}

/// Splits a value into the 4-bit nibble and its extension bytes
/// (13 → one extension byte, 14 → two; values above 12+255 use 14).
fn nibble(value: u16) -> (u8, Vec<u8>) {
    if value < 13 {
        (value as u8, Vec::new())
    } else if value < 13 + 256 {
        (13, vec![(value - 13) as u8])
    } else {
        (14, (value - 269).to_be_bytes().to_vec())
    }
}

fn decode_option_part(nibble: u8, r: &mut Reader<'_>) -> Result<u16, ProtocolError> {
    match nibble {
        0..=12 => Ok(u16::from(nibble)),
        13 => Ok(13 + u16::from(r.u8()?)),
        14 => Ok(269 + u16::from_be_bytes([r.u8()?, r.u8()?])),
        _ => Err(ProtocolError::Malformed {
            reason: "reserved option nibble 15",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: &CoapMessage) {
        assert_eq!(&CoapMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn get_round_trips() {
        round_trip(&CoapMessage::get(
            0x1234,
            vec![0xAA, 0xBB],
            "sensors/temperature",
        ));
        round_trip(&CoapMessage::get(0, vec![], "v"));
    }

    #[test]
    fn post_and_response_round_trip() {
        let post = CoapMessage::post_json(7, vec![1], "actuate", b"{\"v\":1.0}".to_vec());
        round_trip(&post);
        let resp = post.respond(
            CoapCode::CHANGED,
            Some(content_format::JSON),
            b"{\"ok\":true}".to_vec(),
        );
        round_trip(&resp);
        assert_eq!(resp.message_id, post.message_id);
        assert_eq!(resp.token, post.token);
        assert!(resp.code.is_success());
    }

    #[test]
    fn empty_ack_round_trips() {
        let ack = CoapMessage {
            mtype: CoapType::Acknowledgement,
            code: CoapCode::EMPTY,
            message_id: 9,
            token: vec![],
            uri_path: vec![],
            content_format: None,
            payload: vec![],
        };
        round_trip(&ack);
        assert_eq!(ack.encode().len(), 4, "empty message is 4 bytes");
    }

    #[test]
    fn long_path_segments_use_extended_deltas() {
        let long = "x".repeat(300);
        let m = CoapMessage::get(1, vec![], &format!("{long}/segment"));
        round_trip(&m);
    }

    #[test]
    fn content_format_encodings() {
        for cf in [0u16, 50, 65000] {
            let m = CoapMessage {
                mtype: CoapType::NonConfirmable,
                code: CoapCode::CONTENT,
                message_id: 1,
                token: vec![],
                uri_path: vec![],
                content_format: Some(cf),
                payload: b"x".to_vec(),
            };
            round_trip(&m);
        }
    }

    #[test]
    fn codes_display_dotted() {
        assert_eq!(CoapCode::GET.to_string(), "0.01");
        assert_eq!(CoapCode::CONTENT.to_string(), "2.05");
        assert_eq!(CoapCode::NOT_FOUND.to_string(), "4.04");
    }

    #[test]
    fn rejects_malformed() {
        // Wrong version.
        assert!(CoapMessage::decode(&[0x00, 0x01, 0, 0]).is_err());
        // Token length 15.
        assert!(CoapMessage::decode(&[0x4F, 0x01, 0, 0]).is_err());
        // Truncated.
        assert!(CoapMessage::decode(&[0x40, 0x01, 0]).is_err());
        // Payload marker with nothing after it.
        let mut bytes = CoapMessage::get(1, vec![], "a").encode();
        bytes.push(0xFF);
        assert!(CoapMessage::decode(&bytes).is_err());
        // Unknown critical option (13).
        let mut m = CoapMessage::get(1, vec![], "a").encode();
        // Append option with delta 2 from 11 → 13 (critical), length 0.
        m.push(0x20);
        assert!(CoapMessage::decode(&m).is_err());
    }

    #[test]
    fn unknown_elective_option_skipped() {
        // After Uri-Path(11), delta 3 → option 14 (Max-Age, elective).
        let mut bytes = CoapMessage::get(1, vec![], "a").encode();
        bytes.push(0x31);
        bytes.push(42);
        let m = CoapMessage::decode(&bytes).unwrap();
        assert_eq!(m.path(), "a");
    }

    #[test]
    fn decoder_never_panics_on_fuzz_corpus() {
        // A tiny deterministic corpus of mutations.
        let base = CoapMessage::get(0xBEEF, vec![1, 2, 3], "sensors/t").encode();
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut mutated = base.clone();
                mutated[i] ^= 1 << bit;
                let _ = CoapMessage::decode(&mutated);
            }
        }
    }
}
