//! # dimmer-master — the master node
//!
//! "The master node is the unique entry point of the system … It
//! receives data queries from the users, refers to the ontology to get
//! the interested data sources URIs, and redirects the users to the
//! interested data sources."
//!
//! [`MasterNode`] is that node: it accepts proxy registrations and
//! heartbeats, maintains the [`ontology::Ontology`], evicts silent
//! proxies, and answers queries with **URIs, not data** — the redirect
//! design experiment E5 compares against a relaying master.
//!
//! ## Endpoints
//!
//! | Method + path | Answer |
//! |---|---|
//! | `POST /register` | apply a [`proxy::registration::Registration`] |
//! | `POST /deregister` | remove the proxy's ontology contribution |
//! | `POST /heartbeat` | refresh liveness |
//! | `GET /districts` | district ids and names |
//! | `GET /district/{id}` | the whole district tree |
//! | `GET /district/{id}/area?bbox=a,b,c,d` | the redirect response ([`ontology::AreaResolution`]) |
//! | `GET /district/{id}/entities?kind=` | entity nodes of one kind |
//! | `GET /district/{id}/devices?quantity=` or `?protocol=` | device leaves by quantity or protocol family |
//! | `GET /district/{id}/profile` | aggregator URIs serving windowed rollups |
//! | `GET /ontology` | full forest snapshot |
//! | `GET /stats` | registry counters |
//!
//! ## Ops plane
//!
//! | Method + path | Answer |
//! |---|---|
//! | `GET /metrics` | Prometheus-style text exposition |
//! | `GET /health` | the master's own liveness view |
//! | `GET /fleet/metrics` | exposition after an SLO + fleet-gauge refresh |
//! | `GET /fleet/health` | per-node up/down, scrape staleness and health bodies |
//!
//! The fleet view is fed by the **fleet scraper**
//! ([`MasterNode::enable_fleet_scrape`]): a periodic sweep that polls
//! every registered proxy's `GET /health` over the Web-Service layer
//! and every tracked broker shard's `/health` over the middleware ops
//! tags, recording who answered and when (`ops.up.<name>`,
//! `ops.scrape_age_ns.<name>` gauges).

use std::collections::{BTreeMap, HashMap};

use dimmer_core::{DistrictId, EntityKind, ProxyId, QuantityKind, Uri, Value};
use gis::geo::BoundingBox;
use ontology::{Ontology, OntologyError};
use proxy::registration::{ProxyRef, ProxyRole, Registration};
use proxy::webservice::{
    status, PathPattern, WsCall, WsClient, WsClientEvent, WsRequest, WsResponse, WsServer,
};
use proxy::{uri_node, WS_PORT};
use pubsub::{WirePacket, PUBSUB_PORT};
use simnet::overload::{Admission, AdmissionGate, BreakerConfig, BreakerState, CircuitBreaker};
use simnet::{Context, Node, NodeId, Packet, SimDuration, SimTime, TimerTag};

const TAG_LIVENESS: TimerTag = TimerTag(1);
const TAG_SCRAPE: TimerTag = TimerTag(2);
/// Timer tags above this belong to the scraper's Web-Service client.
const WS_CLIENT_TAGS: u64 = 3_000_000_000;
/// How often the master sweeps for dead proxies.
const LIVENESS_PERIOD: SimDuration = SimDuration::from_secs(30);
/// A proxy silent for longer than this is evicted.
const LIVENESS_HORIZON: SimDuration = SimDuration::from_secs(100);
/// Default fleet-scrape period.
pub const DEFAULT_SCRAPE_INTERVAL: SimDuration = SimDuration::from_secs(15);
/// Default admission capacity for query endpoints (bursts above this
/// are shed with a 503 and a `Retry-After`).
pub const DEFAULT_ADMISSION_CAPACITY: u64 = 1024;
/// Default admission drain rate: sustained queries per second the
/// master is willing to serve.
pub const DEFAULT_ADMISSION_RATE: f64 = 4096.0;
/// A scraped aggregator whose probe latency exceeds this floor *and*
/// three times the fleet median is ejected from redirect rotation.
const OUTLIER_LATENCY_FLOOR: SimDuration = SimDuration::from_millis(100);

/// Breaker settings for the per-district aggregator circuits: sized to
/// the 15 s scrape cadence so a gray-failed aggregator trips within a
/// few rounds and is re-probed (half-open) after the cool-down.
fn district_breaker_config() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        min_samples: 3,
        error_threshold: 0.5,
        latency_threshold: SimDuration::from_millis(750),
        slow_threshold: 0.5,
        open_for: SimDuration::from_secs(45),
        probes_to_close: 1,
    }
}

/// Registry counters exposed at `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Successful registrations applied.
    pub registrations: u64,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Queries answered (area/entities/devices/districts/tree).
    pub queries: u64,
    /// Proxies evicted by the liveness sweep.
    pub evictions: u64,
    /// Device registrations parked while their entity is unknown.
    pub parked_devices: u64,
}

#[derive(Debug, Clone)]
struct ProxyRecord {
    district: DistrictId,
    uri: Uri,
    kind: &'static str,
    /// Ontology bookkeeping to undo on deregistration/eviction.
    contribution: Contribution,
    last_seen: SimTime,
}

/// One scraped node's last known state.
#[derive(Debug, Clone)]
struct ScrapeRecord {
    kind: &'static str,
    /// When the last successful scrape of this target landed.
    last_ok: Option<SimTime>,
    up: bool,
    /// Round-trip latency of the last successful scrape, the
    /// gray-failure signal behind outlier ejection.
    latency: Option<SimDuration>,
    /// The `/health` body from the last successful scrape.
    health: Value,
}

/// State of the periodic fleet scraper (absent until
/// [`MasterNode::enable_fleet_scrape`]).
#[derive(Debug)]
struct FleetScrape {
    interval: SimDuration,
    /// Broker shards polled over the middleware ops tags.
    brokers: Vec<(String, NodeId)>,
    /// Scrape records keyed by target name (proxy id or broker label),
    /// sorted so `/fleet/health` is deterministic.
    records: BTreeMap<String, ScrapeRecord>,
    /// In-flight Web-Service probes: request id → target name.
    inflight_ws: HashMap<u64, String>,
    /// In-flight broker ops probes: `OpsGet` id → target name.
    inflight_ops: HashMap<u64, String>,
    /// In-flight rollup-snapshot probes: request id → district.
    inflight_rollups: HashMap<u64, DistrictId>,
    next_ops_id: u64,
}

#[derive(Debug, Clone)]
enum Contribution {
    Device {
        device_id: String,
        entity_id: String,
    },
    Entity {
        entity_id: String,
    },
    DistrictRoot,
}

/// The master node.
///
/// Construct with the districts it should pre-seed (a district created
/// on demand by a stray registration gets its id as its name).
pub struct MasterNode {
    ontology: Ontology,
    ws: WsServer,
    registry: HashMap<ProxyId, ProxyRecord>,
    /// Device registrations whose entity has not registered yet.
    parked: Vec<Registration>,
    /// District seeds, kept so a restart can rebuild the empty ontology.
    seeds: Vec<(DistrictId, String)>,
    /// District → owning broker-shard label, reapplied after restarts
    /// (empty on single-broker deployments).
    shard_owners: Vec<(DistrictId, String)>,
    /// Client half used by the fleet scraper's `/health` probes.
    ws_client: WsClient,
    /// Fleet scraper state; `None` until enabled.
    scrape: Option<FleetScrape>,
    /// Admission gate over the query endpoints; registrations,
    /// heartbeats and the ops plane are never shed.
    gate: AdmissionGate,
    /// Per-district circuit breakers over aggregator rollup probes.
    breakers: BTreeMap<DistrictId, CircuitBreaker>,
    /// Last good rollup snapshot per district, served stale while that
    /// district's breaker is open.
    rollup_cache: BTreeMap<DistrictId, (SimTime, Value)>,
    stats: MasterStats,
}

impl std::fmt::Debug for MasterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MasterNode")
            .field("districts", &self.ontology.district_count())
            .field("proxies", &self.registry.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MasterNode {
    /// Creates a master pre-seeded with `districts`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate district ids in `districts`.
    pub fn new(districts: impl IntoIterator<Item = (DistrictId, String)>) -> Self {
        let seeds: Vec<(DistrictId, String)> = districts.into_iter().collect();
        let mut ontology = Ontology::new();
        for (id, name) in &seeds {
            ontology
                .add_district(id.clone(), name.clone())
                .expect("district seeds must be unique");
        }
        MasterNode {
            ontology,
            ws: WsServer::new(),
            registry: HashMap::new(),
            parked: Vec::new(),
            seeds,
            shard_owners: Vec::new(),
            ws_client: WsClient::new(WS_CLIENT_TAGS),
            scrape: None,
            gate: AdmissionGate::new(DEFAULT_ADMISSION_CAPACITY, DEFAULT_ADMISSION_RATE),
            breakers: BTreeMap::new(),
            rollup_cache: BTreeMap::new(),
            stats: MasterStats::default(),
        }
    }

    /// Replaces the query admission limits: at most `capacity` queued
    /// queries, drained at `drain_per_sec`. Queries past the bound are
    /// answered with a cheap 503 carrying a `Retry-After`.
    pub fn set_admission_limits(&mut self, capacity: u64, drain_per_sec: f64) {
        self.gate = AdmissionGate::new(capacity, drain_per_sec);
    }

    /// Turns on the periodic fleet scraper: every `interval` the master
    /// probes each registered proxy's `GET /health` (plus every broker
    /// tracked with [`MasterNode::track_broker`]) and records who
    /// answered, feeding the `ops.up.<name>` / `ops.scrape_age_ns.<name>`
    /// gauges and the `/fleet/*` endpoints.
    pub fn enable_fleet_scrape(&mut self, interval: SimDuration) {
        self.scrape = Some(FleetScrape {
            interval,
            brokers: Vec::new(),
            records: BTreeMap::new(),
            inflight_ws: HashMap::new(),
            inflight_ops: HashMap::new(),
            inflight_rollups: HashMap::new(),
            next_ops_id: 1,
        });
    }

    /// Adds a broker shard to the fleet scrape (brokers speak the
    /// middleware wire, not the Web Service, so they cannot register
    /// like proxies). Enables the scraper at
    /// [`DEFAULT_SCRAPE_INTERVAL`] if it was off.
    pub fn track_broker(&mut self, label: impl Into<String>, node: NodeId) {
        if self.scrape.is_none() {
            self.enable_fleet_scrape(DEFAULT_SCRAPE_INTERVAL);
        }
        let scrape = self.scrape.as_mut().expect("just enabled");
        let label = label.into();
        scrape.brokers.retain(|(l, _)| *l != label);
        scrape.brokers.push((label, node));
    }

    /// Records the broker shard owning each listed district. The
    /// assignment is part of the deployment plan, not learned state, so
    /// it survives restarts the way seeds do: reapplied when the
    /// ontology is rebuilt.
    pub fn set_shard_owners(&mut self, owners: impl IntoIterator<Item = (DistrictId, String)>) {
        self.shard_owners = owners.into_iter().collect();
        self.apply_shard_owners();
    }

    fn apply_shard_owners(&mut self) {
        for (district, broker) in &self.shard_owners.clone() {
            self.ensure_district(district);
            self.ontology
                .district_mut(district)
                .expect("just ensured")
                .set_broker(broker.clone());
        }
    }

    /// The live ontology (read access for tests and experiments).
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The registry counters.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Number of registered proxies.
    pub fn proxy_count(&self) -> usize {
        self.registry.len()
    }

    /// Number of device registrations parked waiting for their entity.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    fn ensure_district(&mut self, district: &DistrictId) {
        if self.ontology.district(district).is_none() {
            self.ontology
                .add_district(district.clone(), district.as_str())
                .expect("checked absent");
        }
    }

    fn apply_registration(
        &mut self,
        registration: Registration,
        now: SimTime,
    ) -> Result<(), OntologyError> {
        self.ensure_district(&registration.district);
        let contribution = match &registration.role {
            ProxyRole::Device { entity_id, leaf } => {
                if self
                    .ontology
                    .district(&registration.district)
                    .and_then(|t| t.entity(entity_id))
                    .is_none()
                {
                    // Entity not known yet: park the registration until
                    // its Database-proxy shows up.
                    self.stats.parked_devices += 1;
                    self.parked.push(registration);
                    return Ok(());
                }
                let device_id = leaf.device().as_str().to_owned();
                // Re-registration of the same device replaces the leaf.
                self.ontology
                    .remove_device(&registration.district, &device_id)?;
                self.ontology
                    .add_device(&registration.district, entity_id, leaf.clone())?;
                Contribution::Device {
                    device_id,
                    entity_id: entity_id.clone(),
                }
            }
            ProxyRole::EntityDatabase { entity } => {
                let entity_id = entity.id().to_owned();
                // A re-registration (e.g. after a lost response) replaces
                // the entity node but must not orphan device leaves that
                // registered under it in the meantime.
                let leaves: Vec<_> = self
                    .ontology
                    .district(&registration.district)
                    .and_then(|t| t.entity(&entity_id))
                    .map(|e| e.devices().to_vec())
                    .unwrap_or_default();
                self.ontology
                    .remove_entity(&registration.district, &entity_id)?;
                self.ontology
                    .add_entity(&registration.district, entity.clone())?;
                for leaf in leaves {
                    let _ = self
                        .ontology
                        .add_device(&registration.district, &entity_id, leaf);
                }
                Contribution::Entity { entity_id }
            }
            ProxyRole::Gis => {
                self.ontology
                    .district_mut(&registration.district)?
                    .add_gis_proxy(registration.uri.clone());
                Contribution::DistrictRoot
            }
            ProxyRole::MeasurementArchive => {
                self.ontology
                    .district_mut(&registration.district)?
                    .add_measurement_proxy(registration.uri.clone());
                Contribution::DistrictRoot
            }
            ProxyRole::Aggregator => {
                self.ontology
                    .district_mut(&registration.district)?
                    .add_aggregator_proxy(registration.uri.clone());
                Contribution::DistrictRoot
            }
        };
        self.registry.insert(
            registration.proxy.clone(),
            ProxyRecord {
                district: registration.district.clone(),
                uri: registration.uri.clone(),
                kind: match &registration.role {
                    ProxyRole::Device { .. } => "device",
                    ProxyRole::EntityDatabase { .. } => "entity_database",
                    ProxyRole::Aggregator => "aggregator",
                    ProxyRole::Gis | ProxyRole::MeasurementArchive => "district_root",
                },
                contribution,
                last_seen: now,
            },
        );
        self.stats.registrations += 1;
        // An entity registration may unblock parked devices.
        self.retry_parked(now);
        Ok(())
    }

    fn retry_parked(&mut self, now: SimTime) {
        let parked = std::mem::take(&mut self.parked);
        for registration in parked {
            let entity_known = match &registration.role {
                ProxyRole::Device { entity_id, .. } => self
                    .ontology
                    .district(&registration.district)
                    .and_then(|t| t.entity(entity_id))
                    .is_some(),
                _ => true,
            };
            if entity_known {
                // Cannot recurse through apply_registration's parking
                // path: entity_known guarantees direct application.
                let _ = self.apply_registration(registration, now);
            } else {
                self.parked.push(registration);
            }
        }
    }

    fn remove_contribution(&mut self, record: &ProxyRecord) {
        match &record.contribution {
            Contribution::Device { device_id, .. } => {
                let _ = self.ontology.remove_device(&record.district, device_id);
            }
            Contribution::Entity { entity_id } => {
                let _ = self.ontology.remove_entity(&record.district, entity_id);
                // The entity's device leaves died with it. Forget their
                // proxies' registrations too, so their next heartbeat is
                // answered 404 and they re-register (parking until the
                // entity returns).
                self.registry.retain(|_, r| {
                    r.district != record.district
                        || !matches!(
                            &r.contribution,
                            Contribution::Device { entity_id: e, .. } if e == entity_id
                        )
                });
            }
            Contribution::DistrictRoot => {
                // GIS/measurement proxies stay listed on the root; a
                // production system would prune the URI list here.
            }
        }
    }

    /// Whether a request rides the query plane (sheddable) rather than
    /// the control or ops plane (never shed: losing registrations or
    /// health probes under load would turn overload into gray failure).
    fn is_query(request: &WsRequest) -> bool {
        request.method == proxy::webservice::Method::Get
            && !matches!(
                request.path.as_str(),
                "/health" | "/metrics" | "/fleet/health" | "/fleet/metrics"
            )
    }

    fn handle(&mut self, ctx: &mut Context<'_>, call: WsCall) {
        ctx.telemetry().metrics.incr("master.requests");
        if Self::is_query(&call.request) {
            if let Admission::Shed { retry_after } =
                self.gate.try_admit(ctx.now(), &ctx.telemetry().metrics)
            {
                let response = WsResponse::unavailable(retry_after);
                self.ws.respond(ctx, &call, response);
                return;
            }
        }
        let request = &call.request;
        let response = match (request.method, request.path.as_str()) {
            (proxy::webservice::Method::Post, "/register") => self.post_register(ctx, request),
            (proxy::webservice::Method::Post, "/deregister") => self.post_deregister(request),
            (proxy::webservice::Method::Post, "/heartbeat") => self.post_heartbeat(ctx, request),
            (proxy::webservice::Method::Get, "/districts") => self.get_districts(),
            (proxy::webservice::Method::Get, "/proxies") => {
                self.stats.queries += 1;
                WsResponse::ok(Value::object([(
                    "proxies",
                    Value::Array(
                        self.registry
                            .iter()
                            .map(|(id, record)| {
                                Value::object([
                                    ("proxy", Value::from(id.as_str())),
                                    ("district", Value::from(record.district.as_str())),
                                    ("kind", Value::from(record.kind)),
                                    ("uri", Value::from(record.uri.to_string())),
                                ])
                            })
                            .collect(),
                    ),
                )]))
            }
            (proxy::webservice::Method::Get, "/ontology") => {
                self.stats.queries += 1;
                WsResponse::ok(self.ontology.to_value())
            }
            (proxy::webservice::Method::Get, "/metrics") => {
                WsResponse::ok(Value::from(ctx.telemetry().exposition()))
            }
            (proxy::webservice::Method::Get, "/health") => self.get_health(),
            (proxy::webservice::Method::Get, "/fleet/metrics") => {
                // A fleet scrape is the natural refresh point: recompute
                // SLO attainment from the histograms and fold the
                // scraper's up/staleness view in before rendering.
                ctx.telemetry().slo_refresh();
                self.refresh_fleet_gauges(ctx);
                WsResponse::ok(Value::from(ctx.telemetry().exposition()))
            }
            (proxy::webservice::Method::Get, "/fleet/health") => self.get_fleet_health(ctx),
            (proxy::webservice::Method::Get, "/stats") => WsResponse::ok(Value::object([
                (
                    "registrations",
                    Value::from(self.stats.registrations as i64),
                ),
                ("heartbeats", Value::from(self.stats.heartbeats as i64)),
                ("queries", Value::from(self.stats.queries as i64)),
                ("evictions", Value::from(self.stats.evictions as i64)),
                ("proxies", Value::from(self.registry.len() as i64)),
                ("parked_devices", Value::from(self.parked.len() as i64)),
            ])),
            (proxy::webservice::Method::Get, path) => self.get_routed(ctx, path, request),
            _ => WsResponse::error(status::NOT_FOUND, "unknown endpoint"),
        };
        self.ws.respond(ctx, &call, response);
    }

    fn post_register(&mut self, ctx: &mut Context<'_>, request: &WsRequest) -> WsResponse {
        match Registration::from_value(&request.body) {
            Ok(registration) => {
                let proxy = registration.proxy.clone();
                match self.apply_registration(registration, ctx.now()) {
                    Ok(()) => {
                        ctx.telemetry().metrics.incr("master.registrations");
                        ctx.telemetry()
                            .metrics
                            .set_gauge("master.proxies", self.registry.len() as f64);
                        WsResponse::ok(Value::object([("registered", Value::from(proxy.as_str()))]))
                    }
                    Err(e) => WsResponse::error(status::INTERNAL_ERROR, e.to_string()),
                }
            }
            Err(e) => WsResponse::error(status::BAD_REQUEST, e.to_string()),
        }
    }

    fn post_deregister(&mut self, request: &WsRequest) -> WsResponse {
        match ProxyRef::from_value(&request.body) {
            Ok(r) => match self.registry.remove(&r.proxy) {
                Some(record) => {
                    self.remove_contribution(&record);
                    WsResponse::ok(Value::object([(
                        "deregistered",
                        Value::from(r.proxy.as_str()),
                    )]))
                }
                None => WsResponse::error(status::NOT_FOUND, "unknown proxy"),
            },
            Err(e) => WsResponse::error(status::BAD_REQUEST, e.to_string()),
        }
    }

    fn post_heartbeat(&mut self, ctx: &mut Context<'_>, request: &WsRequest) -> WsResponse {
        match ProxyRef::from_value(&request.body) {
            Ok(r) => match self.registry.get_mut(&r.proxy) {
                Some(record) => {
                    record.last_seen = ctx.now();
                    self.stats.heartbeats += 1;
                    ctx.telemetry().metrics.incr("master.heartbeats");
                    WsResponse::ok(Value::Null)
                }
                None => WsResponse::error(status::NOT_FOUND, "unknown proxy"),
            },
            Err(e) => WsResponse::error(status::BAD_REQUEST, e.to_string()),
        }
    }

    fn get_districts(&mut self) -> WsResponse {
        self.stats.queries += 1;
        let list: Vec<Value> = self
            .ontology
            .districts()
            .filter_map(|id| self.ontology.district(id))
            .map(|tree| {
                Value::object([
                    ("district", Value::from(tree.district().as_str())),
                    ("name", Value::from(tree.name())),
                    ("entities", Value::from(tree.entities().len() as i64)),
                    ("devices", Value::from(tree.device_count() as i64)),
                ])
            })
            .collect();
        WsResponse::ok(Value::object([("districts", Value::Array(list))]))
    }

    fn get_routed(&mut self, ctx: &Context<'_>, path: &str, request: &WsRequest) -> WsResponse {
        let tree_pattern = PathPattern::new("/district/{id}");
        let area_pattern = PathPattern::new("/district/{id}/area");
        let entities_pattern = PathPattern::new("/district/{id}/entities");
        let devices_pattern = PathPattern::new("/district/{id}/devices");
        let profile_pattern = PathPattern::new("/district/{id}/profile");

        let parse_district = |params: &std::collections::BTreeMap<String, String>| {
            DistrictId::new(params["id"].as_str())
        };

        if let Some(params) = profile_pattern.matches(path) {
            self.stats.queries += 1;
            let Ok(district) = parse_district(&params) else {
                return WsResponse::error(status::BAD_REQUEST, "invalid district id");
            };
            // Redirect principle: hand back the aggregator URIs serving
            // this district's rollups, never the rollups themselves —
            // except in degraded mode, where a stale snapshot beats a
            // redirect into an open circuit.
            let Some(tree) = self.ontology.district(&district) else {
                return WsResponse::error(status::NOT_FOUND, "unknown district");
            };
            let uris: Vec<String> = tree
                .aggregator_proxies()
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            let (kept, ejected) = self.eject_outliers(uris);
            if ejected > 0 {
                ctx.telemetry()
                    .metrics
                    .add("master.outlier_ejections", ejected);
            }
            let open = matches!(
                self.breakers.get(&district).map(CircuitBreaker::state),
                Some(BreakerState::Open)
            );
            let aggregators = Value::Array(kept.iter().map(|u| Value::from(u.as_str())).collect());
            if open || kept.is_empty() {
                // The district's aggregator is open-circuit (or every
                // replica was ejected): serve the last retained rollups
                // with a staleness marker instead of a dead redirect.
                if let Some((at, rollups)) = self.rollup_cache.get(&district) {
                    ctx.telemetry().metrics.incr("master.stale_rollups");
                    return WsResponse::ok(Value::object([
                        ("district", Value::from(district.as_str())),
                        ("aggregators", aggregators),
                        ("stale", Value::from(true)),
                        (
                            "staleness_ms",
                            Value::from(ctx.now().saturating_since(*at).as_millis_f64() as i64),
                        ),
                        ("rollups", rollups.clone()),
                    ]));
                }
            }
            return WsResponse::ok(Value::object([
                ("district", Value::from(district.as_str())),
                ("aggregators", aggregators),
                ("stale", Value::from(false)),
            ]));
        }

        if let Some(params) = area_pattern.matches(path) {
            self.stats.queries += 1;
            let Ok(district) = parse_district(&params) else {
                return WsResponse::error(status::BAD_REQUEST, "invalid district id");
            };
            let Some(raw) = request.query("bbox") else {
                return WsResponse::error(status::BAD_REQUEST, "bbox parameter required");
            };
            let bbox = match BoundingBox::parse_query(raw) {
                Ok(b) => b,
                Err(e) => return WsResponse::error(status::BAD_REQUEST, e.to_string()),
            };
            return match self.ontology.resolve_area(&district, &bbox) {
                Ok(resolution) => WsResponse::ok(resolution.to_value()),
                Err(e) => WsResponse::error(status::NOT_FOUND, e.to_string()),
            };
        }
        if let Some(params) = entities_pattern.matches(path) {
            self.stats.queries += 1;
            let Ok(district) = parse_district(&params) else {
                return WsResponse::error(status::BAD_REQUEST, "invalid district id");
            };
            let kind = match request.query("kind").map(EntityKind::parse) {
                Some(Ok(k)) => k,
                Some(Err(e)) => return WsResponse::error(status::BAD_REQUEST, e.to_string()),
                None => EntityKind::Building,
            };
            return match self.ontology.entities_of_kind(&district, kind) {
                Ok(entities) => WsResponse::ok(Value::object([(
                    "entities",
                    Value::Array(entities.iter().map(|e| e.to_value()).collect()),
                )])),
                Err(e) => WsResponse::error(status::NOT_FOUND, e.to_string()),
            };
        }
        if let Some(params) = devices_pattern.matches(path) {
            self.stats.queries += 1;
            let Ok(district) = parse_district(&params) else {
                return WsResponse::error(status::BAD_REQUEST, "invalid district id");
            };
            let devices = match (request.query("quantity"), request.query("protocol")) {
                (Some(q), _) => match QuantityKind::parse(q) {
                    Ok(quantity) => self.ontology.devices_by_quantity(&district, quantity),
                    Err(e) => return WsResponse::error(status::BAD_REQUEST, e.to_string()),
                },
                (None, Some(protocol)) => self.ontology.devices_by_protocol(&district, protocol),
                (None, None) => {
                    return WsResponse::error(
                        status::BAD_REQUEST,
                        "quantity or protocol parameter required",
                    )
                }
            };
            return match devices {
                Ok(devices) => WsResponse::ok(Value::object([(
                    "devices",
                    Value::Array(
                        devices
                            .iter()
                            .map(|(entity, leaf)| {
                                let mut v = leaf.to_value();
                                v.insert("entity", Value::from(*entity));
                                v
                            })
                            .collect(),
                    ),
                )])),
                Err(e) => WsResponse::error(status::NOT_FOUND, e.to_string()),
            };
        }
        if let Some(params) = tree_pattern.matches(path) {
            self.stats.queries += 1;
            let Ok(district) = parse_district(&params) else {
                return WsResponse::error(status::BAD_REQUEST, "invalid district id");
            };
            return match self.ontology.district(&district) {
                Some(tree) => WsResponse::ok(tree.to_value()),
                None => WsResponse::error(status::NOT_FOUND, "unknown district"),
            };
        }
        WsResponse::error(status::NOT_FOUND, "unknown endpoint")
    }

    /// Filters known-bad aggregators out of a redirect list: replicas
    /// the scraper saw go down, plus latency outliers — probes slower
    /// than [`OUTLIER_LATENCY_FLOOR`] *and* three times the fleet
    /// median. Returns the surviving URIs and the eject count.
    fn eject_outliers(&self, uris: Vec<String>) -> (Vec<String>, u64) {
        let Some(scrape) = self.scrape.as_ref() else {
            return (uris, 0);
        };
        let mut lats: Vec<u64> = scrape
            .records
            .values()
            .filter(|r| r.kind == "aggregator")
            .filter_map(|r| r.latency.map(|l| l.as_nanos()))
            .collect();
        lats.sort_unstable();
        // Lower-middle median: with two replicas the healthy one sets
        // the norm, so the slow one still reads as an outlier.
        let median = lats.get(lats.len().saturating_sub(1) / 2).copied();
        let by_uri: HashMap<String, &ScrapeRecord> = self
            .registry
            .iter()
            .filter(|(_, rec)| rec.kind == "aggregator")
            .filter_map(|(id, rec)| {
                scrape
                    .records
                    .get(id.as_str())
                    .map(|s| (rec.uri.to_string(), s))
            })
            .collect();
        let mut ejected = 0;
        let kept = uris
            .into_iter()
            .filter(|uri| {
                // Never scraped (or scraper off for it): innocent until
                // proven slow.
                let Some(rec) = by_uri.get(uri) else {
                    return true;
                };
                let down = rec.last_ok.is_some() && !rec.up;
                let slow = match (rec.latency, median) {
                    (Some(l), Some(m)) => {
                        l > OUTLIER_LATENCY_FLOOR && l.as_nanos() > m.saturating_mul(3)
                    }
                    _ => false,
                };
                if down || slow {
                    ejected += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        (kept, ejected)
    }

    /// One scrape round: expire the previous round's unanswered probes,
    /// refresh the fleet gauges, then fan a fresh `/health` probe out to
    /// every registered proxy and tracked broker.
    fn run_scrape(&mut self, ctx: &mut Context<'_>) {
        let Some(scrape) = self.scrape.as_mut() else {
            return;
        };
        // A probe still in flight from the previous round never
        // answered: its target is down until proven otherwise.
        for name in scrape.inflight_ws.drain().map(|(_, n)| n) {
            if let Some(rec) = scrape.records.get_mut(&name) {
                rec.up = false;
            }
        }
        for name in scrape.inflight_ops.drain().map(|(_, n)| n) {
            if let Some(rec) = scrape.records.get_mut(&name) {
                rec.up = false;
            }
        }
        // A rollup snapshot still in flight from the previous round is a
        // failed probe as far as the district breaker is concerned.
        for district in scrape.inflight_rollups.drain().map(|(_, d)| d) {
            self.breakers
                .entry(district)
                .or_insert_with(|| CircuitBreaker::new(district_breaker_config()))
                .record_failure(ctx.now(), &ctx.telemetry().metrics);
        }
        ctx.telemetry().metrics.incr("ops.scrapes");
        // Proxies: whatever the registry holds right now, probed over
        // the Web Service at the node its registration URI names.
        let proxies: Vec<(String, NodeId, &'static str)> = self
            .registry
            .iter()
            .filter_map(|(id, record)| {
                uri_node(&record.uri).map(|node| (id.as_str().to_owned(), node, record.kind))
            })
            .collect();
        for (name, node, kind) in proxies {
            let id = self
                .ws_client
                .request(ctx, node, &WsRequest::get("/health"));
            scrape.inflight_ws.insert(id, name.clone());
            scrape.records.entry(name).or_insert(ScrapeRecord {
                kind,
                last_ok: None,
                up: false,
                latency: None,
                health: Value::Null,
            });
        }
        // Brokers: probed over the middleware ops tags.
        for (label, node) in scrape.brokers.clone() {
            let id = scrape.next_ops_id;
            scrape.next_ops_id += 1;
            ctx.send(
                node,
                PUBSUB_PORT,
                WirePacket::OpsGet {
                    id,
                    path: "/health".to_owned(),
                }
                .encode(),
            );
            scrape.inflight_ops.insert(id, label.clone());
            scrape.records.entry(label).or_insert(ScrapeRecord {
                kind: "broker",
                last_ok: None,
                up: false,
                latency: None,
                health: Value::Null,
            });
        }
        // Rollup snapshot probes: one aggregator per district (smallest
        // proxy id, for determinism), gated by that district's breaker —
        // an open circuit stops probing until the half-open window.
        let mut targets: BTreeMap<DistrictId, (String, NodeId)> = BTreeMap::new();
        for (id, rec) in &self.registry {
            if rec.kind != "aggregator" {
                continue;
            }
            let Some(node) = uri_node(&rec.uri) else {
                continue;
            };
            let name = id.as_str().to_owned();
            match targets.entry(rec.district.clone()) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((name, node));
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if name < o.get().0 {
                        o.insert((name, node));
                    }
                }
            }
        }
        for (district, (_, node)) in targets {
            let breaker = self
                .breakers
                .entry(district.clone())
                .or_insert_with(|| CircuitBreaker::new(district_breaker_config()));
            if !breaker.allow(ctx.now(), &ctx.telemetry().metrics) {
                continue;
            }
            let id = self
                .ws_client
                .request(ctx, node, &WsRequest::get("/rollups"));
            let scrape = self.scrape.as_mut().expect("checked above");
            scrape.inflight_rollups.insert(id, district);
        }
        self.refresh_fleet_gauges(ctx);
    }

    /// Publishes the scraper's view as gauges: `ops.up.<name>` (1 up,
    /// 0 down) and `ops.scrape_age_ns.<name>` (time since the last
    /// successful scrape; sim age when never scraped).
    fn refresh_fleet_gauges(&self, ctx: &Context<'_>) {
        let Some(scrape) = self.scrape.as_ref() else {
            return;
        };
        let metrics = &ctx.telemetry().metrics;
        for (name, rec) in &scrape.records {
            metrics.set_gauge(&format!("ops.up.{name}"), if rec.up { 1.0 } else { 0.0 });
            let age = match rec.last_ok {
                Some(t) => ctx.now().saturating_since(t).as_nanos(),
                None => ctx.now().as_nanos(),
            };
            metrics.set_gauge(&format!("ops.scrape_age_ns.{name}"), age as f64);
        }
    }

    fn on_scrape_ws_event(&mut self, ctx: &Context<'_>, event: WsClientEvent) {
        match event {
            WsClientEvent::Response { id, response } => {
                let latency = self
                    .ws_client
                    .take_sent_at(id)
                    .map(|t| ctx.now().saturating_since(t));
                let Some(scrape) = self.scrape.as_mut() else {
                    return;
                };
                if let Some(district) = scrape.inflight_rollups.remove(&id) {
                    let breaker = self
                        .breakers
                        .entry(district.clone())
                        .or_insert_with(|| CircuitBreaker::new(district_breaker_config()));
                    if response.is_ok() {
                        breaker.record_success(
                            ctx.now(),
                            latency.unwrap_or_default(),
                            &ctx.telemetry().metrics,
                        );
                        self.rollup_cache
                            .insert(district, (ctx.now(), response.body));
                    } else {
                        breaker.record_failure(ctx.now(), &ctx.telemetry().metrics);
                    }
                    return;
                }
                let Some(name) = scrape.inflight_ws.remove(&id) else {
                    return;
                };
                if let Some(rec) = scrape.records.get_mut(&name) {
                    rec.up = response.is_ok();
                    if response.is_ok() {
                        rec.last_ok = Some(ctx.now());
                        rec.latency = latency;
                        rec.health = response.body;
                    }
                }
            }
            WsClientEvent::TimedOut { id } => {
                self.ws_client.take_sent_at(id);
                let Some(scrape) = self.scrape.as_mut() else {
                    return;
                };
                if let Some(district) = scrape.inflight_rollups.remove(&id) {
                    self.breakers
                        .entry(district)
                        .or_insert_with(|| CircuitBreaker::new(district_breaker_config()))
                        .record_failure(ctx.now(), &ctx.telemetry().metrics);
                    return;
                }
                if let Some(name) = scrape.inflight_ws.remove(&id) {
                    if let Some(rec) = scrape.records.get_mut(&name) {
                        rec.up = false;
                    }
                }
            }
        }
    }

    fn on_scrape_ops_reply(&mut self, ctx: &Context<'_>, id: u64, reply_status: u16, body: &[u8]) {
        let Some(scrape) = self.scrape.as_mut() else {
            return;
        };
        let Some(name) = scrape.inflight_ops.remove(&id) else {
            return;
        };
        if let Some(rec) = scrape.records.get_mut(&name) {
            rec.up = reply_status == status::OK;
            if rec.up {
                rec.last_ok = Some(ctx.now());
                rec.health = std::str::from_utf8(body)
                    .ok()
                    .and_then(|text| dimmer_core::json::from_str(text).ok())
                    .unwrap_or(Value::Null);
            }
        }
    }

    /// The master's own liveness view.
    fn get_health(&self) -> WsResponse {
        WsResponse::ok(Value::object([
            ("status", Value::from("ok")),
            ("kind", Value::from("master")),
            ("proxies", Value::from(self.registry.len() as i64)),
            ("parked_devices", Value::from(self.parked.len() as i64)),
            (
                "districts",
                Value::from(self.ontology.district_count() as i64),
            ),
            ("fleet_scrape", Value::from(self.scrape.is_some())),
        ]))
    }

    /// The merged fleet liveness view: one entry per scraped node with
    /// its up/down verdict, scrape staleness and last health body.
    fn get_fleet_health(&self, ctx: &Context<'_>) -> WsResponse {
        let Some(scrape) = self.scrape.as_ref() else {
            return WsResponse::error(status::NOT_FOUND, "fleet scrape not enabled");
        };
        self.refresh_fleet_gauges(ctx);
        let (mut up, mut down) = (0i64, 0i64);
        let nodes: Vec<Value> = scrape
            .records
            .iter()
            .map(|(name, rec)| {
                if rec.up {
                    up += 1;
                } else {
                    down += 1;
                }
                let age = match rec.last_ok {
                    Some(t) => ctx.now().saturating_since(t).as_nanos(),
                    None => ctx.now().as_nanos(),
                };
                Value::object([
                    ("name", Value::from(name.as_str())),
                    ("kind", Value::from(rec.kind)),
                    ("up", Value::from(rec.up)),
                    ("scrape_age_ns", Value::from(age as i64)),
                    ("health", rec.health.clone()),
                ])
            })
            .collect();
        WsResponse::ok(Value::object([
            (
                "status",
                Value::from(if down == 0 { "ok" } else { "degraded" }),
            ),
            ("up", Value::from(up)),
            ("down", Value::from(down)),
            ("nodes", Value::Array(nodes)),
        ]))
    }

    fn sweep_liveness(&mut self, now: SimTime) -> u64 {
        let mut dead: Vec<ProxyId> = self
            .registry
            .iter()
            .filter(|(_, record)| now.saturating_since(record.last_seen) > LIVENESS_HORIZON)
            .map(|(id, _)| id.clone())
            .collect();
        // Evict device proxies before entity proxies (an entity eviction
        // cascades over its devices' records, which would otherwise hide
        // their own evictions), and sort for a deterministic sweep.
        dead.sort_by_cached_key(|id| {
            let entity = matches!(
                self.registry.get(id).map(|r| &r.contribution),
                Some(Contribution::Entity { .. })
            );
            (entity, id.as_str().to_owned())
        });
        let mut evicted = 0;
        for id in dead {
            if let Some(record) = self.registry.remove(&id) {
                self.remove_contribution(&record);
                self.stats.evictions += 1;
                evicted += 1;
            }
        }
        evicted
    }
}

impl Node for MasterNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(LIVENESS_PERIOD, TAG_LIVENESS);
        if let Some(scrape) = &self.scrape {
            ctx.set_timer(scrape.interval, TAG_SCRAPE);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // The registry, parked queue and ontology are in-memory state:
        // they die with the process, and only the district seeds come
        // back. Proxies discover the loss when their next heartbeat is
        // answered 404 and re-register, repopulating the ontology.
        // Lifetime counters in `stats` survive, like a persisted log.
        self.ontology = Ontology::new();
        for (id, name) in &self.seeds {
            self.ontology
                .add_district(id.clone(), name.clone())
                .expect("seeds were unique at construction");
        }
        self.apply_shard_owners();
        self.registry.clear();
        self.parked.clear();
        self.ws_client.reset();
        if let Some(scrape) = &mut self.scrape {
            // In-flight probes died with the process; the records (and
            // their gauges) survive like any other lifetime counter.
            scrape.inflight_ws.clear();
            scrape.inflight_ops.clear();
            scrape.inflight_rollups.clear();
        }
        // Breaker windows and the stale-rollup cache are in-memory
        // state: they die with the process like the registry.
        self.breakers.clear();
        self.rollup_cache.clear();
        ctx.telemetry().metrics.incr("master.restart");
        ctx.telemetry().metrics.set_gauge("master.proxies", 0.0);
        self.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.port {
            WS_PORT => {
                if let Some(event) = self.ws_client.accept(&pkt) {
                    self.on_scrape_ws_event(ctx, event);
                    return;
                }
                if let Some(call) = self.ws.accept(ctx, &pkt) {
                    self.handle(ctx, call);
                }
            }
            PUBSUB_PORT => {
                if let Ok(WirePacket::OpsReply { id, status, body }) =
                    WirePacket::decode(&pkt.payload)
                {
                    self.on_scrape_ops_reply(ctx, id, status, &body);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TAG_LIVENESS {
            let evicted = self.sweep_liveness(ctx.now());
            if evicted > 0 {
                ctx.telemetry().metrics.add("master.evictions", evicted);
                ctx.telemetry()
                    .metrics
                    .set_gauge("master.proxies", self.registry.len() as f64);
            }
            ctx.set_timer(LIVENESS_PERIOD, TAG_LIVENESS);
        } else if tag == TAG_SCRAPE {
            self.run_scrape(ctx);
            if let Some(scrape) = &self.scrape {
                ctx.set_timer(scrape.interval, TAG_SCRAPE);
            }
        } else if tag.0 >= WS_CLIENT_TAGS {
            if let Some(event) = self.ws_client.on_timer(ctx, tag) {
                self.on_scrape_ws_event(ctx, event);
            }
        }
    }
}

#[cfg(test)]
mod tests;
