//! Master-node tests driven through the simulated network.

use dimmer_core::{BuildingId, DeviceId, DistrictId, ProxyId, QuantityKind, Uri, Value};
use ontology::{AreaResolution, DeviceLeaf, EntityNode};
use proxy::registration::{ProxyRef, ProxyRole, Registration};
use proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use simnet::{Context, Node, Packet, SimConfig, SimDuration, Simulator, TimerTag};

use crate::MasterNode;
use gis::geo::GeoPoint;

/// A scripted test client: fires a queue of requests sequentially and
/// records responses.
struct Script {
    client: WsClient,
    master: simnet::NodeId,
    queue: Vec<WsRequest>,
    responses: Vec<WsResponse>,
    timeouts: usize,
}

impl Script {
    fn new(master: simnet::NodeId, queue: Vec<WsRequest>) -> Self {
        Script {
            client: WsClient::new(1000),
            master,
            queue,
            responses: vec![],
            timeouts: 0,
        }
    }

    fn fire_next(&mut self, ctx: &mut Context<'_>) {
        if let Some(request) = self.queue.first().cloned() {
            self.queue.remove(0);
            self.client.request(ctx, self.master, &request);
        }
    }
}

impl Node for Script {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.fire_next(ctx);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            self.responses.push(response);
            self.fire_next(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if let Some(WsClientEvent::TimedOut { .. }) = self.client.on_timer(ctx, tag) {
            self.timeouts += 1;
            self.fire_next(ctx);
        }
    }
}

fn did(s: &str) -> DistrictId {
    DistrictId::new(s).unwrap()
}

fn uri(s: &str) -> Uri {
    Uri::parse(s).unwrap()
}

fn building_registration(proxy: &str, building: &str, lat: f64) -> Registration {
    Registration {
        proxy: ProxyId::new(proxy).unwrap(),
        district: did("d1"),
        uri: uri(&format!("sim://{proxy}/")),
        role: ProxyRole::EntityDatabase {
            entity: EntityNode::building(
                BuildingId::new(building).unwrap(),
                uri(&format!("sim://{proxy}/model")),
            )
            .with_location(GeoPoint::new(lat, 7.68)),
        },
    }
}

fn device_registration(proxy: &str, building: &str, device: &str) -> Registration {
    Registration {
        proxy: ProxyId::new(proxy).unwrap(),
        district: did("d1"),
        uri: uri(&format!("sim://{proxy}/")),
        role: ProxyRole::Device {
            entity_id: building.into(),
            leaf: DeviceLeaf::new(
                DeviceId::new(device).unwrap(),
                "zigbee",
                QuantityKind::Temperature,
                uri(&format!("sim://{proxy}/data")),
            ),
        },
    }
}

fn run_script(requests: Vec<WsRequest>) -> (Simulator, simnet::NodeId, simnet::NodeId) {
    let mut sim = Simulator::new(SimConfig::default());
    let master = sim.add_node(
        "master",
        MasterNode::new([(did("d1"), "District One".to_owned())]),
    );
    let script = sim.add_node("script", Script::new(master, requests));
    sim.run_for(SimDuration::from_secs(60));
    (sim, master, script)
}

#[test]
fn register_then_resolve_area() {
    let (sim, master, script) = run_script(vec![
        WsRequest::post(
            "/register",
            building_registration("p-b1", "b1", 45.05).to_value(),
        ),
        WsRequest::post(
            "/register",
            building_registration("p-b2", "b2", 45.55).to_value(),
        ),
        WsRequest::post(
            "/register",
            device_registration("p-dev1", "b1", "dev1").to_value(),
        ),
        WsRequest::get("/district/d1/area").with_query("bbox", "45.0,7.6,45.1,7.7"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert_eq!(s.responses.len(), 4);
    assert!(
        s.responses.iter().all(WsResponse::is_ok),
        "{:?}",
        s.responses
    );
    let resolution = AreaResolution::from_value(&s.responses[3].body).unwrap();
    assert_eq!(resolution.entities.len(), 1, "only b1 is inside the bbox");
    assert_eq!(resolution.entities[0].id(), "b1");
    assert_eq!(resolution.devices.len(), 1);
    assert_eq!(resolution.devices[0].device().as_str(), "dev1");
    let m = sim.node_ref::<MasterNode>(master).unwrap();
    assert_eq!(m.stats().registrations, 3);
    assert_eq!(m.proxy_count(), 3);
}

#[test]
fn device_before_entity_is_parked_then_applied() {
    let (sim, master, script) = run_script(vec![
        // Device first: its building is unknown, so it parks.
        WsRequest::post(
            "/register",
            device_registration("p-dev1", "b1", "dev1").to_value(),
        ),
        WsRequest::post(
            "/register",
            building_registration("p-b1", "b1", 45.05).to_value(),
        ),
        WsRequest::get("/district/d1/devices").with_query("quantity", "temperature"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert!(s.responses.iter().all(WsResponse::is_ok));
    let devices = s.responses[2].body.require_array("t", "devices").unwrap();
    assert_eq!(
        devices.len(),
        1,
        "parked device applied once entity arrived"
    );
    let m = sim.node_ref::<MasterNode>(master).unwrap();
    assert_eq!(m.stats().parked_devices, 1);
    assert_eq!(m.ontology().device_count(), 1);
}

#[test]
fn deregister_removes_contribution() {
    let (sim, master, script) = run_script(vec![
        WsRequest::post(
            "/register",
            building_registration("p-b1", "b1", 45.05).to_value(),
        ),
        WsRequest::post(
            "/register",
            device_registration("p-dev1", "b1", "dev1").to_value(),
        ),
        WsRequest::post(
            "/deregister",
            ProxyRef {
                proxy: ProxyId::new("p-dev1").unwrap(),
                district: did("d1"),
            }
            .to_value(),
        ),
        WsRequest::get("/district/d1/devices").with_query("quantity", "temperature"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert!(s.responses.iter().all(WsResponse::is_ok));
    let devices = s.responses[3].body.require_array("t", "devices").unwrap();
    assert!(devices.is_empty());
    assert_eq!(sim.node_ref::<MasterNode>(master).unwrap().proxy_count(), 1);
}

#[test]
fn queries_cover_all_read_endpoints() {
    let (sim, _master, script) = run_script(vec![
        WsRequest::post(
            "/register",
            building_registration("p-b1", "b1", 45.05).to_value(),
        ),
        WsRequest::get("/districts"),
        WsRequest::get("/district/d1"),
        WsRequest::get("/district/d1/entities").with_query("kind", "building"),
        WsRequest::get("/ontology"),
        WsRequest::get("/proxies"),
        WsRequest::get("/stats"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert_eq!(s.responses.len(), 7);
    assert!(s.responses.iter().all(WsResponse::is_ok));
    let districts = s.responses[1].body.require_array("t", "districts").unwrap();
    assert_eq!(districts.len(), 1);
    assert_eq!(
        districts[0].get("name").and_then(Value::as_str),
        Some("District One")
    );
    let entities = s.responses[3].body.require_array("t", "entities").unwrap();
    assert_eq!(entities.len(), 1);
    let proxies = s.responses[5].body.require_array("t", "proxies").unwrap();
    assert_eq!(proxies.len(), 1);
}

#[test]
fn devices_filtered_by_protocol() {
    let (sim, _master, script) = run_script(vec![
        WsRequest::post(
            "/register",
            building_registration("p-b1", "b1", 45.05).to_value(),
        ),
        WsRequest::post(
            "/register",
            device_registration("p-dev1", "b1", "dev1").to_value(),
        ),
        WsRequest::get("/district/d1/devices").with_query("protocol", "zigbee"),
        WsRequest::get("/district/d1/devices").with_query("protocol", "enocean"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert!(s.responses.iter().all(WsResponse::is_ok));
    assert_eq!(
        s.responses[2]
            .body
            .require_array("t", "devices")
            .unwrap()
            .len(),
        1
    );
    assert!(s.responses[3]
        .body
        .require_array("t", "devices")
        .unwrap()
        .is_empty());
}

#[test]
fn bad_requests_rejected() {
    let (sim, _master, script) = run_script(vec![
        WsRequest::post("/register", Value::object([("junk", Value::from(1))])),
        WsRequest::get("/district/d1/area"), // missing bbox
        WsRequest::get("/district/d1/area").with_query("bbox", "nope"),
        WsRequest::get("/district/ghost/area").with_query("bbox", "45.0,7.6,45.1,7.7"),
        WsRequest::get("/district/d1/devices"), // missing quantity
        WsRequest::get("/nonsense"),
        WsRequest::post(
            "/heartbeat",
            ProxyRef {
                proxy: ProxyId::new("never-registered").unwrap(),
                district: did("d1"),
            }
            .to_value(),
        ),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert_eq!(s.responses.len(), 7);
    assert!(s.responses.iter().all(|r| !r.is_ok()), "{:?}", s.responses);
}

#[test]
fn unknown_tree_and_kind_rejected() {
    let (sim, _master, script) = run_script(vec![
        WsRequest::get("/district/ghost"),
        WsRequest::get("/district/d1/entities").with_query("kind", "spaceship"),
        WsRequest::get("/district/bad id/area").with_query("bbox", "1,2,3,4"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert_eq!(s.responses.len(), 3);
    assert!(s.responses.iter().all(|r| !r.is_ok()), "{:?}", s.responses);
}

#[test]
fn re_registration_replaces_device_leaf() {
    let mut reg2 = device_registration("p-dev1", "b1", "dev1");
    if let ProxyRole::Device { leaf, .. } = &mut reg2.role {
        *leaf = DeviceLeaf::new(
            DeviceId::new("dev1").unwrap(),
            "enocean",
            QuantityKind::Temperature,
            uri("sim://p-dev1/data"),
        );
    }
    let (sim, master, script) = run_script(vec![
        WsRequest::post(
            "/register",
            building_registration("p-b1", "b1", 45.05).to_value(),
        ),
        WsRequest::post(
            "/register",
            device_registration("p-dev1", "b1", "dev1").to_value(),
        ),
        WsRequest::post("/register", reg2.to_value()),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert!(s.responses.iter().all(WsResponse::is_ok));
    let m = sim.node_ref::<MasterNode>(master).unwrap();
    assert_eq!(m.ontology().device_count(), 1, "replaced, not duplicated");
    let (_, _, leaf) = m.ontology().find_device("dev1").unwrap();
    assert_eq!(leaf.protocol(), "enocean");
}

#[test]
fn silent_proxy_is_evicted() {
    // Register one device proxy and never heartbeat: after the liveness
    // horizon the master evicts it and its leaf disappears.
    let mut sim = Simulator::new(SimConfig::default());
    let master = sim.add_node("master", MasterNode::new([(did("d1"), "D1".to_owned())]));
    let script = sim.add_node(
        "script",
        Script::new(
            master,
            vec![
                WsRequest::post(
                    "/register",
                    building_registration("p-b1", "b1", 45.05).to_value(),
                ),
                WsRequest::post(
                    "/register",
                    device_registration("p-dev1", "b1", "dev1").to_value(),
                ),
            ],
        ),
    );
    sim.run_for(SimDuration::from_secs(300));
    let _ = script;
    let m = sim.node_ref::<MasterNode>(master).unwrap();
    assert!(
        m.stats().evictions >= 2,
        "evictions: {}",
        m.stats().evictions
    );
    assert_eq!(m.proxy_count(), 0);
    assert_eq!(m.ontology().device_count(), 0);
}

#[test]
fn stray_district_created_on_demand() {
    let mut reg = building_registration("p-x", "bx", 45.0);
    reg.district = did("unseeded");
    let (sim, master, script) = run_script(vec![WsRequest::post("/register", reg.to_value())]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert!(s.responses[0].is_ok());
    let m = sim.node_ref::<MasterNode>(master).unwrap();
    assert_eq!(m.ontology().district_count(), 2);
    assert_eq!(
        m.ontology().district(&did("unseeded")).unwrap().name(),
        "unseeded"
    );
}

#[test]
fn aggregator_registration_serves_profile_redirects() {
    let (sim, master, script) = run_script(vec![
        WsRequest::get("/district/d1/profile"), // before any aggregator
        WsRequest::post(
            "/register",
            Registration {
                proxy: ProxyId::new("agg-d1").unwrap(),
                district: did("d1"),
                uri: uri("sim://n7/"),
                role: ProxyRole::Aggregator,
            }
            .to_value(),
        ),
        WsRequest::get("/district/d1/profile"),
        WsRequest::get("/district/ghost/profile"),
    ]);
    let s = sim.node_ref::<Script>(script).unwrap();
    assert_eq!(s.responses.len(), 4);
    let aggregators = |r: &WsResponse| {
        r.body
            .get("aggregators")
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .unwrap()
    };
    assert!(s.responses[0].is_ok());
    assert!(aggregators(&s.responses[0]).is_empty());
    assert!(s.responses[1].is_ok(), "registration accepted");
    let after = aggregators(&s.responses[2]);
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].as_str(), Some("sim://n7/"));
    assert_eq!(
        s.responses[3].status,
        proxy::webservice::status::NOT_FOUND,
        "unknown district has no profile"
    );
    let m = sim.node_ref::<MasterNode>(master).unwrap();
    assert_eq!(m.proxy_count(), 1);
}
