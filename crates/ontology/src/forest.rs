//! The ontology forest and the master node's queries.

use std::collections::BTreeMap;
use std::fmt;

use dimmer_core::{CoreError, DistrictId, EntityKind, QuantityKind, Uri, Value};
use gis::geo::BoundingBox;

use crate::node::{DeviceLeaf, DistrictTree, EntityNode};

/// Errors raised by ontology operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OntologyError {
    /// The district already exists.
    DuplicateDistrict(DistrictId),
    /// The district does not exist.
    UnknownDistrict(DistrictId),
    /// The entity id is already taken within the district.
    DuplicateEntity {
        /// The district involved.
        district: DistrictId,
        /// The duplicated entity id.
        entity: String,
    },
    /// The entity does not exist within the district.
    UnknownEntity {
        /// The district involved.
        district: DistrictId,
        /// The missing entity id.
        entity: String,
    },
    /// A value could not be decoded into ontology structure.
    Decode(CoreError),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::DuplicateDistrict(d) => write!(f, "district {d} already exists"),
            OntologyError::UnknownDistrict(d) => write!(f, "unknown district {d}"),
            OntologyError::DuplicateEntity { district, entity } => {
                write!(f, "entity {entity:?} already exists in district {district}")
            }
            OntologyError::UnknownEntity { district, entity } => {
                write!(f, "unknown entity {entity:?} in district {district}")
            }
            OntologyError::Decode(e) => write!(f, "cannot decode ontology value: {e}"),
        }
    }
}

impl std::error::Error for OntologyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OntologyError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for OntologyError {
    fn from(e: CoreError) -> Self {
        OntologyError::Decode(e)
    }
}

/// What the master node returns for an area query: the URIs the client
/// must dereference, "accompanied with additional information".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AreaResolution {
    /// GIS Database-proxies of the district (for geometry retrieval).
    pub gis_proxies: Vec<Uri>,
    /// Measurement-database proxies of the district.
    pub measurement_proxies: Vec<Uri>,
    /// The matched intermediate entities (buildings/networks) —
    /// independent copies carrying their Database-proxy URI.
    pub entities: Vec<EntityNode>,
    /// Every device leaf under the matched entities.
    pub devices: Vec<DeviceLeaf>,
}

impl AreaResolution {
    /// Translates to the common data format (the master's response body).
    pub fn to_value(&self) -> Value {
        Value::object([
            (
                "gis_proxies",
                Value::Array(
                    self.gis_proxies
                        .iter()
                        .map(|u| Value::from(u.to_string()))
                        .collect(),
                ),
            ),
            (
                "measurement_proxies",
                Value::Array(
                    self.measurement_proxies
                        .iter()
                        .map(|u| Value::from(u.to_string()))
                        .collect(),
                ),
            ),
            (
                "entities",
                Value::Array(self.entities.iter().map(EntityNode::to_value).collect()),
            ),
            (
                "devices",
                Value::Array(self.devices.iter().map(DeviceLeaf::to_value).collect()),
            ),
        ])
    }

    /// Decodes a value produced by [`AreaResolution::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "area resolution";
        let uris = |key: &str| -> Result<Vec<Uri>, CoreError> {
            v.require_array(T, key)?
                .iter()
                .map(|u| {
                    u.as_str()
                        .ok_or_else(|| CoreError::Shape {
                            target: T,
                            reason: format!("{key} entries must be strings"),
                        })
                        .and_then(Uri::parse)
                })
                .collect()
        };
        Ok(AreaResolution {
            gis_proxies: uris("gis_proxies")?,
            measurement_proxies: uris("measurement_proxies")?,
            entities: v
                .require_array(T, "entities")?
                .iter()
                .map(EntityNode::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            devices: v
                .require_array(T, "devices")?
                .iter()
                .map(DeviceLeaf::from_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// The forest of district trees held by the master node.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ontology {
    districts: BTreeMap<DistrictId, DistrictTree>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Number of districts.
    pub fn district_count(&self) -> usize {
        self.districts.len()
    }

    /// Total number of entities across districts.
    pub fn entity_count(&self) -> usize {
        self.districts.values().map(|d| d.entities().len()).sum()
    }

    /// Total number of device leaves across districts.
    pub fn device_count(&self) -> usize {
        self.districts
            .values()
            .map(DistrictTree::device_count)
            .sum()
    }

    /// Adds an empty district.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::DuplicateDistrict`] if it exists.
    pub fn add_district(
        &mut self,
        district: DistrictId,
        name: impl Into<String>,
    ) -> Result<(), OntologyError> {
        if self.districts.contains_key(&district) {
            return Err(OntologyError::DuplicateDistrict(district));
        }
        self.districts
            .insert(district.clone(), DistrictTree::new(district, name));
        Ok(())
    }

    /// Inserts a complete district tree (e.g. decoded from a snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::DuplicateDistrict`] if it exists.
    pub fn add_tree(&mut self, tree: DistrictTree) -> Result<(), OntologyError> {
        if self.districts.contains_key(tree.district()) {
            return Err(OntologyError::DuplicateDistrict(tree.district().clone()));
        }
        self.districts.insert(tree.district().clone(), tree);
        Ok(())
    }

    /// The district ids, sorted.
    pub fn districts(&self) -> impl Iterator<Item = &DistrictId> {
        self.districts.keys()
    }

    /// A district tree.
    pub fn district(&self, id: &DistrictId) -> Option<&DistrictTree> {
        self.districts.get(id)
    }

    /// Mutable access to a district tree.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] if absent.
    pub fn district_mut(&mut self, id: &DistrictId) -> Result<&mut DistrictTree, OntologyError> {
        self.districts
            .get_mut(id)
            .ok_or_else(|| OntologyError::UnknownDistrict(id.clone()))
    }

    /// Adds a building or network node under a district.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError`] when the district is unknown or the
    /// entity id duplicated.
    pub fn add_entity(
        &mut self,
        district: &DistrictId,
        entity: EntityNode,
    ) -> Result<(), OntologyError> {
        let tree = self.district_mut(district)?;
        if tree.entity(entity.id()).is_some() {
            return Err(OntologyError::DuplicateEntity {
                district: district.clone(),
                entity: entity.id().to_owned(),
            });
        }
        tree.entities_mut().push(entity);
        Ok(())
    }

    /// Convenience alias of [`Ontology::add_entity`] for buildings.
    ///
    /// # Errors
    ///
    /// See [`Ontology::add_entity`].
    pub fn add_building(
        &mut self,
        district: &DistrictId,
        building: EntityNode,
    ) -> Result<(), OntologyError> {
        self.add_entity(district, building)
    }

    /// Adds a device leaf under an entity.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError`] when the district or entity is unknown.
    pub fn add_device(
        &mut self,
        district: &DistrictId,
        entity_id: &str,
        device: DeviceLeaf,
    ) -> Result<(), OntologyError> {
        let tree = self.district_mut(district)?;
        let entity = tree
            .entities_mut()
            .iter_mut()
            .find(|e| e.id() == entity_id)
            .ok_or_else(|| OntologyError::UnknownEntity {
                district: district.clone(),
                entity: entity_id.to_owned(),
            })?;
        entity.devices_mut().push(device);
        Ok(())
    }

    /// Removes a device leaf; returns it if present.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] when the district is
    /// unknown.
    pub fn remove_device(
        &mut self,
        district: &DistrictId,
        device_id: &str,
    ) -> Result<Option<DeviceLeaf>, OntologyError> {
        let tree = self.district_mut(district)?;
        for entity in tree.entities_mut() {
            if let Some(i) = entity
                .devices()
                .iter()
                .position(|d| d.device().as_str() == device_id)
            {
                return Ok(Some(entity.devices_mut().remove(i)));
            }
        }
        Ok(None)
    }

    /// Removes an entity node (and its device leaves); returns it if
    /// present.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] when the district is
    /// unknown.
    pub fn remove_entity(
        &mut self,
        district: &DistrictId,
        entity_id: &str,
    ) -> Result<Option<EntityNode>, OntologyError> {
        let tree = self.district_mut(district)?;
        let pos = tree.entities().iter().position(|e| e.id() == entity_id);
        Ok(pos.map(|i| tree.entities_mut().remove(i)))
    }

    /// The paper's core query: resolve an area of a district to the
    /// proxies serving it. Entities without a cached location are never
    /// matched by area (they are reachable via entity queries instead).
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] when the district is
    /// unknown.
    pub fn resolve_area(
        &self,
        district: &DistrictId,
        bbox: &BoundingBox,
    ) -> Result<AreaResolution, OntologyError> {
        let tree = self
            .district(district)
            .ok_or_else(|| OntologyError::UnknownDistrict(district.clone()))?;
        let mut resolution = AreaResolution {
            gis_proxies: tree.gis_proxies().to_vec(),
            measurement_proxies: tree.measurement_proxies().to_vec(),
            ..AreaResolution::default()
        };
        for entity in tree.entities() {
            let inside = entity
                .location()
                .map(|loc| bbox.contains(&loc))
                .unwrap_or(false);
            if inside {
                resolution.devices.extend(entity.devices().iter().cloned());
                resolution.entities.push(entity.clone());
            }
        }
        Ok(resolution)
    }

    /// All entities of `kind` in a district.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] when the district is
    /// unknown.
    pub fn entities_of_kind(
        &self,
        district: &DistrictId,
        kind: EntityKind,
    ) -> Result<Vec<&EntityNode>, OntologyError> {
        let tree = self
            .district(district)
            .ok_or_else(|| OntologyError::UnknownDistrict(district.clone()))?;
        Ok(tree
            .entities()
            .iter()
            .filter(|e| e.kind() == kind)
            .collect())
    }

    /// All device leaves reporting `quantity` in a district, with their
    /// owning entity id.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] when the district is
    /// unknown.
    pub fn devices_by_quantity(
        &self,
        district: &DistrictId,
        quantity: QuantityKind,
    ) -> Result<Vec<(&str, &DeviceLeaf)>, OntologyError> {
        let tree = self
            .district(district)
            .ok_or_else(|| OntologyError::UnknownDistrict(district.clone()))?;
        Ok(tree
            .entities()
            .iter()
            .flat_map(|e| {
                e.devices()
                    .iter()
                    .filter(|d| d.quantity() == quantity)
                    .map(move |d| (e.id(), d))
            })
            .collect())
    }

    /// All device leaves speaking `protocol` in a district, with their
    /// owning entity id — the interoperability inventory ("which EnOcean
    /// devices does this district run?").
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::UnknownDistrict`] when the district is
    /// unknown.
    pub fn devices_by_protocol(
        &self,
        district: &DistrictId,
        protocol: &str,
    ) -> Result<Vec<(&str, &DeviceLeaf)>, OntologyError> {
        let tree = self
            .district(district)
            .ok_or_else(|| OntologyError::UnknownDistrict(district.clone()))?;
        Ok(tree
            .entities()
            .iter()
            .flat_map(|e| {
                e.devices()
                    .iter()
                    .filter(move |d| d.protocol() == protocol)
                    .map(move |d| (e.id(), d))
            })
            .collect())
    }

    /// Finds the device leaf with `device_id` anywhere in the forest.
    pub fn find_device(&self, device_id: &str) -> Option<(&DistrictId, &str, &DeviceLeaf)> {
        for (did, tree) in &self.districts {
            for entity in tree.entities() {
                for device in entity.devices() {
                    if device.device().as_str() == device_id {
                        return Some((did, entity.id(), device));
                    }
                }
            }
        }
        None
    }

    /// Snapshots the whole forest to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([(
            "districts",
            Value::Array(
                self.districts
                    .values()
                    .map(DistrictTree::to_value)
                    .collect(),
            ),
        )])
    }

    /// Restores a forest from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`OntologyError::Decode`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, OntologyError> {
        let mut onto = Ontology::new();
        for tree in v
            .require_array("ontology", "districts")
            .map_err(OntologyError::from)?
        {
            onto.add_tree(DistrictTree::from_value(tree)?)?;
        }
        Ok(onto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_core::{BuildingId, DeviceId, NetworkId};
    use gis::geo::GeoPoint;

    fn uri(s: &str) -> Uri {
        Uri::parse(s).unwrap()
    }

    fn did(s: &str) -> DistrictId {
        DistrictId::new(s).unwrap()
    }

    fn sample() -> Ontology {
        let mut onto = Ontology::new();
        let d = did("d1");
        onto.add_district(d.clone(), "Campus").unwrap();
        onto.district_mut(&d)
            .unwrap()
            .add_gis_proxy(uri("sim://n2/gis"));
        for (i, lat) in [45.05, 45.07, 45.55].iter().enumerate() {
            onto.add_building(
                &d,
                EntityNode::building(
                    BuildingId::new(format!("b{i}")).unwrap(),
                    uri(&format!("sim://n{}/bim", 10 + i)),
                )
                .with_location(GeoPoint::new(*lat, 7.68)),
            )
            .unwrap();
        }
        onto.add_entity(
            &d,
            EntityNode::network(NetworkId::new("dh1").unwrap(), uri("sim://n20/simmodel"))
                .with_location(GeoPoint::new(45.06, 7.68)),
        )
        .unwrap();
        onto.add_device(
            &d,
            "b0",
            DeviceLeaf::new(
                DeviceId::new("dev-t0").unwrap(),
                "zigbee",
                QuantityKind::Temperature,
                uri("sim://n30/data"),
            ),
        )
        .unwrap();
        onto.add_device(
            &d,
            "b1",
            DeviceLeaf::new(
                DeviceId::new("dev-p1").unwrap(),
                "enocean",
                QuantityKind::ActivePower,
                uri("sim://n31/data"),
            ),
        )
        .unwrap();
        onto
    }

    #[test]
    fn counts() {
        let onto = sample();
        assert_eq!(onto.district_count(), 1);
        assert_eq!(onto.entity_count(), 4);
        assert_eq!(onto.device_count(), 2);
    }

    #[test]
    fn duplicate_and_unknown_errors() {
        let mut onto = sample();
        let d = did("d1");
        assert!(matches!(
            onto.add_district(d.clone(), "again"),
            Err(OntologyError::DuplicateDistrict(_))
        ));
        assert!(matches!(
            onto.add_building(
                &d,
                EntityNode::building(BuildingId::new("b0").unwrap(), uri("sim://x/y"))
            ),
            Err(OntologyError::DuplicateEntity { .. })
        ));
        assert!(matches!(
            onto.add_device(
                &did("ghost"),
                "b0",
                DeviceLeaf::new(
                    DeviceId::new("d").unwrap(),
                    "zigbee",
                    QuantityKind::Co2,
                    uri("sim://x/y")
                )
            ),
            Err(OntologyError::UnknownDistrict(_))
        ));
        assert!(matches!(
            onto.add_device(
                &d,
                "ghost",
                DeviceLeaf::new(
                    DeviceId::new("d").unwrap(),
                    "zigbee",
                    QuantityKind::Co2,
                    uri("sim://x/y")
                )
            ),
            Err(OntologyError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn area_resolution_filters_by_location() {
        let onto = sample();
        let bbox = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7));
        let hit = onto.resolve_area(&did("d1"), &bbox).unwrap();
        // b0, b1 and dh1 are inside; b2 (45.55) is outside.
        assert_eq!(hit.entities.len(), 3);
        assert_eq!(hit.devices.len(), 2);
        assert_eq!(hit.gis_proxies.len(), 1);
        assert!(hit.entities.iter().all(|e| e.id() != "b2"));
        assert!(onto.resolve_area(&did("nope"), &bbox).is_err());
    }

    #[test]
    fn area_resolution_value_round_trip() {
        let onto = sample();
        let bbox = BoundingBox::new(GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7));
        let hit = onto.resolve_area(&did("d1"), &bbox).unwrap();
        let back = AreaResolution::from_value(&hit.to_value()).unwrap();
        assert_eq!(back, hit);
    }

    #[test]
    fn kind_and_quantity_queries() {
        let onto = sample();
        let d = did("d1");
        assert_eq!(
            onto.entities_of_kind(&d, EntityKind::Building)
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            onto.entities_of_kind(&d, EntityKind::Network)
                .unwrap()
                .len(),
            1
        );
        let temps = onto
            .devices_by_quantity(&d, QuantityKind::Temperature)
            .unwrap();
        assert_eq!(temps.len(), 1);
        assert_eq!(temps[0].0, "b0");
        assert!(onto
            .devices_by_quantity(&d, QuantityKind::Co2)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn protocol_queries() {
        let onto = sample();
        let d = did("d1");
        let zigbee = onto.devices_by_protocol(&d, "zigbee").unwrap();
        assert_eq!(zigbee.len(), 1);
        assert_eq!(zigbee[0].0, "b0");
        assert_eq!(onto.devices_by_protocol(&d, "enocean").unwrap().len(), 1);
        assert!(onto.devices_by_protocol(&d, "lonworks").unwrap().is_empty());
        assert!(onto.devices_by_protocol(&did("ghost"), "zigbee").is_err());
    }

    #[test]
    fn find_and_remove_device() {
        let mut onto = sample();
        let (district, entity, leaf) = onto.find_device("dev-p1").unwrap();
        assert_eq!(district.as_str(), "d1");
        assert_eq!(entity, "b1");
        assert_eq!(leaf.protocol(), "enocean");
        assert!(onto.find_device("ghost").is_none());

        let removed = onto.remove_device(&did("d1"), "dev-p1").unwrap();
        assert!(removed.is_some());
        assert_eq!(onto.device_count(), 1);
        assert!(onto.remove_device(&did("d1"), "dev-p1").unwrap().is_none());
    }

    #[test]
    fn snapshot_round_trip() {
        let onto = sample();
        let back = Ontology::from_value(&onto.to_value()).unwrap();
        assert_eq!(back, onto);
    }

    #[test]
    fn entities_without_location_excluded_from_area() {
        let mut onto = Ontology::new();
        let d = did("d2");
        onto.add_district(d.clone(), "No geo").unwrap();
        onto.add_building(
            &d,
            EntityNode::building(BuildingId::new("b").unwrap(), uri("sim://n1/bim")),
        )
        .unwrap();
        let bbox = BoundingBox::new(GeoPoint::new(-90.0, -180.0), GeoPoint::new(90.0, 180.0));
        let hit = onto.resolve_area(&d, &bbox).unwrap();
        assert!(hit.entities.is_empty());
        assert_eq!(
            onto.entities_of_kind(&d, EntityKind::Building)
                .unwrap()
                .len(),
            1,
            "still reachable by kind"
        );
    }
}
