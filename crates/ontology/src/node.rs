//! The node types of a district tree.

use dimmer_core::{
    BuildingId, CoreError, DeviceId, DistrictId, EntityKind, NetworkId, QuantityKind, Uri, Value,
};
use gis::geo::GeoPoint;

/// An intermediate node: a building or an energy-distribution network.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityNode {
    kind: EntityKind,
    id: String,
    /// The Web-Service URI of the BIM (buildings) or SIM (networks)
    /// Database-proxy serving this entity's model.
    db_proxy: Uri,
    /// The GIS feature id mapping this entity into the GIS databases.
    gis_feature: Option<String>,
    /// Location cached from the GIS at registration time, so area
    /// resolution does not need a GIS round trip per query.
    location: Option<GeoPoint>,
    /// Free-form additional properties.
    properties: Value,
    /// Device leaves under this entity.
    devices: Vec<DeviceLeaf>,
}

impl EntityNode {
    /// Creates a building node served by `bim_proxy`.
    pub fn building(id: BuildingId, bim_proxy: Uri) -> Self {
        EntityNode {
            kind: EntityKind::Building,
            id: id.into_inner(),
            db_proxy: bim_proxy,
            gis_feature: None,
            location: None,
            properties: Value::Null,
            devices: Vec::new(),
        }
    }

    /// Creates a network node served by `sim_proxy`.
    pub fn network(id: NetworkId, sim_proxy: Uri) -> Self {
        EntityNode {
            kind: EntityKind::Network,
            id: id.into_inner(),
            db_proxy: sim_proxy,
            gis_feature: None,
            location: None,
            properties: Value::Null,
            devices: Vec::new(),
        }
    }

    /// Sets the GIS feature mapping.
    pub fn with_gis_feature(mut self, feature_id: impl Into<String>) -> Self {
        self.gis_feature = Some(feature_id.into());
        self
    }

    /// Sets the cached location.
    pub fn with_location(mut self, location: GeoPoint) -> Self {
        self.location = Some(location);
        self
    }

    /// Sets additional properties (an object value).
    pub fn with_properties(mut self, properties: Value) -> Self {
        self.properties = properties;
        self
    }

    /// Building or network.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }

    /// The entity id (building or network id).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The Database-proxy URI.
    pub fn db_proxy(&self) -> &Uri {
        &self.db_proxy
    }

    /// The GIS feature mapping, if set.
    pub fn gis_feature(&self) -> Option<&str> {
        self.gis_feature.as_deref()
    }

    /// The cached location, if set.
    pub fn location(&self) -> Option<GeoPoint> {
        self.location
    }

    /// Additional properties.
    pub fn properties(&self) -> &Value {
        &self.properties
    }

    /// The device leaves.
    pub fn devices(&self) -> &[DeviceLeaf] {
        &self.devices
    }

    pub(crate) fn devices_mut(&mut self) -> &mut Vec<DeviceLeaf> {
        &mut self.devices
    }

    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("kind", Value::from(self.kind.as_str())),
            ("id", Value::from(self.id.as_str())),
            ("db_proxy", Value::from(self.db_proxy.to_string())),
            (
                "gis_feature",
                self.gis_feature.as_deref().map_or(Value::Null, Value::from),
            ),
            (
                "location",
                self.location.map_or(Value::Null, |l| l.to_value()),
            ),
            ("properties", self.properties.clone()),
            (
                "devices",
                Value::Array(self.devices.iter().map(DeviceLeaf::to_value).collect()),
            ),
        ])
    }

    /// Decodes a value produced by [`EntityNode::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "entity node";
        let kind = EntityKind::parse(v.require_str(T, "kind")?)?;
        if !matches!(kind, EntityKind::Building | EntityKind::Network) {
            return Err(CoreError::Shape {
                target: T,
                reason: "entity must be a building or a network".into(),
            });
        }
        let devices = v
            .require_array(T, "devices")?
            .iter()
            .map(DeviceLeaf::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EntityNode {
            kind,
            id: v.require_str(T, "id")?.to_owned(),
            db_proxy: Uri::parse(v.require_str(T, "db_proxy")?)?,
            gis_feature: match v.get("gis_feature") {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            },
            location: match v.get("location") {
                Some(Value::Null) | None => None,
                Some(loc) => Some(GeoPoint::from_value(loc)?),
            },
            properties: v.get("properties").cloned().unwrap_or(Value::Null),
            devices,
        })
    }
}

/// A device leaf: one sensor or actuator behind a Device-proxy.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLeaf {
    device: DeviceId,
    /// The protocol family name ("zigbee", "enocean", …).
    protocol: String,
    quantity: QuantityKind,
    /// The Web-Service URI of the Device-proxy serving this device.
    proxy: Uri,
    location: Option<GeoPoint>,
}

impl DeviceLeaf {
    /// Creates a device leaf.
    pub fn new(
        device: DeviceId,
        protocol: impl Into<String>,
        quantity: QuantityKind,
        proxy: Uri,
    ) -> Self {
        DeviceLeaf {
            device,
            protocol: protocol.into(),
            quantity,
            proxy,
            location: None,
        }
    }

    /// Sets the device location.
    pub fn with_location(mut self, location: GeoPoint) -> Self {
        self.location = Some(location);
        self
    }

    /// The device id.
    pub fn device(&self) -> &DeviceId {
        &self.device
    }

    /// The protocol family name.
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The reported quantity.
    pub fn quantity(&self) -> QuantityKind {
        self.quantity
    }

    /// The Device-proxy URI.
    pub fn proxy(&self) -> &Uri {
        &self.proxy
    }

    /// The device location, if set.
    pub fn location(&self) -> Option<GeoPoint> {
        self.location
    }

    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("device", Value::from(self.device.as_str())),
            ("protocol", Value::from(self.protocol.as_str())),
            ("quantity", Value::from(self.quantity.as_str())),
            ("proxy", Value::from(self.proxy.to_string())),
            (
                "location",
                self.location.map_or(Value::Null, |l| l.to_value()),
            ),
        ])
    }

    /// Decodes a value produced by [`DeviceLeaf::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "device leaf";
        Ok(DeviceLeaf {
            device: DeviceId::new(v.require_str(T, "device")?)?,
            protocol: v.require_str(T, "protocol")?.to_owned(),
            quantity: QuantityKind::parse(v.require_str(T, "quantity")?)?,
            proxy: Uri::parse(v.require_str(T, "proxy")?)?,
            location: match v.get("location") {
                Some(Value::Null) | None => None,
                Some(loc) => Some(GeoPoint::from_value(loc)?),
            },
        })
    }
}

/// One district: the tree root plus its intermediate nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct DistrictTree {
    district: DistrictId,
    name: String,
    /// GIS Database-proxy Web Services of this district.
    gis_proxies: Vec<Uri>,
    /// Measurement-database proxy Web Services of this district.
    measurement_proxies: Vec<Uri>,
    /// Aggregator Web Services serving windowed rollups.
    aggregator_proxies: Vec<Uri>,
    /// Label of the broker shard owning this district's topics (absent
    /// on single-broker deployments).
    broker: Option<String>,
    properties: Value,
    entities: Vec<EntityNode>,
}

impl DistrictTree {
    /// Creates an empty district tree.
    pub fn new(district: DistrictId, name: impl Into<String>) -> Self {
        DistrictTree {
            district,
            name: name.into(),
            gis_proxies: Vec::new(),
            measurement_proxies: Vec::new(),
            aggregator_proxies: Vec::new(),
            broker: None,
            properties: Value::Null,
            entities: Vec::new(),
        }
    }

    /// The district id.
    pub fn district(&self) -> &DistrictId {
        &self.district
    }

    /// The district name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GIS Database-proxy URIs.
    pub fn gis_proxies(&self) -> &[Uri] {
        &self.gis_proxies
    }

    /// The measurement-database proxy URIs.
    pub fn measurement_proxies(&self) -> &[Uri] {
        &self.measurement_proxies
    }

    /// The aggregator URIs serving windowed rollups.
    pub fn aggregator_proxies(&self) -> &[Uri] {
        &self.aggregator_proxies
    }

    /// Root properties.
    pub fn properties(&self) -> &Value {
        &self.properties
    }

    /// The intermediate nodes.
    pub fn entities(&self) -> &[EntityNode] {
        &self.entities
    }

    /// Registers a GIS Database-proxy.
    pub fn add_gis_proxy(&mut self, uri: Uri) {
        self.gis_proxies.push(uri);
    }

    /// Registers a measurement-database proxy.
    pub fn add_measurement_proxy(&mut self, uri: Uri) {
        self.measurement_proxies.push(uri);
    }

    /// Registers an aggregator; re-registrations after a crash are
    /// idempotent.
    pub fn add_aggregator_proxy(&mut self, uri: Uri) {
        if !self.aggregator_proxies.contains(&uri) {
            self.aggregator_proxies.push(uri);
        }
    }

    /// The label of the broker shard owning this district's topics
    /// (`None` on single-broker deployments).
    pub fn broker(&self) -> Option<&str> {
        self.broker.as_deref()
    }

    /// Records the owning broker shard.
    pub fn set_broker(&mut self, broker: impl Into<String>) {
        self.broker = Some(broker.into());
    }

    /// Sets root properties.
    pub fn set_properties(&mut self, properties: Value) {
        self.properties = properties;
    }

    pub(crate) fn entities_mut(&mut self) -> &mut Vec<EntityNode> {
        &mut self.entities
    }

    /// Finds an entity by id.
    pub fn entity(&self, id: &str) -> Option<&EntityNode> {
        self.entities.iter().find(|e| e.id() == id)
    }

    /// Number of device leaves across all entities.
    pub fn device_count(&self) -> usize {
        self.entities.iter().map(|e| e.devices().len()).sum()
    }

    /// Translates the whole tree to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("district", Value::from(self.district.as_str())),
            ("name", Value::from(self.name.as_str())),
            (
                "gis_proxies",
                Value::Array(
                    self.gis_proxies
                        .iter()
                        .map(|u| Value::from(u.to_string()))
                        .collect(),
                ),
            ),
            (
                "measurement_proxies",
                Value::Array(
                    self.measurement_proxies
                        .iter()
                        .map(|u| Value::from(u.to_string()))
                        .collect(),
                ),
            ),
            (
                "aggregator_proxies",
                Value::Array(
                    self.aggregator_proxies
                        .iter()
                        .map(|u| Value::from(u.to_string()))
                        .collect(),
                ),
            ),
            (
                "broker",
                self.broker
                    .as_deref()
                    .map_or(Value::Null, |b| Value::from(b.to_owned())),
            ),
            ("properties", self.properties.clone()),
            (
                "entities",
                Value::Array(self.entities.iter().map(EntityNode::to_value).collect()),
            ),
        ])
    }

    /// Decodes a value produced by [`DistrictTree::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "district tree";
        let uris = |key: &str| -> Result<Vec<Uri>, CoreError> {
            v.require_array(T, key)?
                .iter()
                .map(|u| {
                    u.as_str()
                        .ok_or_else(|| CoreError::Shape {
                            target: T,
                            reason: format!("{key} entries must be strings"),
                        })
                        .and_then(Uri::parse)
                })
                .collect()
        };
        Ok(DistrictTree {
            district: DistrictId::new(v.require_str(T, "district")?)?,
            name: v.require_str(T, "name")?.to_owned(),
            gis_proxies: uris("gis_proxies")?,
            measurement_proxies: uris("measurement_proxies")?,
            // Absent in values written before aggregators existed.
            aggregator_proxies: match v.get("aggregator_proxies") {
                Some(_) => uris("aggregator_proxies")?,
                None => Vec::new(),
            },
            // Absent in values written before broker federation existed.
            broker: v.get("broker").and_then(Value::as_str).map(str::to_owned),
            properties: v.get("properties").cloned().unwrap_or(Value::Null),
            entities: v
                .require_array(T, "entities")?
                .iter()
                .map(EntityNode::from_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uri(s: &str) -> Uri {
        Uri::parse(s).unwrap()
    }

    fn sample_tree() -> DistrictTree {
        let mut tree = DistrictTree::new(DistrictId::new("d1").unwrap(), "Campus");
        tree.add_gis_proxy(uri("sim://n2/gis"));
        tree.add_measurement_proxy(uri("sim://n4/measurements"));
        tree.add_aggregator_proxy(uri("sim://n6/rollups"));
        tree.add_aggregator_proxy(uri("sim://n6/rollups")); // idempotent
        tree.set_broker("b1");
        tree.set_properties(Value::object([("city", Value::from("Turin"))]));
        let mut building =
            EntityNode::building(BuildingId::new("b1").unwrap(), uri("sim://n3/bim"))
                .with_gis_feature("feat-b1")
                .with_location(GeoPoint::new(45.07, 7.68));
        building.devices_mut().push(
            DeviceLeaf::new(
                DeviceId::new("dev1").unwrap(),
                "zigbee",
                QuantityKind::Temperature,
                uri("sim://n9/data"),
            )
            .with_location(GeoPoint::new(45.0701, 7.6801)),
        );
        tree.entities_mut().push(building);
        tree.entities_mut().push(EntityNode::network(
            NetworkId::new("dh1").unwrap(),
            uri("sim://n5/simmodel"),
        ));
        tree
    }

    #[test]
    fn tree_value_round_trip() {
        let tree = sample_tree();
        let back = DistrictTree::from_value(&tree.to_value()).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.broker(), Some("b1"));
    }

    #[test]
    fn tree_from_value_tolerates_missing_broker() {
        // Values written before broker federation existed carry no
        // `broker` key; they must still decode.
        let mut v = sample_tree().to_value();
        if let Value::Object(map) = &mut v {
            map.remove("broker");
        }
        let back = DistrictTree::from_value(&v).unwrap();
        assert_eq!(back.broker(), None);
    }

    #[test]
    fn accessors() {
        let tree = sample_tree();
        assert_eq!(tree.name(), "Campus");
        assert_eq!(tree.gis_proxies().len(), 1);
        assert_eq!(tree.measurement_proxies().len(), 1);
        assert_eq!(tree.aggregator_proxies().len(), 1, "duplicate collapsed");
        assert_eq!(tree.entities().len(), 2);
        assert_eq!(tree.device_count(), 1);
        let b = tree.entity("b1").unwrap();
        assert_eq!(b.kind(), EntityKind::Building);
        assert_eq!(b.gis_feature(), Some("feat-b1"));
        assert!(b.location().is_some());
        assert_eq!(b.devices()[0].protocol(), "zigbee");
        assert!(tree.entity("ghost").is_none());
    }

    #[test]
    fn entity_from_value_rejects_bad_kind() {
        let mut v = sample_tree().entities()[0].to_value();
        v.insert("kind", Value::from("district"));
        assert!(EntityNode::from_value(&v).is_err());
        v.insert("kind", Value::from("spaceship"));
        assert!(EntityNode::from_value(&v).is_err());
    }

    #[test]
    fn device_leaf_round_trip_without_location() {
        let leaf = DeviceLeaf::new(
            DeviceId::new("d").unwrap(),
            "enocean",
            QuantityKind::Co2,
            uri("sim://n1/data"),
        );
        let back = DeviceLeaf::from_value(&leaf.to_value()).unwrap();
        assert_eq!(back, leaf);
        assert!(back.location().is_none());
    }
}
