//! An RDF-style triple view of the ontology.
//!
//! Semantic-web tooling consumes ontologies as `(subject, predicate,
//! object)` triples. [`export`] flattens a forest into triples under a
//! small fixed vocabulary; [`TriplePattern`] supports wildcard queries
//! over the result, giving the framework a SPARQL-flavoured access path
//! without a full RDF stack.

use dimmer_core::Value;

use crate::{DistrictTree, Ontology};

/// One `(subject, predicate, object)` statement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// The subject IRI-like identifier, e.g. `district:d1`.
    pub subject: String,
    /// The predicate, e.g. `rdf:type` or `dimmer:hasDevice`.
    pub predicate: String,
    /// The object: another identifier or a literal.
    pub object: String,
}

impl Triple {
    fn new(s: impl Into<String>, p: impl Into<String>, o: impl Into<String>) -> Self {
        Triple {
            subject: s.into(),
            predicate: p.into(),
            object: o.into(),
        }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A query pattern; `None` positions match anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Required subject, or any.
    pub subject: Option<String>,
    /// Required predicate, or any.
    pub predicate: Option<String>,
    /// Required object, or any.
    pub object: Option<String>,
}

impl TriplePattern {
    /// The match-everything pattern.
    pub fn any() -> Self {
        TriplePattern::default()
    }

    /// Restricts the subject.
    pub fn with_subject(mut self, s: impl Into<String>) -> Self {
        self.subject = Some(s.into());
        self
    }

    /// Restricts the predicate.
    pub fn with_predicate(mut self, p: impl Into<String>) -> Self {
        self.predicate = Some(p.into());
        self
    }

    /// Restricts the object.
    pub fn with_object(mut self, o: impl Into<String>) -> Self {
        self.object = Some(o.into());
        self
    }

    /// Whether `triple` matches.
    pub fn matches(&self, triple: &Triple) -> bool {
        self.subject.as_deref().is_none_or(|s| s == triple.subject)
            && self
                .predicate
                .as_deref()
                .is_none_or(|p| p == triple.predicate)
            && self.object.as_deref().is_none_or(|o| o == triple.object)
    }
}

fn property_triples(subject: &str, properties: &Value, out: &mut Vec<Triple>) {
    if let Some(map) = properties.as_object() {
        for (key, value) in map {
            let literal = match value {
                Value::Str(s) => format!("{s:?}"),
                other => other.to_string(),
            };
            out.push(Triple::new(subject, format!("dimmer:{key}"), literal));
        }
    }
}

fn district_triples(tree: &DistrictTree, out: &mut Vec<Triple>) {
    let d = format!("district:{}", tree.district());
    out.push(Triple::new(&d, "rdf:type", "dimmer:District"));
    out.push(Triple::new(&d, "dimmer:name", format!("{:?}", tree.name())));
    for uri in tree.gis_proxies() {
        out.push(Triple::new(&d, "dimmer:gisProxy", format!("<{uri}>")));
    }
    for uri in tree.measurement_proxies() {
        out.push(Triple::new(
            &d,
            "dimmer:measurementProxy",
            format!("<{uri}>"),
        ));
    }
    property_triples(&d, tree.properties(), out);
    for entity in tree.entities() {
        let e = format!("{}:{}", entity.kind(), entity.id());
        out.push(Triple::new(&d, "dimmer:contains", &e));
        out.push(Triple::new(
            &e,
            "rdf:type",
            match entity.kind() {
                dimmer_core::EntityKind::Network => "dimmer:Network",
                _ => "dimmer:Building",
            },
        ));
        out.push(Triple::new(
            &e,
            "dimmer:dbProxy",
            format!("<{}>", entity.db_proxy()),
        ));
        if let Some(feat) = entity.gis_feature() {
            out.push(Triple::new(&e, "dimmer:gisFeature", format!("{feat:?}")));
        }
        property_triples(&e, entity.properties(), out);
        for device in entity.devices() {
            let dev = format!("device:{}", device.device());
            out.push(Triple::new(&e, "dimmer:hasDevice", &dev));
            out.push(Triple::new(&dev, "rdf:type", "dimmer:Device"));
            out.push(Triple::new(
                &dev,
                "dimmer:protocol",
                format!("{:?}", device.protocol()),
            ));
            out.push(Triple::new(
                &dev,
                "dimmer:quantity",
                format!("{:?}", device.quantity().as_str()),
            ));
            out.push(Triple::new(
                &dev,
                "dimmer:proxy",
                format!("<{}>", device.proxy()),
            ));
        }
    }
}

/// Flattens the forest into triples.
pub fn export(ontology: &Ontology) -> Vec<Triple> {
    let mut out = Vec::new();
    for district in ontology.districts() {
        if let Some(tree) = ontology.district(district) {
            district_triples(tree, &mut out);
        }
    }
    out
}

/// Filters `triples` by `pattern`.
pub fn query<'a>(triples: &'a [Triple], pattern: &TriplePattern) -> Vec<&'a Triple> {
    triples.iter().filter(|t| pattern.matches(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceLeaf, EntityNode};
    use dimmer_core::{BuildingId, DeviceId, DistrictId, QuantityKind, Uri};

    fn sample() -> Ontology {
        let mut onto = Ontology::new();
        let d = DistrictId::new("d1").unwrap();
        onto.add_district(d.clone(), "Campus").unwrap();
        onto.district_mut(&d)
            .unwrap()
            .add_gis_proxy(Uri::parse("sim://n2/gis").unwrap());
        onto.add_building(
            &d,
            EntityNode::building(
                BuildingId::new("b1").unwrap(),
                Uri::parse("sim://n3/bim").unwrap(),
            )
            .with_properties(Value::object([("floors", Value::from(4))])),
        )
        .unwrap();
        onto.add_device(
            &d,
            "b1",
            DeviceLeaf::new(
                DeviceId::new("dev1").unwrap(),
                "zigbee",
                QuantityKind::Temperature,
                Uri::parse("sim://n9/data").unwrap(),
            ),
        )
        .unwrap();
        onto
    }

    #[test]
    fn export_produces_expected_statements() {
        let triples = export(&sample());
        let has = |s: &str, p: &str, o: &str| {
            triples
                .iter()
                .any(|t| t.subject == s && t.predicate == p && t.object == o)
        };
        assert!(has("district:d1", "rdf:type", "dimmer:District"));
        assert!(has("district:d1", "dimmer:contains", "building:b1"));
        assert!(has("building:b1", "rdf:type", "dimmer:Building"));
        assert!(has("building:b1", "dimmer:dbProxy", "<sim://n3/bim>"));
        assert!(has("building:b1", "dimmer:floors", "4"));
        assert!(has("building:b1", "dimmer:hasDevice", "device:dev1"));
        assert!(has("device:dev1", "dimmer:quantity", "\"temperature\""));
    }

    #[test]
    fn pattern_queries() {
        let triples = export(&sample());
        let devices = query(
            &triples,
            &TriplePattern::any()
                .with_predicate("rdf:type")
                .with_object("dimmer:Device"),
        );
        assert_eq!(devices.len(), 1);
        assert_eq!(devices[0].subject, "device:dev1");

        let all_about_b1 = query(&triples, &TriplePattern::any().with_subject("building:b1"));
        assert!(all_about_b1.len() >= 4);

        let none = query(
            &triples,
            &TriplePattern::any().with_subject("building:ghost"),
        );
        assert!(none.is_empty());

        assert_eq!(query(&triples, &TriplePattern::any()).len(), triples.len());
    }

    #[test]
    fn triple_display_is_turtle_like() {
        let t = Triple::new("a", "b", "c");
        assert_eq!(t.to_string(), "a b c .");
    }
}
