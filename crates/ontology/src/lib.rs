//! # dimmer-ontology — the district ontology
//!
//! "Relationships between buildings, energy distribution networks and
//! devices are stored in the master node of the infrastructure, using an
//! ontology. The ontology depicts the structure of one or more
//! districts, each one structured as a tree."
//!
//! This crate is that ontology:
//!
//! * [`DistrictTree`] — one district: the root node with global
//!   properties (name, GIS proxy URIs), intermediate building/network
//!   nodes (BIM/SIM proxy URIs, cached GIS locations), device leaves
//!   (protocol, quantity, Device-proxy URI);
//! * [`Ontology`] — the forest of district trees with the queries the
//!   master node answers: by area, by entity kind, by quantity;
//! * [`triple`] — an RDF-style triple view with pattern matching, for
//!   ontology interoperability tooling.
//!
//! ## Example
//!
//! ```
//! use ontology::{Ontology, EntityNode, DeviceLeaf};
//! use dimmer_core::{DistrictId, BuildingId, DeviceId, QuantityKind, Uri};
//! use gis::geo::{BoundingBox, GeoPoint};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut onto = Ontology::new();
//! let d = DistrictId::new("d1")?;
//! onto.add_district(d.clone(), "Campus North")?;
//! onto.add_building(
//!     &d,
//!     EntityNode::building(BuildingId::new("b1")?, Uri::parse("sim://n3/bim")?)
//!         .with_location(GeoPoint::new(45.07, 7.68)),
//! )?;
//! onto.add_device(&d, "b1", DeviceLeaf::new(
//!     DeviceId::new("dev1")?,
//!     "zigbee",
//!     QuantityKind::Temperature,
//!     Uri::parse("sim://n9/data")?,
//! ))?;
//! let hit = onto.resolve_area(&d, &BoundingBox::new(
//!     GeoPoint::new(45.0, 7.6), GeoPoint::new(45.1, 7.7)))?;
//! assert_eq!(hit.entities.len(), 1);
//! assert_eq!(hit.devices.len(), 1);
//! # Ok(())
//! # }
//! ```

mod forest;
mod node;

pub mod triple;

pub use forest::{AreaResolution, Ontology, OntologyError};
pub use node::{DeviceLeaf, DistrictTree, EntityNode};
