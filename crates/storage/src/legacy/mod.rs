//! Legacy on-disk encodings of the district databases.
//!
//! "BIMs, SIMs and GISs are usually exported to different kinds of
//! databases … each one encoded differently from the others." These
//! modules are those encodings: a [`csv`] dialect (measurement archives),
//! [`fixedwidth`] records (mainframe-style SIM exports) and [`ini`]
//! configuration trees (facility-management metadata). Database-proxies
//! parse them and translate to the common data format — the translation
//! the paper's Database-proxy exists to perform.

pub mod csv;
pub mod fixedwidth;
pub mod ini;
