//! RFC 4180-style CSV with a header row.
//!
//! Measurement archives arrive as CSV exports. The dialect: comma
//! separator, `"` quoting with `""` escapes, first record is the header,
//! `\n` or `\r\n` record separators, fields may contain embedded
//! newlines when quoted.

use crate::StorageError;

/// A parsed CSV document: a header plus data records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CsvDocument {
    /// Column names from the header record.
    pub header: Vec<String>,
    /// Data records; every record has `header.len()` fields.
    pub records: Vec<Vec<String>>,
}

impl CsvDocument {
    /// Creates a document with the given header and no records.
    pub fn new(header: Vec<String>) -> Self {
        CsvDocument {
            header,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::SchemaMismatch`] when the field count does
    /// not match the header.
    pub fn push(&mut self, record: Vec<String>) -> Result<(), StorageError> {
        if record.len() != self.header.len() {
            return Err(StorageError::SchemaMismatch {
                table: "csv".into(),
                reason: format!(
                    "record has {} fields, header has {}",
                    record.len(),
                    self.header.len()
                ),
            });
        }
        self.records.push(record);
        Ok(())
    }

    /// The index of a header column.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// Serializes with minimal quoting.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        write_record(&self.header, &mut out);
        for rec in &self.records {
            write_record(rec, &mut out);
        }
        out
    }

    /// Parses CSV text.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ParseLegacy`] on unbalanced quotes or
    /// ragged records.
    pub fn parse(text: &str) -> Result<Self, StorageError> {
        let mut records: Vec<Vec<String>> = Vec::new();
        let mut record: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut chars = text.chars().peekable();
        let mut in_quotes = false;
        let mut line = 1usize;
        let mut field_open = false; // saw content or a separator on this record

        let err = |line: usize, reason: &str| StorageError::ParseLegacy {
            format: "csv",
            line,
            reason: reason.to_owned(),
        };

        while let Some(c) = chars.next() {
            if in_quotes {
                match c {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    '\n' => {
                        line += 1;
                        field.push(c);
                    }
                    c => field.push(c),
                }
                continue;
            }
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(err(line, "quote inside unquoted field"));
                    }
                    in_quotes = true;
                    field_open = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                    field_open = true;
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                    field_open = false;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                    field_open = false;
                }
                c => {
                    field.push(c);
                    field_open = true;
                }
            }
        }
        if in_quotes {
            return Err(err(line, "unterminated quoted field"));
        }
        if field_open || !field.is_empty() || !record.is_empty() {
            record.push(field);
            records.push(record);
        }
        if records.is_empty() {
            return Err(err(1, "missing header record"));
        }
        let header = records.remove(0);
        for (i, rec) in records.iter().enumerate() {
            if rec.len() != header.len() {
                return Err(err(i + 2, "record width differs from header"));
            }
        }
        Ok(CsvDocument { header, records })
    }
}

fn write_record(fields: &[String], out: &mut String) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(['"', ',', '\n', '\r']) {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn simple_round_trip() {
        let mut doc = CsvDocument::new(strings(&["ts", "device", "value"]));
        doc.push(strings(&["100", "d1", "21.5"])).unwrap();
        doc.push(strings(&["200", "d2", "19.0"])).unwrap();
        let text = doc.encode();
        assert_eq!(CsvDocument::parse(&text).unwrap(), doc);
    }

    #[test]
    fn quoting_round_trip() {
        let mut doc = CsvDocument::new(strings(&["a", "b"]));
        doc.push(strings(&["has,comma", "has\"quote"])).unwrap();
        doc.push(strings(&["has\nnewline", ""])).unwrap();
        doc.push(strings(&["", "plain"])).unwrap();
        let text = doc.encode();
        assert_eq!(CsvDocument::parse(&text).unwrap(), doc);
    }

    #[test]
    fn crlf_accepted() {
        let doc = CsvDocument::parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(doc.records, vec![strings(&["1", "2"])]);
    }

    #[test]
    fn missing_trailing_newline_accepted() {
        let doc = CsvDocument::parse("a,b\n1,2").unwrap();
        assert_eq!(doc.records.len(), 1);
    }

    #[test]
    fn ragged_records_rejected() {
        assert!(CsvDocument::parse("a,b\n1\n").is_err());
        assert!(CsvDocument::parse("a,b\n1,2,3\n").is_err());
    }

    #[test]
    fn bad_quoting_rejected() {
        assert!(CsvDocument::parse("a\nfoo\"bar\n").is_err());
        assert!(CsvDocument::parse("a\n\"unterminated\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(CsvDocument::parse("").is_err());
    }

    #[test]
    fn header_only_is_valid() {
        let doc = CsvDocument::parse("a,b\n").unwrap();
        assert!(doc.records.is_empty());
        assert_eq!(doc.column("b"), Some(1));
        assert_eq!(doc.column("c"), None);
    }

    #[test]
    fn push_validates_width() {
        let mut doc = CsvDocument::new(strings(&["a", "b"]));
        assert!(doc.push(strings(&["1"])).is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = CsvDocument::parse("a,b\n1,2\n3\n").unwrap_err();
        match err {
            StorageError::ParseLegacy { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other}"),
        }
    }
}
