//! INI configuration documents.
//!
//! Facility-management metadata (commissioning data, device inventories)
//! commonly ships as INI files: `[section]` headers followed by
//! `key = value` pairs, `#`/`;` comments. Sections and keys preserve
//! insertion order within a section; duplicate keys keep the last value.

use std::collections::BTreeMap;

use crate::StorageError;

/// A parsed INI document: section name → (key → value).
///
/// Keys before any section header land in the `""` (global) section.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IniDocument {
    sections: BTreeMap<String, BTreeMap<String, String>>,
}

impl IniDocument {
    /// Creates an empty document.
    pub fn new() -> Self {
        IniDocument::default()
    }

    /// Sets `key` in `section` (creating the section), returning the old
    /// value.
    pub fn set(
        &mut self,
        section: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Option<String> {
        self.sections
            .entry(section.into())
            .or_default()
            .insert(key.into(), value.into())
    }

    /// Gets `key` from `section`.
    pub fn get(&self, section: &str, key: &str) -> Option<&str> {
        self.sections.get(section)?.get(key).map(String::as_str)
    }

    /// Iterates over section names, sorted.
    pub fn sections(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// Iterates over the `(key, value)` pairs of one section, key-sorted.
    pub fn section(&self, name: &str) -> impl Iterator<Item = (&str, &str)> {
        self.sections
            .get(name)
            .into_iter()
            .flat_map(|kv| kv.iter().map(|(k, v)| (k.as_str(), v.as_str())))
    }

    /// Number of keys across all sections.
    pub fn len(&self) -> usize {
        self.sections.values().map(BTreeMap::len).sum()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the document.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        if let Some(global) = self.sections.get("") {
            for (k, v) in global {
                out.push_str(k);
                out.push_str(" = ");
                out.push_str(v);
                out.push('\n');
            }
        }
        for (name, kv) in &self.sections {
            if name.is_empty() {
                continue;
            }
            out.push('[');
            out.push_str(name);
            out.push_str("]\n");
            for (k, v) in kv {
                out.push_str(k);
                out.push_str(" = ");
                out.push_str(v);
                out.push('\n');
            }
        }
        out
    }

    /// Parses INI text.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ParseLegacy`] on malformed section headers
    /// or lines without `=`.
    pub fn parse(text: &str) -> Result<Self, StorageError> {
        let mut doc = IniDocument::new();
        let mut current = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(stripped) = line.strip_prefix('[') {
                let Some(name) = stripped.strip_suffix(']') else {
                    return Err(StorageError::ParseLegacy {
                        format: "ini",
                        line: i + 1,
                        reason: "unterminated section header".into(),
                    });
                };
                let name = name.trim();
                if name.is_empty() {
                    return Err(StorageError::ParseLegacy {
                        format: "ini",
                        line: i + 1,
                        reason: "empty section name".into(),
                    });
                }
                current = name.to_owned();
                doc.sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(StorageError::ParseLegacy {
                    format: "ini",
                    line: i + 1,
                    reason: "expected key = value".into(),
                });
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(StorageError::ParseLegacy {
                    format: "ini",
                    line: i + 1,
                    reason: "empty key".into(),
                });
            }
            doc.set(current.clone(), key, value.trim());
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut doc = IniDocument::new();
        doc.set("", "site", "turin-north");
        doc.set("building.b1", "bim_db", "bim_b1.tbl");
        doc.set("building.b1", "floors", "4");
        doc.set("network.dh1", "sim_db", "dh1.dat");
        let text = doc.encode();
        assert_eq!(IniDocument::parse(&text).unwrap(), doc);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = IniDocument::parse("# comment\n; another\n\n[s]\n  key = value with spaces  \n")
            .unwrap();
        assert_eq!(doc.get("s", "key"), Some("value with spaces"));
    }

    #[test]
    fn global_section() {
        let doc = IniDocument::parse("top = 1\n[s]\nk = 2\n").unwrap();
        assert_eq!(doc.get("", "top"), Some("1"));
        assert_eq!(doc.get("s", "k"), Some("2"));
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let doc = IniDocument::parse("[s]\nk = 1\nk = 2\n").unwrap();
        assert_eq!(doc.get("s", "k"), Some("2"));
        assert_eq!(doc.len(), 1);
    }

    #[test]
    fn values_may_contain_equals() {
        let doc = IniDocument::parse("[s]\nuri = sim://n1/path?a=b\n").unwrap();
        assert_eq!(doc.get("s", "uri"), Some("sim://n1/path?a=b"));
    }

    #[test]
    fn malformed_rejected_with_line() {
        for (text, bad_line) in [
            ("[unterminated\n", 1),
            ("[]\n", 1),
            ("[s]\nno-equals\n", 2),
            ("[s]\n= novalue\n", 2),
        ] {
            match IniDocument::parse(text).unwrap_err() {
                StorageError::ParseLegacy { line, .. } => {
                    assert_eq!(line, bad_line, "{text:?}")
                }
                other => panic!("unexpected {other}"),
            }
        }
    }

    #[test]
    fn empty_sections_survive() {
        let doc = IniDocument::parse("[empty]\n").unwrap();
        assert!(doc.sections().any(|s| s == "empty"));
        assert_eq!(doc.section("empty").count(), 0);
        assert!(doc.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let doc = IniDocument::parse("[z]\nk=1\n[a]\nb=2\nc=3\n").unwrap();
        assert_eq!(doc.sections().collect::<Vec<_>>(), vec!["a", "z"]);
        assert_eq!(
            doc.section("a").collect::<Vec<_>>(),
            vec![("b", "2"), ("c", "3")]
        );
    }
}
