//! Fixed-width record files.
//!
//! Distribution-network (SIM) data often comes out of decades-old
//! utility systems as fixed-width text records: every line is exactly
//! the sum of its field widths, values right-padded with spaces. A
//! [`RecordLayout`] describes the fields; encode/parse convert between
//! lines and string field vectors.

use crate::StorageError;

/// One field of a fixed-width layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name.
    pub name: String,
    /// Width in bytes (ASCII).
    pub width: usize,
}

impl FieldSpec {
    /// Creates a field spec.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(name: impl Into<String>, width: usize) -> Self {
        assert!(width > 0, "field width must be positive");
        FieldSpec {
            name: name.into(),
            width,
        }
    }
}

/// A fixed-width record layout.
///
/// ```
/// use storage::legacy::fixedwidth::{RecordLayout, FieldSpec};
/// # fn main() -> Result<(), storage::StorageError> {
/// let layout = RecordLayout::new(vec![
///     FieldSpec::new("node", 8),
///     FieldSpec::new("kind", 4),
///     FieldSpec::new("load_kw", 8),
/// ]);
/// let line = layout.encode_record(&["SUB-0007", "SUB", "1250.5"])?;
/// assert_eq!(line.len(), 20);
/// let fields = layout.parse_record(&line)?;
/// assert_eq!(fields, vec!["SUB-0007", "SUB", "1250.5"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordLayout {
    fields: Vec<FieldSpec>,
    total_width: usize,
}

impl RecordLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty.
    pub fn new(fields: Vec<FieldSpec>) -> Self {
        assert!(!fields.is_empty(), "a layout needs at least one field");
        let total_width = fields.iter().map(|f| f.width).sum();
        RecordLayout {
            fields,
            total_width,
        }
    }

    /// The field specs.
    pub fn fields(&self) -> &[FieldSpec] {
        &self.fields
    }

    /// Total line width.
    pub fn total_width(&self) -> usize {
        self.total_width
    }

    /// Encodes one record as a line (no terminator), right-padding each
    /// value with spaces.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::SchemaMismatch`] if the value count is
    /// wrong, a value exceeds its width, or a value is not ASCII.
    pub fn encode_record(&self, values: &[&str]) -> Result<String, StorageError> {
        if values.len() != self.fields.len() {
            return Err(StorageError::SchemaMismatch {
                table: "fixed-width".into(),
                reason: format!(
                    "expected {} values, got {}",
                    self.fields.len(),
                    values.len()
                ),
            });
        }
        let mut out = String::with_capacity(self.total_width);
        for (value, spec) in values.iter().zip(&self.fields) {
            if !value.is_ascii() {
                return Err(StorageError::SchemaMismatch {
                    table: "fixed-width".into(),
                    reason: format!("field {:?} is not ascii", spec.name),
                });
            }
            if value.len() > spec.width {
                return Err(StorageError::SchemaMismatch {
                    table: "fixed-width".into(),
                    reason: format!(
                        "value {value:?} exceeds width {} of field {:?}",
                        spec.width, spec.name
                    ),
                });
            }
            out.push_str(value);
            for _ in value.len()..spec.width {
                out.push(' ');
            }
        }
        Ok(out)
    }

    /// Parses one line into trimmed field values.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ParseLegacy`] if the line has the wrong
    /// length or is not ASCII.
    pub fn parse_record(&self, line: &str) -> Result<Vec<String>, StorageError> {
        if !line.is_ascii() {
            return Err(StorageError::ParseLegacy {
                format: "fixed-width",
                line: 0,
                reason: "line is not ascii".into(),
            });
        }
        if line.len() != self.total_width {
            return Err(StorageError::ParseLegacy {
                format: "fixed-width",
                line: 0,
                reason: format!(
                    "line length {} does not match layout width {}",
                    line.len(),
                    self.total_width
                ),
            });
        }
        let mut out = Vec::with_capacity(self.fields.len());
        let mut pos = 0;
        for spec in &self.fields {
            let raw = &line[pos..pos + spec.width];
            out.push(raw.trim_end().to_owned());
            pos += spec.width;
        }
        Ok(out)
    }

    /// Encodes many records as a newline-terminated document.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RecordLayout::encode_record`] error.
    pub fn encode_document(&self, records: &[Vec<String>]) -> Result<String, StorageError> {
        let mut out = String::new();
        for rec in records {
            let refs: Vec<&str> = rec.iter().map(String::as_str).collect();
            out.push_str(&self.encode_record(&refs)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a newline-separated document; blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ParseLegacy`] with the 1-based line number
    /// of the first bad record.
    pub fn parse_document(&self, text: &str) -> Result<Vec<Vec<String>>, StorageError> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            match self.parse_record(line) {
                Ok(rec) => out.push(rec),
                Err(StorageError::ParseLegacy { format, reason, .. }) => {
                    return Err(StorageError::ParseLegacy {
                        format,
                        line: i + 1,
                        reason,
                    })
                }
                Err(other) => return Err(other),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RecordLayout {
        RecordLayout::new(vec![
            FieldSpec::new("node", 8),
            FieldSpec::new("kind", 4),
            FieldSpec::new("load", 8),
        ])
    }

    #[test]
    fn record_round_trip() {
        let l = layout();
        let line = l.encode_record(&["SUB-0007", "SUB", "1250.5"]).unwrap();
        assert_eq!(line, "SUB-0007SUB 1250.5  ");
        assert_eq!(
            l.parse_record(&line).unwrap(),
            vec!["SUB-0007", "SUB", "1250.5"]
        );
    }

    #[test]
    fn document_round_trip() {
        let l = layout();
        let records = vec![
            vec!["N1".to_owned(), "PLT".to_owned(), "90".to_owned()],
            vec!["N2".to_owned(), "CON".to_owned(), "12.5".to_owned()],
        ];
        let text = l.encode_document(&records).unwrap();
        assert_eq!(l.parse_document(&text).unwrap(), records);
    }

    #[test]
    fn blank_lines_skipped() {
        let l = layout();
        let text = format!(
            "{}\n\n{}\n",
            l.encode_record(&["A", "B", "C"]).unwrap(),
            l.encode_record(&["D", "E", "F"]).unwrap()
        );
        assert_eq!(l.parse_document(&text).unwrap().len(), 2);
    }

    #[test]
    fn wrong_length_rejected_with_line_number() {
        let l = layout();
        let good = l.encode_record(&["A", "B", "C"]).unwrap();
        let text = format!("{good}\nshort\n");
        match l.parse_document(&text).unwrap_err() {
            StorageError::ParseLegacy { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn oversized_value_rejected() {
        let l = layout();
        assert!(l.encode_record(&["WAY-TOO-LONG-NODE", "SUB", "1"]).is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        let l = layout();
        assert!(l.encode_record(&["A", "B"]).is_err());
    }

    #[test]
    fn non_ascii_rejected() {
        let l = layout();
        assert!(l.encode_record(&["é", "B", "C"]).is_err());
        assert!(l.parse_record("é                  ").is_err());
    }

    #[test]
    fn trailing_spaces_inside_values_are_trimmed() {
        let l = RecordLayout::new(vec![FieldSpec::new("a", 4)]);
        assert_eq!(l.parse_record("x   ").unwrap(), vec!["x"]);
        // Leading spaces are significant (numeric right-alignment).
        assert_eq!(l.parse_record("  1 ").unwrap(), vec!["  1"]);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        FieldSpec::new("a", 0);
    }
}
