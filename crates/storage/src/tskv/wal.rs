//! Write-ahead log and head snapshot.
//!
//! Durability in the simulated district is modeled, not physical: a
//! node crash (`simnet` `crash`/`restart`) wipes whatever the store
//! treats as volatile — the mutable head — while the WAL, snapshot, and
//! sealed segments survive, exactly as an fsync'd log and on-disk
//! segment files would. Every mutation appends a WAL record *before*
//! touching the head, so a point is "acknowledged" only once it is
//! replayable.
//!
//! A **checkpoint** encodes the current head into a compressed
//! [`Snapshot`] and truncates the WAL through the snapshot's sequence.
//! Recovery restores the snapshot and replays the WAL tail in order;
//! because inserts are last-writer-wins overwrites, replay is
//! idempotent and a *torn* checkpoint (snapshot written, crash before
//! the truncate) recovers byte-identically.

use std::collections::HashMap;

/// One logged mutation. Series names are interned to keep the log
/// compact; the interner survives truncation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WalOp {
    /// `insert(series, t, v)` — last-writer-wins on `t`.
    Insert { series: u32, t: i64, v: f64 },
    /// `drop_series(series)`.
    DropSeries { series: u32 },
    /// `apply_retention(horizon)` — drop `t < horizon` everywhere.
    Retention { horizon: i64 },
}

/// A sequenced WAL record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
}

/// The in-simulation write-ahead log.
#[derive(Debug, Clone, Default)]
pub(crate) struct Wal {
    names: Vec<String>,
    ids: HashMap<String, u32>,
    records: Vec<WalRecord>,
    next_seq: u64,
}

impl Wal {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// The series name behind an interned id.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn append(&mut self, op: WalOp) -> u64 {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.records.push(WalRecord { seq, op });
        seq
    }

    /// Logs an insert; returns its sequence.
    pub fn append_insert(&mut self, series: &str, t: i64, v: f64) -> u64 {
        let series = self.intern(series);
        self.append(WalOp::Insert { series, t, v })
    }

    /// Logs a series drop.
    pub fn append_drop(&mut self, series: &str) -> u64 {
        let series = self.intern(series);
        self.append(WalOp::DropSeries { series })
    }

    /// Logs a retention sweep.
    pub fn append_retention(&mut self, horizon: i64) -> u64 {
        self.append(WalOp::Retention { horizon })
    }

    /// Sequence of the most recent record (0 before any append).
    pub fn last_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records with `seq > after`, oldest first.
    pub fn records_after(&self, after: u64) -> &[WalRecord] {
        let start = self.records.partition_point(|r| r.seq <= after);
        &self.records[start..]
    }

    /// Number of live (untruncated) records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Drops every record with `seq <= through` (checkpoint truncate).
    pub fn truncate_through(&mut self, through: u64) {
        let start = self.records.partition_point(|r| r.seq <= through);
        self.records.drain(..start);
    }
}

/// A compressed image of the mutable head, taken at `upto_seq`. Blocks
/// are `(series, point-count, encoded bytes)`.
#[derive(Debug, Clone, Default)]
pub(crate) struct Snapshot {
    pub upto_seq: u64,
    pub blocks: Vec<(String, u32, Box<[u8]>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_intern_and_truncate() {
        let mut wal = Wal::default();
        assert_eq!(wal.last_seq(), 0);
        let s1 = wal.append_insert("a", 1, 1.0);
        let s2 = wal.append_insert("b", 2, 2.0);
        let s3 = wal.append_insert("a", 3, 3.0);
        assert_eq!((s1, s2, s3), (1, 2, 3));
        // "a" interned once.
        let ids: Vec<u32> = wal
            .records_after(0)
            .iter()
            .filter_map(|r| match r.op {
                WalOp::Insert { series, .. } => Some(series),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 0]);
        assert_eq!(wal.name(1), "b");

        wal.truncate_through(2);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.records_after(0)[0].seq, 3);
        // The interner and sequencing survive truncation.
        assert_eq!(wal.append_retention(10), 4);
        assert_eq!(wal.records_after(3).len(), 1);
        assert_eq!(wal.name(0), "a");
    }
}
