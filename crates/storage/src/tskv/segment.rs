//! Immutable sealed segments.
//!
//! A segment is a compressed, read-only run of one series' points, all
//! inside a single time partition (an L0 segment covers part of it, a
//! compacted segment owns the whole partition). Segments carry a
//! monotonically increasing **seal sequence**: when two segments of the
//! same series both contain a timestamp, the higher sequence was sealed
//! later and its value wins (the mutable head, fresher still, beats
//! both).
//!
//! Compacted segments additionally record their partition `span` and
//! materialized rollup levels — per-bucket `(count, sum, min, max,
//! last)` summaries that can answer `downsample_counted` for any
//! [`Aggregate`](crate::tskv::Aggregate) without touching the
//! compressed points.

use crate::tskv::gorilla::{encode_block, BlockIter};

/// One materialized rollup bucket: everything needed to serve any of
/// the six aggregates for the bucket starting at `start`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SummaryBucket {
    pub start: i64,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
}

/// All buckets of one rollup granularity inside a segment's span.
/// Buckets are aligned to `t.div_euclid(bucket_millis) * bucket_millis`
/// and empty buckets are omitted, matching the query-path convention
/// when the query's `from` is itself bucket-aligned.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MaterializedLevel {
    pub bucket_millis: i64,
    pub buckets: Vec<SummaryBucket>,
}

/// A sealed, compressed, immutable run of points.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    /// Global seal sequence; higher wins on duplicate timestamps.
    pub seq: u64,
    /// First timestamp in the segment.
    pub min_t: i64,
    /// Last timestamp in the segment.
    pub max_t: i64,
    /// The value at `max_t`, so `latest()` never decodes.
    pub last_v: f64,
    /// Number of encoded points.
    pub count: u32,
    /// The Gorilla-encoded block.
    pub bytes: Box<[u8]>,
    /// `Some((start, end))` when this segment is the compacted owner of
    /// the whole partition `[start, end)`.
    pub span: Option<(i64, i64)>,
    /// Materialized rollups (compacted segments only).
    pub levels: Vec<MaterializedLevel>,
}

impl Segment {
    /// Seals `points` (sorted, strictly increasing timestamps,
    /// non-empty) into an L0 segment.
    pub fn seal(points: &[(i64, f64)], seq: u64) -> Segment {
        debug_assert!(!points.is_empty());
        Segment {
            seq,
            min_t: points[0].0,
            max_t: points[points.len() - 1].0,
            last_v: points[points.len() - 1].1,
            count: points.len() as u32,
            bytes: encode_block(points),
            span: None,
            levels: Vec::new(),
        }
    }

    /// Seals `points` as the compacted owner of `[span.0, span.1)`,
    /// materializing one rollup level per entry in `level_millis`.
    pub fn seal_compacted(
        points: &[(i64, f64)],
        seq: u64,
        span: (i64, i64),
        level_millis: &[i64],
    ) -> Segment {
        let mut seg = Segment::seal(points, seq);
        seg.span = Some(span);
        seg.levels = materialize(points, level_millis);
        seg
    }

    /// A lazy decoder over the segment's points.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter::new(&self.bytes, self.count)
    }

    /// True when the segment may hold points in `[from, to)`.
    pub fn overlaps(&self, from: i64, to: i64) -> bool {
        self.min_t < to && self.max_t >= from
    }
}

/// Builds rollup levels over `points` (sorted by timestamp) with a
/// single streaming pass per level. The fold order (chronological) and
/// the min/max/sum arithmetic mirror the raw query fold exactly, so a
/// materialized answer is bit-identical to a raw scan.
pub(crate) fn materialize(points: &[(i64, f64)], level_millis: &[i64]) -> Vec<MaterializedLevel> {
    level_millis
        .iter()
        .map(|&bucket| {
            let mut buckets = Vec::new();
            let mut acc: Option<SummaryBucket> = None;
            for &(t, v) in points {
                let start = t.div_euclid(bucket) * bucket;
                match &mut acc {
                    Some(b) if b.start == start => {
                        b.count += 1;
                        b.sum += v;
                        b.min = b.min.min(v);
                        b.max = b.max.max(v);
                        b.last = v;
                    }
                    _ => {
                        if let Some(b) = acc.take() {
                            buckets.push(b);
                        }
                        acc = Some(SummaryBucket {
                            start,
                            count: 1,
                            sum: v,
                            min: f64::INFINITY.min(v),
                            max: f64::NEG_INFINITY.max(v),
                            last: v,
                        });
                    }
                }
            }
            if let Some(b) = acc {
                buckets.push(b);
            }
            MaterializedLevel {
                bucket_millis: bucket,
                buckets,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_round_trips_and_tracks_bounds() {
        let pts = vec![(-50, 1.5), (0, 2.5), (75, -3.5)];
        let seg = Segment::seal(&pts, 7);
        assert_eq!((seg.seq, seg.min_t, seg.max_t, seg.count), (7, -50, 75, 3));
        assert_eq!(seg.last_v, -3.5);
        assert_eq!(seg.iter().collect::<Vec<_>>(), pts);
        assert!(seg.overlaps(-50, -49));
        assert!(seg.overlaps(75, 76));
        assert!(!seg.overlaps(76, 100));
        assert!(!seg.overlaps(-100, -50));
    }

    #[test]
    fn materialized_levels_summarize_buckets() {
        let pts = vec![(0, 1.0), (5, 3.0), (12, 5.0), (-3, 2.0)];
        let mut sorted = pts.clone();
        sorted.sort_by_key(|p| p.0);
        let levels = materialize(&sorted, &[10]);
        assert_eq!(levels.len(), 1);
        let b = &levels[0].buckets;
        assert_eq!(b.len(), 3);
        assert_eq!((b[0].start, b[0].count, b[0].last), (-10, 1, 2.0));
        assert_eq!((b[1].start, b[1].count, b[1].sum), (0, 2, 4.0));
        assert_eq!((b[1].min, b[1].max), (1.0, 3.0));
        assert_eq!((b[2].start, b[2].count, b[2].last), (10, 1, 5.0));
    }
}
