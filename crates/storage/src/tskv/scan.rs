//! Merged scans over the mutable head and any overlapping segments.
//!
//! A series' points live in up to `1 + #segments` sorted sources. A
//! scan k-way-merges them in timestamp order; when several sources hold
//! the *same* timestamp, the highest-priority one wins — the head
//! (freshest) outranks every segment, and a later-sealed segment
//! outranks an earlier one. All sources at the winning timestamp are
//! advanced, so each logical point is emitted exactly once.

use std::collections::btree_map;

use crate::tskv::gorilla::BlockIter;
use crate::tskv::segment::Segment;

/// Priority of the mutable head: above every possible seal sequence.
const HEAD_PRIORITY: u64 = u64::MAX;

enum SourceIter<'a> {
    Head(btree_map::Range<'a, i64, f64>),
    Block(BlockIter<'a>),
}

impl SourceIter<'_> {
    #[inline]
    fn next(&mut self) -> Option<(i64, f64)> {
        match self {
            SourceIter::Head(r) => r.next().map(|(&t, &v)| (t, v)),
            SourceIter::Block(b) => b.next(),
        }
    }
}

struct Source<'a> {
    priority: u64,
    iter: SourceIter<'a>,
    peek: Option<(i64, f64)>,
}

impl Source<'_> {
    /// Advances past the current peek, enforcing the scan's upper bound.
    #[inline]
    fn advance(&mut self, to: Option<i64>) {
        self.peek = self.iter.next();
        if let (Some((t, _)), Some(to)) = (self.peek, to) {
            if t >= to {
                self.peek = None;
            }
        }
    }
}

/// A merged iterator over `[from, to)` (`to = None` means unbounded,
/// including `i64::MAX`).
///
/// Compacted segments are disjoint in time (one per partition), so the
/// scan keeps not-yet-reached sources in `pending`, ordered by first
/// timestamp, and only merges the `active` few whose ranges actually
/// interleave — the common case streams a single segment straight
/// through with one bound check per point instead of a k-way merge.
pub(crate) struct MergeScan<'a> {
    /// Sources whose first timestamp lies ahead of the merge frontier,
    /// sorted by that timestamp **descending** (pop = next to start).
    pending: Vec<Source<'a>>,
    active: Vec<Source<'a>>,
    to: Option<i64>,
}

impl<'a> MergeScan<'a> {
    /// A merged scan over one series' head and segments.
    pub fn new(
        head: &'a std::collections::BTreeMap<i64, f64>,
        segments: &'a [Segment],
        from: i64,
        to: Option<i64>,
    ) -> Self {
        let mut sources = Vec::new();
        let overlapping = segments
            .iter()
            .filter(|s| to.is_none_or(|to| s.overlaps(from, to)) && s.max_t >= from);
        for seg in overlapping {
            let mut iter = SourceIter::Block(seg.iter());
            // Blocks decode sequentially; skip the prefix before `from`.
            let mut peek = iter.next();
            while let Some((t, _)) = peek {
                if t >= from {
                    break;
                }
                peek = iter.next();
            }
            sources.push(Source {
                priority: seg.seq,
                iter,
                peek,
            });
        }
        if !head.is_empty() {
            let mut iter = SourceIter::Head(head.range(from..));
            let peek = iter.next();
            sources.push(Source {
                priority: HEAD_PRIORITY,
                iter,
                peek,
            });
        }
        // Apply the upper bound to the initial peeks.
        if let Some(to) = to {
            for s in &mut sources {
                if matches!(s.peek, Some((t, _)) if t >= to) {
                    s.peek = None;
                }
            }
        }
        sources.retain(|s| s.peek.is_some());
        sources.sort_by_key(|s| std::cmp::Reverse(s.peek.expect("retained").0));
        MergeScan {
            pending: sources,
            active: Vec::new(),
            to,
        }
    }

    /// The first timestamp of the next source to start, if any.
    #[inline]
    fn next_start(&self) -> Option<i64> {
        self.pending.last().map(|p| p.peek.expect("pending peek").0)
    }

    /// Streams every remaining point through `f` in order.
    ///
    /// Equivalent to `for p in scan { f(p) }` but while a single source
    /// covers the frontier it drains that source's decoder in a
    /// monomorphic tight loop — segment scans run at decode speed
    /// instead of paying the merge bookkeeping per point.
    pub fn for_each(mut self, mut f: impl FnMut(i64, f64)) {
        loop {
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    return;
                }
                let src = self.pending.pop().expect("non-empty");
                self.active.push(src);
            }
            if self.active.len() == 1 {
                // Stream this source until it exhausts, crosses the
                // scan's upper bound, or reaches the start of the next
                // pending source (which then has to be merged in).
                let ns = self.next_start();
                let to = self.to;
                let src = &mut self.active[0];
                let mut cur = src.peek;
                match &mut src.iter {
                    SourceIter::Block(b) => {
                        while let Some((t, v)) = cur {
                            if matches!(ns, Some(ns) if t >= ns) {
                                break;
                            }
                            if matches!(to, Some(to) if t >= to) {
                                cur = None;
                                break;
                            }
                            f(t, v);
                            cur = b.next();
                        }
                    }
                    SourceIter::Head(r) => {
                        while let Some((t, v)) = cur {
                            if matches!(ns, Some(ns) if t >= ns) {
                                break;
                            }
                            if matches!(to, Some(to) if t >= to) {
                                cur = None;
                                break;
                            }
                            f(t, v);
                            cur = r.next().map(|(&t, &v)| (t, v));
                        }
                    }
                }
                // A stop at the next source's start may still sit past
                // the upper bound; the peek invariant is "in range".
                src.peek = match cur {
                    Some((t, _)) if to.is_some_and(|to| t >= to) => None,
                    other => other,
                };
                if src.peek.is_none() {
                    self.active.clear();
                    continue;
                }
            }
            match self.next() {
                Some((t, v)) => f(t, v),
                None => return,
            }
        }
    }
}

impl Iterator for MergeScan<'_> {
    type Item = (i64, f64);

    #[inline]
    fn next(&mut self) -> Option<(i64, f64)> {
        // Fast path: one active source and the next pending one starts
        // later — stream straight through.
        if self.active.len() == 1 {
            let next_start = self.next_start();
            let src = &mut self.active[0];
            if let Some((t, v)) = src.peek {
                if next_start.is_none_or(|ns| t < ns) {
                    src.advance(self.to);
                    if src.peek.is_none() {
                        self.active.clear();
                    }
                    return Some((t, v));
                }
            }
        }
        // Activate every pending source that could hold the next point.
        let mut min_t = self
            .active
            .iter()
            .filter_map(|s| s.peek)
            .map(|(t, _)| t)
            .min();
        while let Some(ns) = self.next_start() {
            if min_t.is_none_or(|m| ns <= m) {
                min_t = Some(min_t.map_or(ns, |m: i64| m.min(ns)));
                let src = self.pending.pop().expect("next_start saw it");
                self.active.push(src);
            } else {
                break;
            }
        }
        let t = min_t?;
        // Highest-priority value at the winning timestamp.
        let mut best: Option<(f64, u64)> = None;
        for s in &self.active {
            if let Some((pt, pv)) = s.peek {
                if pt == t && best.is_none_or(|(_, bp)| s.priority > bp) {
                    best = Some((pv, s.priority));
                }
            }
        }
        let (v, _) = best.expect("some active source peeks at min_t");
        // Advance every source sitting at `t` so the point is emitted
        // exactly once; drop the exhausted ones.
        let to = self.to;
        let mut exhausted = false;
        for s in &mut self.active {
            if matches!(s.peek, Some((pt, _)) if pt == t) {
                s.advance(to);
                exhausted |= s.peek.is_none();
            }
        }
        if exhausted {
            self.active.retain(|s| s.peek.is_some());
        }
        Some((t, v))
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    #[test]
    fn merges_dedups_and_prioritizes() {
        // Segment seq 1: t 0,10,20 ; segment seq 2 overwrites t 10;
        // head overwrites t 20 and adds t 30.
        let s1 = Segment::seal(&[(0, 1.0), (10, 1.0), (20, 1.0)], 1);
        let s2 = Segment::seal(&[(10, 2.0)], 2);
        let mut head = BTreeMap::new();
        head.insert(20, 3.0);
        head.insert(30, 3.0);
        let segs = vec![s1, s2];
        let got: Vec<(i64, f64)> = MergeScan::new(&head, &segs, 0, None).collect();
        assert_eq!(got, vec![(0, 1.0), (10, 2.0), (20, 3.0), (30, 3.0)]);
        // Bounds are half-open and skip the encoded prefix.
        let got: Vec<(i64, f64)> = MergeScan::new(&head, &segs, 10, Some(30)).collect();
        assert_eq!(got, vec![(10, 2.0), (20, 3.0)]);
    }

    #[test]
    fn unbounded_scan_reaches_i64_max() {
        let mut head = BTreeMap::new();
        head.insert(i64::MAX, 9.0);
        let got: Vec<(i64, f64)> = MergeScan::new(&head, &[], i64::MIN, None).collect();
        assert_eq!(got, vec![(i64::MAX, 9.0)]);
    }
}
