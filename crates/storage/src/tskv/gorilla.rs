//! Bit-level codecs for sealed segments: Gorilla-style delta-of-delta
//! timestamps plus one of two value encodings chosen per block at seal
//! time.
//!
//! * **Decimal-int** — most district telemetry is quantized by the
//!   device wire formats (ZigBee temperature is centi-degrees, metering
//!   is 0.01 kWh ticks, switch states are 0/1). When every value in a
//!   block is exactly `m / 10^k` for one small `k`, the block stores
//!   zigzag-varbit *integer deltas* of `m` — typically under 10 bits per
//!   point, an order of magnitude below the raw 16-byte pair.
//! * **XOR floats** — the Gorilla fallback for full-precision doubles:
//!   XOR against the previous value, reusing the previous
//!   leading/meaningful-bit window when it still fits.
//!
//! Both are lossless: decode reproduces every `f64` bit-exactly,
//! including NaN payloads and `-0.0` (a negative zero fails the
//! decimal-int bit-equality probe and falls back to XOR).

/// Exact powers of ten for the decimal-int scales (`k <= 4`).
const SCALES: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// An MSB-first bit sink.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `v`, most significant first.
    pub fn push_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            let byte_idx = self.bit_len >> 3;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if (v >> i) & 1 == 1 {
                self.bytes[byte_idx] |= 1 << (7 - (self.bit_len & 7));
            }
            self.bit_len += 1;
        }
    }

    /// The packed bytes (trailing bits zero-padded).
    pub fn finish(self) -> Box<[u8]> {
        self.bytes.into_boxed_slice()
    }
}

/// An MSB-first bit source with a 64-bit refill cache. Reading past the
/// end yields zero bits; block decoding is count-driven, so a valid
/// stream never over-reads.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    cache: u64,
    cached: u32,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            byte_pos: 0,
            cache: 0,
            cached: 0,
        }
    }

    /// Tops the cache up past 56 bits. The fast path shifts in whole
    /// bytes of one aligned 8-byte load; the tail path goes byte by
    /// byte and zero-fills past the end of the stream.
    #[inline]
    fn refill(&mut self) {
        if self.byte_pos + 8 <= self.bytes.len() {
            let word = u64::from_be_bytes(
                self.bytes[self.byte_pos..self.byte_pos + 8]
                    .try_into()
                    .expect("8-byte slice"),
            );
            let bytes_in = (63 - self.cached) >> 3;
            self.cache = (self.cache << (8 * bytes_in)) | (word >> (64 - 8 * bytes_in));
            self.byte_pos += bytes_in as usize;
            self.cached += 8 * bytes_in;
            return;
        }
        while self.cached <= 56 {
            let b = self.bytes.get(self.byte_pos).copied().unwrap_or(0);
            self.byte_pos += 1;
            self.cache = (self.cache << 8) | u64::from(b);
            self.cached += 8;
        }
    }

    /// Shows the next `n <= 32` bits without consuming them (zero-fill
    /// past the end of the stream).
    #[inline]
    fn peek(&mut self, n: u32) -> u64 {
        if self.cached < n {
            self.refill();
        }
        (self.cache >> (self.cached - n)) & ((1u64 << n) - 1)
    }

    /// Drops `n` already-peeked bits.
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(self.cached >= n, "consume past the peeked window");
        self.cached -= n;
    }

    /// Reads `n <= 32` bits.
    #[inline]
    fn read_small(&mut self, n: u32) -> u64 {
        if n == 0 {
            return 0;
        }
        if self.cached < n {
            self.refill();
        }
        self.cached -= n;
        (self.cache >> self.cached) & ((1u64 << n) - 1)
    }

    /// Reads `n <= 64` bits, most significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> u64 {
        if n <= 32 {
            self.read_small(n)
        } else {
            let hi = self.read_small(32);
            let lo = self.read_small(n - 32);
            (hi << (n - 32)) | lo
        }
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.read_small(1) == 1
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Writes a zigzagged integer with a Gorilla-style prefix class:
/// `0` (zero), `10`+7, `110`+9, `1110`+12, `11110`+32, `11111`+64 bits.
#[inline]
fn write_varbit(w: &mut BitWriter, v: i64) {
    let z = zigzag(v);
    if z == 0 {
        w.push_bits(0b0, 1);
    } else if z < (1 << 7) {
        w.push_bits(0b10, 2);
        w.push_bits(z, 7);
    } else if z < (1 << 9) {
        w.push_bits(0b110, 3);
        w.push_bits(z, 9);
    } else if z < (1 << 12) {
        w.push_bits(0b1110, 4);
        w.push_bits(z, 12);
    } else if z < (1 << 32) {
        w.push_bits(0b11110, 5);
        w.push_bits(z, 32);
    } else {
        w.push_bits(0b11111, 5);
        w.push_bits(z, 64);
    }
}

/// Decodes one varbit integer. A single 16-bit peek covers the prefix
/// *and* the payload of the four short classes (the overwhelmingly
/// common ones), so the hot path costs one refill check and one
/// consume instead of bit-by-bit prefix reads.
#[inline]
fn read_varbit(r: &mut BitReader<'_>) -> i64 {
    let p = r.peek(16);
    let z = if p & 0x8000 == 0 {
        r.consume(1);
        return 0;
    } else if p & 0x4000 == 0 {
        r.consume(9);
        (p >> 7) & 0x7f
    } else if p & 0x2000 == 0 {
        r.consume(12);
        (p >> 4) & 0x1ff
    } else if p & 0x1000 == 0 {
        r.consume(16);
        p & 0xfff
    } else if p & 0x0800 == 0 {
        r.consume(5);
        r.read_small(32)
    } else {
        r.consume(5);
        r.read_bits(64)
    };
    unzigzag(z)
}

/// Per-block value encoding, chosen at seal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueMode {
    /// Values are `m / 10^k`; integer deltas of `m` are stored.
    DecimalInt { scale: u8 },
    /// Gorilla XOR over the raw `f64` bits.
    XorFloat,
}

/// Probes whether every value is exactly `m / 10^k` for one `k <= 4`
/// with `|m|` comfortably inside the exact-integer range of `f64`.
fn detect_decimal_scale(points: &[(i64, f64)]) -> Option<u8> {
    'scales: for (k, &scale) in SCALES.iter().enumerate() {
        for &(_, v) in points {
            if !v.is_finite() {
                return None; // NaN/inf can never take the integer path
            }
            let m = (v * scale).round();
            if m.abs() > 4.5e15 {
                continue 'scales;
            }
            // Round-trip through the i64 the encoder will store; this
            // also rejects -0.0 (the cast collapses it to +0.0).
            if ((m as i64) as f64 / scale).to_bits() != v.to_bits() {
                continue 'scales;
            }
        }
        return Some(k as u8);
    }
    None
}

/// Encodes a strictly-increasing-timestamp point run into a bitstream.
/// The count is carried out of band (in the segment header).
pub fn encode_block(points: &[(i64, f64)]) -> Box<[u8]> {
    let mut w = BitWriter::new();
    if points.is_empty() {
        return w.finish();
    }
    let mode = match detect_decimal_scale(points) {
        Some(scale) => ValueMode::DecimalInt { scale },
        None => ValueMode::XorFloat,
    };
    match mode {
        ValueMode::DecimalInt { scale } => {
            w.push_bits(0b0, 1);
            w.push_bits(u64::from(scale), 3);
        }
        ValueMode::XorFloat => w.push_bits(0b1, 1),
    }

    // Timestamp state: raw first, then delta, then delta-of-delta.
    let mut prev_t = points[0].0;
    let mut prev_delta: i64 = 0;
    w.push_bits(prev_t as u64, 64);

    // Value state.
    let mut prev_m: i64 = 0;
    let mut prev_bits: u64 = 0;
    let mut window: Option<(u32, u32)> = None; // (leading, meaningful)
    match mode {
        ValueMode::DecimalInt { scale } => {
            prev_m = (points[0].1 * SCALES[scale as usize]).round() as i64;
            write_varbit(&mut w, prev_m);
        }
        ValueMode::XorFloat => {
            prev_bits = points[0].1.to_bits();
            w.push_bits(prev_bits, 64);
        }
    }

    for &(t, v) in &points[1..] {
        debug_assert!(t > prev_t, "segment timestamps must strictly increase");
        let delta = t - prev_t;
        write_varbit(&mut w, delta - prev_delta);
        prev_delta = delta;
        prev_t = t;
        match mode {
            ValueMode::DecimalInt { scale } => {
                let m = (v * SCALES[scale as usize]).round() as i64;
                write_varbit(&mut w, m - prev_m);
                prev_m = m;
            }
            ValueMode::XorFloat => {
                let bits = v.to_bits();
                let xor = bits ^ prev_bits;
                prev_bits = bits;
                if xor == 0 {
                    w.push_bits(0b0, 1);
                    continue;
                }
                let leading = xor.leading_zeros().min(31);
                let trailing = xor.trailing_zeros();
                let meaningful = 64 - leading - trailing;
                if let Some((wl, wm)) = window {
                    let w_trailing = 64 - wl - wm;
                    if leading >= wl && trailing >= w_trailing {
                        // Fits the previous window: control '10'.
                        w.push_bits(0b10, 2);
                        w.push_bits(xor >> w_trailing, wm);
                        continue;
                    }
                }
                w.push_bits(0b11, 2);
                w.push_bits(u64::from(leading), 5);
                w.push_bits(u64::from(meaningful - 1), 6);
                w.push_bits(xor >> trailing, meaningful);
                window = Some((leading, meaningful));
            }
        }
    }
    w.finish()
}

/// A lazy decoder over an encoded block; yields exactly `count` points.
#[derive(Debug, Clone)]
pub struct BlockIter<'a> {
    r: BitReader<'a>,
    remaining: u32,
    started: bool,
    mode: ValueMode,
    prev_t: i64,
    prev_delta: i64,
    prev_m: i64,
    prev_bits: u64,
    window: (u32, u32),
}

impl<'a> BlockIter<'a> {
    /// A decoder over `bytes` holding `count` points.
    pub fn new(bytes: &'a [u8], count: u32) -> Self {
        BlockIter {
            r: BitReader::new(bytes),
            remaining: count,
            started: false,
            mode: ValueMode::XorFloat,
            prev_t: 0,
            prev_delta: 0,
            prev_m: 0,
            prev_bits: 0,
            window: (0, 64),
        }
    }
}

impl Iterator for BlockIter<'_> {
    type Item = (i64, f64);

    #[inline]
    fn next(&mut self) -> Option<(i64, f64)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if !self.started {
            self.started = true;
            self.mode = if self.r.read_bit() {
                ValueMode::XorFloat
            } else {
                ValueMode::DecimalInt {
                    scale: self.r.read_bits(3) as u8,
                }
            };
            self.prev_t = self.r.read_bits(64) as i64;
            let v = match self.mode {
                ValueMode::DecimalInt { scale } => {
                    self.prev_m = read_varbit(&mut self.r);
                    self.prev_m as f64 / SCALES[scale as usize]
                }
                ValueMode::XorFloat => {
                    self.prev_bits = self.r.read_bits(64);
                    f64::from_bits(self.prev_bits)
                }
            };
            return Some((self.prev_t, v));
        }
        self.prev_delta += read_varbit(&mut self.r);
        self.prev_t += self.prev_delta;
        let v = match self.mode {
            ValueMode::DecimalInt { scale } => {
                self.prev_m += read_varbit(&mut self.r);
                self.prev_m as f64 / SCALES[scale as usize]
            }
            ValueMode::XorFloat => {
                if self.r.read_bit() {
                    if self.r.read_bit() {
                        let leading = self.r.read_bits(5) as u32;
                        let meaningful = self.r.read_bits(6) as u32 + 1;
                        self.window = (leading, meaningful);
                        let xor = self.r.read_bits(meaningful) << (64 - leading - meaningful);
                        self.prev_bits ^= xor;
                    } else {
                        let (leading, meaningful) = self.window;
                        let xor = self.r.read_bits(meaningful) << (64 - leading - meaningful);
                        self.prev_bits ^= xor;
                    }
                }
                f64::from_bits(self.prev_bits)
            }
        };
        Some((self.prev_t, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(points: &[(i64, f64)]) {
        let bytes = encode_block(points);
        let got: Vec<(i64, u64)> = BlockIter::new(&bytes, points.len() as u32)
            .map(|(t, v)| (t, v.to_bits()))
            .collect();
        let want: Vec<(i64, u64)> = points.iter().map(|&(t, v)| (t, v.to_bits())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bit_io_round_trips() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(u64::MAX, 64);
        w.push_bits(0, 1);
        w.push_bits(0x1234_5678_9abc_def0, 61);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(64), u64::MAX);
        assert!(!r.read_bit());
        assert_eq!(r.read_bits(61), 0x1234_5678_9abc_def0 & ((1 << 61) - 1));
    }

    #[test]
    fn varbit_covers_all_magnitudes() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            255,
            -256,
            2047,
            -2048,
            1 << 30,
            -(1 << 30),
            i64::MAX,
            i64::MIN + 1,
            i64::MIN,
        ] {
            let mut w = BitWriter::new();
            write_varbit(&mut w, v);
            let bytes = w.finish();
            assert_eq!(read_varbit(&mut BitReader::new(&bytes)), v, "{v}");
        }
    }

    #[test]
    fn decimal_block_round_trips_and_compresses() {
        // Centi-degree temperatures at a regular cadence: the common case.
        let points: Vec<(i64, f64)> = (0..1000)
            .map(|i| (i * 60_000, (2000 + (i % 37) - 18) as f64 / 100.0))
            .collect();
        round_trip(&points);
        let bytes = encode_block(&points);
        let ratio = (points.len() * 16) as f64 / bytes.len() as f64;
        assert!(ratio > 8.0, "decimal ratio only {ratio:.1}x");
    }

    #[test]
    fn xor_block_round_trips_noise() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let points: Vec<(i64, f64)> = (0..500)
            .map(|i| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (i * 977 - 100_000, f64::from_bits(x >> 12) * 1e3)
            })
            .collect();
        round_trip(&points);
    }

    #[test]
    fn nan_negative_zero_and_single_point_round_trip() {
        round_trip(&[(42, f64::NAN)]);
        round_trip(&[(0, -0.0), (1, 0.0), (2, f64::INFINITY)]);
        round_trip(&[(i64::MIN / 2, 1.5)]);
        round_trip(&[(-10, f64::from_bits(0x7ff8_dead_beef_0001)), (-9, 2.0)]);
        round_trip(&[]);
    }

    #[test]
    fn negative_zero_takes_the_xor_path() {
        assert_eq!(detect_decimal_scale(&[(0, -0.0)]), None);
        assert_eq!(detect_decimal_scale(&[(0, std::f64::consts::PI)]), None);
        // 1.25 is exactly 125/100, so it may take the decimal path.
        assert_eq!(detect_decimal_scale(&[(0, 1.25)]), Some(2));
        assert_eq!(detect_decimal_scale(&[(0, 20.01)]), Some(2));
        assert_eq!(detect_decimal_scale(&[(0, 7.0)]), Some(0));
    }
}
