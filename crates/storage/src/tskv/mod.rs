//! The time-series store backing every Device-proxy's local database.
//!
//! Series are keyed by free-form strings (by convention
//! `<device>:<quantity>`); points are `(unix-millis, f64)` pairs. The
//! store is an LSM-lite engine behind the same facade the flat
//! `BTreeMap` version exposed:
//!
//! * a **mutable head** per series (a `BTreeMap`, so inserts keep the
//!   same last-writer-wins overwrite semantics),
//! * **immutable sealed segments** — time-partitioned runs compressed
//!   with Gorilla-style delta-of-delta timestamps plus either
//!   decimal-integer deltas (the common case for quantized device
//!   telemetry) or XOR float encoding (see [`gorilla`](self)),
//! * **compaction** that merges a partition's segments into a single
//!   owner and materializes rollup levels serving `downsample_counted`
//!   without decoding,
//! * a **write-ahead log + snapshot** providing crash recovery: every
//!   insert is logged before it is acknowledged, and
//!   [`TimeSeriesStore::crash_recover`] (called from a node's
//!   `on_restart`) restores the snapshot and replays the WAL tail, so a
//!   crash loses no acknowledged point.
//!
//! Queries ([`TimeSeriesStore::range`], `latest`, `downsample*`) merge
//! the head with any overlapping segments; duplicate timestamps resolve
//! head-first, then newest seal. Maintenance (sealing cold partitions,
//! compaction, checkpointing) runs from
//! [`TimeSeriesStore::maintain`] — typically on a node timer — and
//! bounded amounts happen inline on insert so an unmaintained store
//! still keeps its head and WAL small.

mod gorilla;
mod scan;
mod segment;
mod wal;

use std::collections::BTreeMap;

use telemetry::Registry;

use self::gorilla::{encode_block, BlockIter};
use self::scan::MergeScan;
use self::segment::{materialize, Segment};
use self::wal::{Snapshot, Wal, WalOp};

/// How a downsampling bucket combines its points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Aggregate {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Number of points.
    Count,
    /// The chronologically last point.
    Last,
}

impl Aggregate {
    /// The lowercase name used in query strings.
    pub fn as_str(self) -> &'static str {
        match self {
            Aggregate::Mean => "mean",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::Sum => "sum",
            Aggregate::Count => "count",
            Aggregate::Last => "last",
        }
    }

    /// Parses a name produced by [`Aggregate::as_str`]. Matching is
    /// exact (lowercase only), and a direct string match so the query
    /// path does no scanning.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "mean" => Aggregate::Mean,
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            "sum" => Aggregate::Sum,
            "count" => Aggregate::Count,
            "last" => Aggregate::Last,
            _ => return None,
        })
    }

    /// Finishes a streamed bucket accumulation.
    #[inline]
    fn finish(self, count: u64, sum: f64, min: f64, max: f64, last: f64) -> f64 {
        match self {
            Aggregate::Mean => sum / count as f64,
            Aggregate::Min => min,
            Aggregate::Max => max,
            Aggregate::Sum => sum,
            Aggregate::Count => count as f64,
            Aggregate::Last => last,
        }
    }
}

/// One downsampling bucket: the aggregate value plus how many raw
/// points produced it (see [`TimeSeriesStore::downsample_counted`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start (unix millis, aligned to the query's `from`).
    pub start: i64,
    /// The aggregated value.
    pub value: f64,
    /// How many raw points fell into this bucket.
    pub count: u64,
}

/// Engine tuning knobs; the defaults suit district telemetry (points
/// every few seconds to minutes per series).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TskvConfig {
    /// Segment time-partition width. Sealed segments never cross a
    /// partition boundary; compaction owns whole partitions.
    pub partition_millis: i64,
    /// Head size (points per series) that triggers an inline seal of
    /// complete partitions on insert.
    pub seal_threshold: usize,
    /// WAL length that triggers an inline checkpoint (snapshot + WAL
    /// truncation) on insert.
    pub wal_checkpoint_records: usize,
    /// Rollup bucket widths materialized at compaction; each must
    /// divide `partition_millis`.
    pub rollup_levels: Vec<i64>,
}

impl Default for TskvConfig {
    fn default() -> Self {
        TskvConfig {
            // A day per segment: ~1.4k points at the scenario's 60 s
            // cadence, enough to amortize the block header and keep
            // scans streaming instead of hopping tiny segments.
            partition_millis: 86_400_000,
            seal_threshold: 512,
            wal_checkpoint_records: 8192,
            rollup_levels: vec![300_000, 3_600_000],
        }
    }
}

impl TskvConfig {
    fn validate(&self) {
        assert!(self.partition_millis > 0, "partition must be positive");
        assert!(self.seal_threshold >= 2, "seal threshold must be >= 2");
        assert!(
            self.wal_checkpoint_records >= 1,
            "checkpoint threshold must be >= 1"
        );
        for &level in &self.rollup_levels {
            assert!(
                level > 0 && self.partition_millis % level == 0,
                "rollup level {level} must divide the partition"
            );
        }
    }
}

/// A point-in-time view of the engine's physical state (see
/// [`TimeSeriesStore::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TskvStats {
    /// Points currently in mutable heads.
    pub head_points: usize,
    /// Points held in sealed segments (pre-merge, per segment).
    pub sealed_points: u64,
    /// Number of sealed segments.
    pub segments: usize,
    /// Flat-representation size of the sealed points (16 bytes each).
    pub bytes_raw: u64,
    /// Encoded size of all sealed segments.
    pub bytes_compressed: u64,
    /// Live (untruncated) WAL records.
    pub wal_records: usize,
    /// Lifetime seal operations.
    pub seals: u64,
    /// Lifetime partition compactions.
    pub compactions: u64,
    /// Lifetime WAL records replayed by crash recovery.
    pub wal_replayed: u64,
}

/// What one [`TimeSeriesStore::maintain`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// Segments sealed from cold head partitions.
    pub sealed: usize,
    /// Partitions compacted (merged and/or rollups materialized).
    pub compacted: usize,
    /// Whether a checkpoint (snapshot + WAL truncate) ran.
    pub checkpointed: bool,
}

/// One series' storage: the mutable head plus sealed segments sorted
/// by `(min_t, seq)`.
#[derive(Debug, Clone, Default)]
struct Series {
    head: BTreeMap<i64, f64>,
    segments: Vec<Segment>,
}

/// When an inline/maintenance seal takes a head partition.
#[derive(Clone, Copy)]
enum SealMode {
    /// Complete (non-hot) partitions only.
    Cold,
    /// Everything, including the hot partition.
    All,
    /// Complete partitions, plus the hot one if it alone reached the
    /// threshold.
    Auto { threshold: usize },
}

/// A per-series, in-memory time-series database with compressed sealed
/// segments and WAL-based crash recovery.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesStore {
    config: TskvConfig,
    series: BTreeMap<String, Series>,
    wal: Wal,
    snapshot: Snapshot,
    next_seq: u64,
    seals: u64,
    compactions: u64,
    wal_replayed: u64,
    /// Optional metrics sink (see [`TimeSeriesStore::attach_metrics`]).
    metrics: Option<Registry>,
}

impl PartialEq for TimeSeriesStore {
    fn eq(&self, other: &Self) -> bool {
        // Logical contents only: physical layout (sealed vs head) and
        // the metrics sink are invisible to equality.
        self.series.len() == other.series.len()
            && self
                .series
                .iter()
                .zip(other.series.iter())
                .all(|((an, a), (bn, b))| an == bn && scan_all(a).eq(scan_all(b)))
    }
}

fn scan_all(s: &Series) -> MergeScan<'_> {
    MergeScan::new(&s.head, &s.segments, i64::MIN, None)
}

impl TimeSeriesStore {
    /// Creates an empty store with default tuning.
    pub fn new() -> Self {
        TimeSeriesStore::default()
    }

    /// Creates an empty store with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (non-positive
    /// partition, rollup level not dividing the partition, ...).
    pub fn with_config(config: TskvConfig) -> Self {
        config.validate();
        TimeSeriesStore {
            config,
            ..TimeSeriesStore::default()
        }
    }

    /// Attaches a metrics registry; the store then counts appends and
    /// scans (`tskv.append`, `tskv.scan`), sizes result sets
    /// (`tskv.scan_points`), counts engine events (`tskv.seals`,
    /// `tskv.compactions`, `tskv.wal_truncated`, `tskv.wal_replayed`)
    /// and gauges physical state (`tskv.segments`, `tskv.bytes_raw`,
    /// `tskv.bytes_compressed`, `tskv.wal_records`).
    pub fn attach_metrics(&mut self, metrics: Registry) {
        self.metrics = Some(metrics);
    }

    /// Inserts a point; a point at the same timestamp is overwritten
    /// (last-writer-wins, matching sensor re-transmissions). The point
    /// is WAL-logged before it reaches the head, so once `insert`
    /// returns it survives [`TimeSeriesStore::crash_recover`].
    pub fn insert(&mut self, series: &str, timestamp_millis: i64, value: f64) {
        self.wal.append_insert(series, timestamp_millis, value);
        let threshold = self.config.seal_threshold;
        let partition = self.config.partition_millis;
        let entry = self.series.entry(series.to_owned()).or_default();
        entry.head.insert(timestamp_millis, value);
        if entry.head.len() >= threshold {
            let sealed = seal_head(
                entry,
                &mut self.next_seq,
                partition,
                SealMode::Auto { threshold },
            );
            self.note_seals(sealed);
        }
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.append");
        }
        if self.wal.len() >= self.config.wal_checkpoint_records {
            self.checkpoint();
        }
    }

    /// Number of distinct points in `series` (0 for unknown series).
    pub fn series_len(&self, series: &str) -> usize {
        self.series.get(series).map_or(0, |s| {
            if s.segments.is_empty() {
                s.head.len()
            } else {
                scan_all(s).count()
            }
        })
    }

    /// Total number of distinct points across all series.
    pub fn len(&self) -> usize {
        self.series
            .values()
            .map(|s| {
                if s.segments.is_empty() {
                    s.head.len()
                } else {
                    scan_all(s).count()
                }
            })
            .sum()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        // Invariant: a series entry always holds at least one point.
        self.series.is_empty()
    }

    /// The names of all series, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The chronologically last point of a series.
    pub fn latest(&self, series: &str) -> Option<(i64, f64)> {
        let s = self.series.get(series)?;
        let mut best: Option<(i64, f64, u64)> =
            s.head.iter().next_back().map(|(&t, &v)| (t, v, u64::MAX));
        for seg in &s.segments {
            let newer = match best {
                None => true,
                Some((bt, _, bp)) => seg.max_t > bt || (seg.max_t == bt && seg.seq > bp),
            };
            if newer {
                best = Some((seg.max_t, seg.last_v, seg.seq));
            }
        }
        best.map(|(t, v, _)| (t, v))
    }

    /// All points with `from <= t < to`, in chronological order.
    pub fn range(&self, series: &str, from: i64, to: i64) -> Vec<(i64, f64)> {
        let mut out = Vec::new();
        if from < to {
            if let Some(s) = self.series.get(series) {
                MergeScan::new(&s.head, &s.segments, from, Some(to))
                    .for_each(|t, v| out.push((t, v)));
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.scan");
            metrics.observe("tskv.scan_points", out.len() as f64);
        }
        out
    }

    /// Streams every point with `from <= t < to` through `f` in
    /// chronological order, without materializing a `Vec` — the
    /// allocation-free sibling of [`TimeSeriesStore::range`].
    pub fn for_each_in(&self, series: &str, from: i64, to: i64, mut f: impl FnMut(i64, f64)) {
        let mut n = 0u64;
        if from < to {
            if let Some(s) = self.series.get(series) {
                MergeScan::new(&s.head, &s.segments, from, Some(to)).for_each(|t, v| {
                    n += 1;
                    f(t, v);
                });
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.scan");
            metrics.observe("tskv.scan_points", n as f64);
        }
    }

    /// Bucketed aggregates over `[from, to)` with buckets of
    /// `bucket_millis`, labelled by bucket start. Empty buckets are
    /// omitted.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_millis` is not positive.
    pub fn downsample(
        &self,
        series: &str,
        from: i64,
        to: i64,
        bucket_millis: i64,
        aggregate: Aggregate,
    ) -> Vec<(i64, f64)> {
        self.downsample_counted(series, from, to, bucket_millis, aggregate)
            .into_iter()
            .map(|b| (b.start, b.value))
            .collect()
    }

    /// Like [`TimeSeriesStore::downsample`], but each bucket also
    /// carries its raw sample count, so higher aggregation tiers can
    /// re-combine buckets with correct weights (a count-weighted mean
    /// of bucket means equals the mean over the raw points, instead of
    /// an average of averages).
    ///
    /// Buckets are folded in one streaming pass (no per-bucket
    /// allocation). When `from` is bucket-aligned and a compacted
    /// segment owns an uncontested stretch of the query with a
    /// materialized level of this width, its precomputed buckets are
    /// served directly without decoding the segment.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_millis` is not positive.
    pub fn downsample_counted(
        &self,
        series: &str,
        from: i64,
        to: i64,
        bucket_millis: i64,
        aggregate: Aggregate,
    ) -> Vec<Bucket> {
        assert!(bucket_millis > 0, "bucket size must be positive");
        let mut out = Vec::new();
        let mut scanned = 0u64;
        if from < to {
            if let Some(s) = self.series.get(series) {
                let spans = if from.rem_euclid(bucket_millis) == 0 {
                    eligible_spans(s, from, to, bucket_millis)
                } else {
                    Vec::new()
                };
                let mut cursor = from;
                for (ps, pe, seg_idx, level_idx) in spans {
                    fold_buckets(
                        s,
                        cursor,
                        ps,
                        from,
                        bucket_millis,
                        aggregate,
                        &mut out,
                        &mut scanned,
                    );
                    for b in &s.segments[seg_idx].levels[level_idx].buckets {
                        out.push(Bucket {
                            start: b.start,
                            value: aggregate.finish(b.count, b.sum, b.min, b.max, b.last),
                            count: b.count,
                        });
                        scanned += b.count;
                    }
                    cursor = pe;
                }
                fold_buckets(
                    s,
                    cursor,
                    to,
                    from,
                    bucket_millis,
                    aggregate,
                    &mut out,
                    &mut scanned,
                );
            }
        }
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.scan");
            metrics.observe("tskv.scan_points", scanned as f64);
        }
        out
    }

    /// Drops every point strictly older than `horizon_millis` across all
    /// series; returns how many points were removed. Empty series are
    /// pruned. Partially-expired segments are rewritten (they lose
    /// their compacted status until the next maintenance pass).
    pub fn apply_retention(&mut self, horizon_millis: i64) -> usize {
        let mut removed = 0usize;
        for s in self.series.values() {
            removed += MergeScan::new(&s.head, &s.segments, i64::MIN, Some(horizon_millis)).count();
        }
        if removed == 0 {
            return 0;
        }
        self.wal.append_retention(horizon_millis);
        for s in self.series.values_mut() {
            let keep = s.head.split_off(&horizon_millis);
            s.head = keep;
            let old = std::mem::take(&mut s.segments);
            for seg in old {
                if seg.min_t >= horizon_millis {
                    s.segments.push(seg);
                } else if seg.max_t >= horizon_millis {
                    let pts: Vec<(i64, f64)> =
                        seg.iter().filter(|&(t, _)| t >= horizon_millis).collect();
                    s.segments.push(Segment::seal(&pts, seg.seq));
                }
            }
        }
        self.series
            .retain(|_, s| !(s.head.is_empty() && s.segments.is_empty()));
        self.update_gauges();
        removed
    }

    /// Removes a whole series; returns how many points it held.
    pub fn drop_series(&mut self, series: &str) -> usize {
        let Some(s) = self.series.get(series) else {
            return 0;
        };
        let n = scan_all(s).count();
        self.wal.append_drop(series);
        self.series.remove(series);
        n
    }

    /// Seals every head partition — including hot ones — into segments.
    /// Queries are unaffected; used before measuring compression and by
    /// tests.
    pub fn seal_all(&mut self) {
        let partition = self.config.partition_millis;
        let mut sealed = 0;
        for s in self.series.values_mut() {
            sealed += seal_head(s, &mut self.next_seq, partition, SealMode::All);
        }
        self.note_seals(sealed);
        self.update_gauges();
    }

    /// One maintenance pass: seals complete (cold) head partitions,
    /// compacts partitions with multiple or un-materialized segments,
    /// and checkpoints when the WAL is long enough. Intended to run
    /// from a periodic node timer.
    pub fn maintain(&mut self) -> MaintenanceReport {
        let partition = self.config.partition_millis;
        let levels = std::mem::take(&mut self.config.rollup_levels);
        let mut report = MaintenanceReport::default();
        for s in self.series.values_mut() {
            report.sealed += seal_head(s, &mut self.next_seq, partition, SealMode::Cold);
            report.compacted += compact_series(s, partition, &levels);
        }
        self.config.rollup_levels = levels;
        self.note_seals(report.sealed);
        if report.compacted > 0 {
            self.compactions += report.compacted as u64;
            if let Some(metrics) = &self.metrics {
                metrics.add("tskv.compactions", report.compacted as u64);
            }
        }
        if self.wal.len() >= self.config.wal_checkpoint_records {
            self.checkpoint();
            report.checkpointed = true;
        }
        self.update_gauges();
        report
    }

    /// Takes a snapshot of the mutable heads and truncates the WAL
    /// through it. After a checkpoint, recovery replays only the
    /// records since.
    pub fn checkpoint(&mut self) {
        self.write_snapshot();
        self.wal.truncate_through(self.snapshot.upto_seq);
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.wal_truncated");
        }
        self.update_gauges();
    }

    /// Test hook: a *torn* checkpoint — snapshot written, crash before
    /// the WAL truncate. Recovery must be byte-identical anyway,
    /// because replaying already-snapshotted records is idempotent.
    #[doc(hidden)]
    pub fn debug_snapshot_without_truncate(&mut self) {
        self.write_snapshot();
    }

    /// Simulates the volatile-state loss of a node crash and recovers:
    /// drops every mutable head, restores the last snapshot, and
    /// replays the WAL tail in order. Returns the number of WAL
    /// records replayed. Call from a node's `on_restart` hook.
    pub fn crash_recover(&mut self) -> u64 {
        for s in self.series.values_mut() {
            s.head.clear();
        }
        self.series.retain(|_, s| !s.segments.is_empty());
        for (name, count, bytes) in &self.snapshot.blocks {
            let s = self.series.entry(name.clone()).or_default();
            for (t, v) in BlockIter::new(bytes, *count) {
                s.head.insert(t, v);
            }
        }
        let mut replayed = 0u64;
        let TimeSeriesStore {
            wal,
            snapshot,
            series,
            ..
        } = self;
        for rec in wal.records_after(snapshot.upto_seq) {
            replayed += 1;
            match rec.op {
                WalOp::Insert { series: id, t, v } => {
                    let name = wal.name(id);
                    if let Some(s) = series.get_mut(name) {
                        s.head.insert(t, v);
                    } else {
                        series.entry(name.to_owned()).or_default().head.insert(t, v);
                    }
                }
                WalOp::DropSeries { series: id } => {
                    series.remove(wal.name(id));
                }
                WalOp::Retention { horizon } => {
                    for s in series.values_mut() {
                        let keep = s.head.split_off(&horizon);
                        s.head = keep;
                    }
                    series.retain(|_, s| !(s.head.is_empty() && s.segments.is_empty()));
                }
            }
        }
        self.series
            .retain(|_, s| !(s.head.is_empty() && s.segments.is_empty()));
        self.wal_replayed += replayed;
        if let Some(metrics) = &self.metrics {
            metrics.add("tskv.wal_replayed", replayed);
        }
        self.update_gauges();
        replayed
    }

    /// The engine's current physical state.
    pub fn stats(&self) -> TskvStats {
        let mut st = TskvStats {
            wal_records: self.wal.len(),
            seals: self.seals,
            compactions: self.compactions,
            wal_replayed: self.wal_replayed,
            ..TskvStats::default()
        };
        for s in self.series.values() {
            st.head_points += s.head.len();
            st.segments += s.segments.len();
            for seg in &s.segments {
                st.sealed_points += u64::from(seg.count);
                st.bytes_compressed += seg.bytes.len() as u64;
            }
        }
        st.bytes_raw = 16 * st.sealed_points;
        st
    }

    fn note_seals(&mut self, sealed: usize) {
        if sealed > 0 {
            self.seals += sealed as u64;
            if let Some(metrics) = &self.metrics {
                metrics.add("tskv.seals", sealed as u64);
            }
        }
    }

    fn write_snapshot(&mut self) {
        let mut blocks = Vec::new();
        for (name, s) in &self.series {
            if s.head.is_empty() {
                continue;
            }
            let pts: Vec<(i64, f64)> = s.head.iter().map(|(&t, &v)| (t, v)).collect();
            blocks.push((name.clone(), pts.len() as u32, encode_block(&pts)));
        }
        self.snapshot = Snapshot {
            upto_seq: self.wal.last_seq(),
            blocks,
        };
    }

    fn update_gauges(&self) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        let st = self.stats();
        metrics.set_gauge("tskv.segments", st.segments as f64);
        metrics.set_gauge("tskv.bytes_raw", st.bytes_raw as f64);
        metrics.set_gauge("tskv.bytes_compressed", st.bytes_compressed as f64);
        metrics.set_gauge("tskv.wal_records", st.wal_records as f64);
    }
}

/// Seals head partitions of one series per `mode`; returns how many
/// segments were created.
fn seal_head(s: &mut Series, next_seq: &mut u64, partition_millis: i64, mode: SealMode) -> usize {
    if s.head.is_empty() {
        return 0;
    }
    let hot = s
        .head
        .keys()
        .next_back()
        .map(|&t| t.div_euclid(partition_millis))
        .expect("non-empty head");
    let mut groups: Vec<(i64, Vec<(i64, f64)>)> = Vec::new();
    for (&t, &v) in &s.head {
        let pid = t.div_euclid(partition_millis);
        match groups.last_mut() {
            Some((gp, pts)) if *gp == pid => pts.push((t, v)),
            _ => groups.push((pid, vec![(t, v)])),
        }
    }
    let mut sealed = 0;
    for (pid, pts) in groups {
        let take = match mode {
            SealMode::Cold => pid < hot,
            SealMode::All => true,
            SealMode::Auto { threshold } => pid < hot || pts.len() >= threshold,
        };
        if !take {
            continue;
        }
        for &(t, _) in &pts {
            s.head.remove(&t);
        }
        *next_seq += 1;
        s.segments.push(Segment::seal(&pts, *next_seq));
        sealed += 1;
    }
    if sealed > 0 {
        s.segments.sort_by_key(|seg| (seg.min_t, seg.seq));
    }
    sealed
}

/// Compacts one series: every partition holding several segments (or a
/// lone segment that never got its rollups) is merged into a single
/// compacted owner with materialized levels. Returns the number of
/// partitions compacted.
fn compact_series(s: &mut Series, partition_millis: i64, levels: &[i64]) -> usize {
    if s.segments.is_empty() {
        return 0;
    }
    let segs = std::mem::take(&mut s.segments);
    let mut compacted = 0;
    let mut i = 0;
    while i < segs.len() {
        let pid = segs[i].min_t.div_euclid(partition_millis);
        let mut j = i + 1;
        // Segments never cross partitions and are sorted by min_t, so a
        // partition's segments are contiguous.
        while j < segs.len() && segs[j].min_t.div_euclid(partition_millis) == pid {
            j += 1;
        }
        let group = &segs[i..j];
        let span = pid
            .checked_mul(partition_millis)
            .and_then(|lo| lo.checked_add(partition_millis).map(|hi| (lo, hi)));
        let needs = match span {
            Some(_) => group.len() >= 2 || group[0].span.is_none(),
            // Partition bounds overflow i64 (extreme timestamps): only
            // merge multi-segment groups, without claiming a span.
            None => group.len() >= 2,
        };
        if !needs {
            s.segments.push(group[0].clone());
            i = j;
            continue;
        }
        let seq = group
            .iter()
            .map(|seg| seg.seq)
            .max()
            .expect("non-empty group");
        let empty = BTreeMap::new();
        let points: Vec<(i64, f64)> = MergeScan::new(&empty, group, i64::MIN, None).collect();
        let merged = match span {
            Some(span) if group.len() == 1 => {
                // Same point set: reuse the encoded bytes, add rollups.
                let mut seg = group[0].clone();
                seg.span = Some(span);
                seg.levels = materialize(&points, levels);
                seg
            }
            Some(span) => Segment::seal_compacted(&points, seq, span, levels),
            None => Segment::seal(&points, seq),
        };
        s.segments.push(merged);
        compacted += 1;
        i = j;
    }
    s.segments.sort_by_key(|seg| (seg.min_t, seg.seq));
    compacted
}

/// Stretches of `[from, to)` that a compacted segment can answer from
/// its materialized `bucket` level: the segment's span lies inside the
/// query, nothing else (head or other segments) holds points there.
/// Returns disjoint `(start, end, segment index, level index)` tuples
/// sorted by start. Caller guarantees `from` is bucket-aligned.
fn eligible_spans(s: &Series, from: i64, to: i64, bucket: i64) -> Vec<(i64, i64, usize, usize)> {
    let mut spans = Vec::new();
    for (i, seg) in s.segments.iter().enumerate() {
        let Some((ps, pe)) = seg.span else { continue };
        if ps < from || pe > to {
            continue;
        }
        let Some(li) = seg.levels.iter().position(|l| l.bucket_millis == bucket) else {
            continue;
        };
        if s.head.range(ps..pe).next().is_some() {
            continue;
        }
        if s.segments
            .iter()
            .enumerate()
            .any(|(j, o)| j != i && o.overlaps(ps, pe))
        {
            continue;
        }
        spans.push((ps, pe, i, li));
    }
    spans.sort_by_key(|&(ps, ..)| ps);
    spans
}

/// Folds the raw points of `[a, b)` into buckets aligned to the query's
/// `from`, streaming (one accumulator, no per-bucket allocation).
#[allow(clippy::too_many_arguments)]
fn fold_buckets(
    s: &Series,
    a: i64,
    b: i64,
    from: i64,
    bucket: i64,
    aggregate: Aggregate,
    out: &mut Vec<Bucket>,
    scanned: &mut u64,
) {
    if a >= b {
        return;
    }
    struct Acc {
        start: i64,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        last: f64,
    }
    let mut acc: Option<Acc> = None;
    for (t, v) in MergeScan::new(&s.head, &s.segments, a, Some(b)) {
        *scanned += 1;
        let start = from + (t - from).div_euclid(bucket) * bucket;
        match &mut acc {
            Some(acc) if acc.start == start => {
                acc.count += 1;
                acc.sum += v;
                acc.min = acc.min.min(v);
                acc.max = acc.max.max(v);
                acc.last = v;
            }
            _ => {
                if let Some(acc) = acc.take() {
                    out.push(Bucket {
                        start: acc.start,
                        value: aggregate.finish(acc.count, acc.sum, acc.min, acc.max, acc.last),
                        count: acc.count,
                    });
                }
                acc = Some(Acc {
                    start,
                    count: 1,
                    sum: v,
                    min: f64::INFINITY.min(v),
                    max: f64::NEG_INFINITY.max(v),
                    last: v,
                });
            }
        }
    }
    if let Some(acc) = acc {
        out.push(Bucket {
            start: acc.start,
            value: aggregate.finish(acc.count, acc.sum, acc.min, acc.max, acc.last),
            count: acc.count,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(points: &[(i64, f64)]) -> TimeSeriesStore {
        let mut s = TimeSeriesStore::new();
        for &(t, v) in points {
            s.insert("s", t, v);
        }
        s
    }

    #[test]
    fn insert_and_range() {
        let s = store_with(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert_eq!(s.range("s", 10, 30), vec![(10, 1.0), (20, 2.0)]);
        assert_eq!(s.range("s", 0, 100).len(), 3);
        assert!(s.range("s", 30, 10).is_empty(), "inverted range is empty");
        assert!(s.range("missing", 0, 100).is_empty());
    }

    #[test]
    fn range_bounds_are_half_open() {
        let s = store_with(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.range("s", 10, 20), vec![(10, 1.0)]);
    }

    #[test]
    fn same_timestamp_overwrites() {
        let s = store_with(&[(10, 1.0), (10, 9.0)]);
        assert_eq!(s.series_len("s"), 1);
        assert_eq!(s.latest("s"), Some((10, 9.0)));
    }

    #[test]
    fn latest_is_chronological_max() {
        let s = store_with(&[(30, 3.0), (10, 1.0), (20, 2.0)]);
        assert_eq!(s.latest("s"), Some((30, 3.0)));
        assert_eq!(s.latest("missing"), None);
    }

    #[test]
    fn counts_and_names() {
        let mut s = store_with(&[(1, 1.0)]);
        s.insert("other", 5, 5.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.series_names().collect::<Vec<_>>(), vec!["other", "s"]);
    }

    #[test]
    fn downsample_mean() {
        // Two 10 ms buckets: [0,10) -> 1,3 mean 2; [10,20) -> 5 mean 5.
        let s = store_with(&[(0, 1.0), (5, 3.0), (12, 5.0)]);
        assert_eq!(
            s.downsample("s", 0, 20, 10, Aggregate::Mean),
            vec![(0, 2.0), (10, 5.0)]
        );
    }

    #[test]
    fn downsample_all_aggregates() {
        let s = store_with(&[(0, 1.0), (1, 4.0), (2, 2.0)]);
        let one = |a| s.downsample("s", 0, 10, 10, a);
        assert_eq!(one(Aggregate::Mean), vec![(0, 7.0 / 3.0)]);
        assert_eq!(one(Aggregate::Min), vec![(0, 1.0)]);
        assert_eq!(one(Aggregate::Max), vec![(0, 4.0)]);
        assert_eq!(one(Aggregate::Sum), vec![(0, 7.0)]);
        assert_eq!(one(Aggregate::Count), vec![(0, 3.0)]);
        assert_eq!(one(Aggregate::Last), vec![(0, 2.0)]);
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        let s = store_with(&[(0, 1.0), (35, 2.0)]);
        assert_eq!(
            s.downsample("s", 0, 40, 10, Aggregate::Mean),
            vec![(0, 1.0), (30, 2.0)]
        );
    }

    #[test]
    fn downsample_buckets_align_to_from() {
        let s = store_with(&[(7, 1.0), (13, 3.0)]);
        // from=5, bucket 10: buckets [5,15) containing both.
        assert_eq!(
            s.downsample("s", 5, 25, 10, Aggregate::Count),
            vec![(5, 2.0)]
        );
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn downsample_rejects_zero_bucket() {
        TimeSeriesStore::new().downsample("s", 0, 10, 0, Aggregate::Mean);
    }

    #[test]
    fn downsample_counted_carries_sample_counts() {
        let s = store_with(&[(0, 1.0), (5, 3.0), (12, 5.0)]);
        assert_eq!(
            s.downsample_counted("s", 0, 20, 10, Aggregate::Mean),
            vec![
                Bucket {
                    start: 0,
                    value: 2.0,
                    count: 2
                },
                Bucket {
                    start: 10,
                    value: 5.0,
                    count: 1
                },
            ]
        );
        // The plain API is exactly the counted one minus the counts.
        for a in [Aggregate::Mean, Aggregate::Sum, Aggregate::Last] {
            let plain = s.downsample("s", 0, 20, 10, a);
            let counted: Vec<(i64, f64)> = s
                .downsample_counted("s", 0, 20, 10, a)
                .into_iter()
                .map(|b| (b.start, b.value))
                .collect();
            assert_eq!(plain, counted);
        }
    }

    #[test]
    fn counted_buckets_make_mean_of_means_exact() {
        // Buckets with unequal populations: the naive average of bucket
        // means is wrong, the count-weighted one matches the raw mean.
        let s = store_with(&[(0, 1.0), (2, 2.0), (4, 3.0), (12, 10.0)]);
        let buckets = s.downsample_counted("s", 0, 20, 10, Aggregate::Mean);
        let naive = buckets.iter().map(|b| b.value).sum::<f64>() / buckets.len() as f64;
        let weighted_sum: f64 = buckets.iter().map(|b| b.value * b.count as f64).sum();
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        let weighted = weighted_sum / total as f64;
        assert_eq!(weighted, 4.0, "raw mean of 1,2,3,10");
        assert!((naive - 6.0).abs() < 1e-12, "mean of means is biased");
    }

    #[test]
    fn retention_drops_old_points() {
        let mut s = store_with(&[(0, 1.0), (10, 2.0), (20, 3.0)]);
        s.insert("fresh", 100, 1.0);
        let removed = s.apply_retention(10);
        assert_eq!(removed, 1);
        assert_eq!(s.range("s", 0, 100), vec![(10, 2.0), (20, 3.0)]);
        // Retention that empties a series prunes it entirely.
        let removed = s.apply_retention(1_000);
        assert_eq!(removed, 3);
        assert_eq!(s.series_names().count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn drop_series_reports_size() {
        let mut s = store_with(&[(0, 1.0), (1, 2.0)]);
        assert_eq!(s.drop_series("s"), 2);
        assert_eq!(s.drop_series("s"), 0);
    }

    #[test]
    fn aggregate_names_round_trip() {
        for a in [
            Aggregate::Mean,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Sum,
            Aggregate::Count,
            Aggregate::Last,
        ] {
            assert_eq!(Aggregate::parse(a.as_str()), Some(a));
        }
        assert_eq!(Aggregate::parse("median"), None);
        // Parsing is exact: mixed or upper case is rejected.
        for bad in [
            "Mean", "MEAN", "mEaN", "MIN", "Max", "SUM", "Count", "LAST", "", " mean",
        ] {
            assert_eq!(Aggregate::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn attached_metrics_count_appends_and_scans() {
        let mut s = TimeSeriesStore::new();
        let registry = Registry::new();
        s.attach_metrics(registry.clone());
        s.insert("s", 1, 1.0);
        s.insert("s", 2, 2.0);
        assert_eq!(s.range("s", 0, 10).len(), 2);
        assert_eq!(registry.counter("tskv.append"), 2);
        assert_eq!(registry.counter("tskv.scan"), 1);
        assert_eq!(registry.histogram("tskv.scan_points").unwrap().count, 1);
        // Metrics plumbing is invisible to equality.
        let mut bare = TimeSeriesStore::new();
        bare.insert("s", 1, 1.0);
        bare.insert("s", 2, 2.0);
        assert_eq!(s, bare);
    }

    #[test]
    fn negative_timestamps_supported() {
        let s = store_with(&[(-20, 1.0), (-10, 2.0), (0, 3.0)]);
        assert_eq!(s.range("s", -20, 0), vec![(-20, 1.0), (-10, 2.0)]);
        assert_eq!(
            s.downsample("s", -20, 0, 10, Aggregate::Count),
            vec![(-20, 1.0), (-10, 1.0)]
        );
    }

    // ---- engine behavior (sealing, compaction, WAL recovery) ----

    fn small_config() -> TskvConfig {
        TskvConfig {
            partition_millis: 100,
            seal_threshold: 8,
            wal_checkpoint_records: 1_000_000,
            rollup_levels: vec![10, 50],
        }
    }

    #[test]
    fn sealing_is_invisible_to_queries() {
        let points: Vec<(i64, f64)> = (0..300).map(|i| (i * 7 - 500, (i % 23) as f64)).collect();
        let mut sealed = TimeSeriesStore::with_config(small_config());
        let mut flat = TimeSeriesStore::new();
        for &(t, v) in &points {
            sealed.insert("s", t, v);
            flat.insert("s", t, v);
        }
        sealed.seal_all();
        assert_eq!(sealed.stats().head_points, 0);
        assert!(sealed.stats().segments > 0);
        assert_eq!(sealed, flat, "sealed store equals flat store logically");
        assert_eq!(sealed.range("s", -500, 2000), flat.range("s", -500, 2000));
        assert_eq!(sealed.latest("s"), flat.latest("s"));
        assert_eq!(sealed.series_len("s"), 300);
    }

    #[test]
    fn maintain_compacts_and_answers_from_rollups() {
        let mut s = TimeSeriesStore::with_config(small_config());
        let mut flat = TimeSeriesStore::new();
        for i in 0..400 {
            let (t, v) = (i * 3, (i % 17) as f64);
            s.insert("s", t, v);
            flat.insert("s", t, v);
        }
        s.seal_all();
        let report = s.maintain();
        assert!(report.compacted > 0);
        let st = s.stats();
        // One compacted owner per partition: 400*3 ms over 100 ms partitions.
        assert_eq!(st.segments, 12);
        assert!(st.compactions > 0);
        // Aligned queries hit materialized levels and match the flat fold.
        for (from, to, bucket) in [(0, 1200, 10), (0, 1200, 50), (100, 600, 10), (30, 777, 10)] {
            for agg in [
                Aggregate::Mean,
                Aggregate::Min,
                Aggregate::Max,
                Aggregate::Sum,
                Aggregate::Count,
                Aggregate::Last,
            ] {
                assert_eq!(
                    s.downsample_counted("s", from, to, bucket, agg),
                    flat.downsample_counted("s", from, to, bucket, agg),
                    "downsample({from},{to},{bucket},{agg:?})"
                );
            }
        }
    }

    #[test]
    fn overwrites_across_seal_boundaries_resolve_fresh() {
        let mut s = TimeSeriesStore::with_config(small_config());
        for i in 0..20 {
            s.insert("s", i * 10, 1.0);
        }
        s.seal_all();
        // Overwrite a sealed timestamp from the head...
        s.insert("s", 50, 2.0);
        assert_eq!(s.range("s", 50, 51), vec![(50, 2.0)]);
        // ...then seal the overwrite too: the newer segment wins.
        s.seal_all();
        assert_eq!(s.range("s", 50, 51), vec![(50, 2.0)]);
        s.maintain();
        assert_eq!(s.range("s", 50, 51), vec![(50, 2.0)]);
        assert_eq!(s.series_len("s"), 20);
    }

    #[test]
    fn crash_recovery_replays_wal_tail() {
        let mut s = TimeSeriesStore::with_config(small_config());
        for i in 0..50 {
            s.insert("s", i, i as f64);
        }
        s.checkpoint();
        for i in 50..80 {
            s.insert("s", i, i as f64);
        }
        let before = s.clone();
        let replayed = s.crash_recover();
        assert_eq!(replayed, 30, "only the WAL tail replays");
        assert_eq!(s, before);
        assert_eq!(s.stats().wal_replayed, 30);
    }

    #[test]
    fn torn_checkpoint_recovers_identically() {
        let mut s = TimeSeriesStore::with_config(small_config());
        for i in 0..200 {
            s.insert("s", i * 5, (i % 11) as f64);
        }
        s.seal_all();
        // No checkpoint yet: recovery replays the whole WAL, and the
        // replayed head shadows the sealed segments with equal values.
        let before = s.clone();
        assert_eq!(s.crash_recover(), 200, "full WAL replays");
        assert_eq!(s, before);
        // Torn: snapshot written but the crash lands before truncation.
        s.debug_snapshot_without_truncate();
        for i in 200..220 {
            s.insert("s", i * 5, (i % 11) as f64);
        }
        let before = s.clone();
        let replayed = s.crash_recover();
        assert_eq!(replayed, 20, "only the tail past the snapshot replays");
        assert_eq!(s, before);
        // And a second crash right after is a no-op too.
        let replayed = s.crash_recover();
        assert_eq!(replayed, 20);
        assert_eq!(s, before);
    }

    #[test]
    fn recovery_replays_drops_and_retention_in_order() {
        let mut s = TimeSeriesStore::with_config(small_config());
        s.insert("a", 1, 1.0);
        s.insert("a", 2, 2.0);
        s.insert("b", 1, 1.0);
        s.drop_series("a");
        s.insert("a", 3, 3.0);
        assert_eq!(s.apply_retention(1), 0, "nothing strictly older than 1");
        s.insert("b", -5, 5.0);
        s.apply_retention(0);
        let before = s.clone();
        s.crash_recover();
        assert_eq!(s, before);
        assert_eq!(s.range("a", 0, 10), vec![(3, 3.0)]);
        assert_eq!(s.range("b", -10, 10), vec![(1, 1.0)]);
    }

    #[test]
    fn retention_rewrites_partial_segments() {
        let mut s = TimeSeriesStore::with_config(small_config());
        let mut flat = TimeSeriesStore::new();
        for i in 0..100 {
            s.insert("s", i * 4, i as f64);
            flat.insert("s", i * 4, i as f64);
        }
        s.seal_all();
        s.maintain();
        let removed = s.apply_retention(130);
        assert_eq!(removed, flat.apply_retention(130));
        assert_eq!(s, flat);
        // The rewritten partition recompacts on the next pass.
        let report = s.maintain();
        assert!(report.compacted > 0);
        assert_eq!(s, flat);
    }

    #[test]
    fn auto_seal_and_auto_checkpoint_bound_memory() {
        let config = TskvConfig {
            partition_millis: 100,
            seal_threshold: 16,
            wal_checkpoint_records: 64,
            rollup_levels: vec![10],
        };
        let mut s = TimeSeriesStore::with_config(config);
        for i in 0..1000 {
            s.insert("s", i * 3, 1.5);
        }
        let st = s.stats();
        assert!(
            st.head_points < 32,
            "head stays bounded: {}",
            st.head_points
        );
        assert!(
            st.wal_records < 128,
            "wal stays bounded: {}",
            st.wal_records
        );
        assert!(st.segments > 0);
        assert_eq!(s.series_len("s"), 1000);
        // And the whole thing still crash-recovers to the same state.
        let before = s.clone();
        s.crash_recover();
        assert_eq!(s, before);
    }

    #[test]
    fn decimal_telemetry_compresses_past_8x() {
        // Centi-quantized temperatures, the shape device adapters emit.
        let mut s = TimeSeriesStore::new();
        for i in 0..10_000i64 {
            let centi = 2000 + (i % 211) - 100;
            s.insert("t", i * 5_000, centi as f64 / 100.0);
        }
        s.seal_all();
        let st = s.stats();
        assert_eq!(st.sealed_points, 10_000);
        let ratio = st.bytes_raw as f64 / st.bytes_compressed as f64;
        assert!(ratio >= 8.0, "compression ratio only {ratio:.2}x");
    }

    #[test]
    fn nan_payloads_survive_seal_and_recovery() {
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut s = TimeSeriesStore::with_config(small_config());
        s.insert("s", -10, nan);
        s.insert("s", 0, -0.0);
        s.insert("s", 10, 3.25);
        s.seal_all();
        s.maintain();
        let got = s.range("s", -100, 100);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1.to_bits(), nan.to_bits());
        assert_eq!(got[1].1.to_bits(), (-0.0f64).to_bits());
        assert_eq!(got[2].1, 3.25);
        assert_eq!(s.crash_recover(), 3);
        let again = s.range("s", -100, 100);
        assert_eq!(again[0].1.to_bits(), nan.to_bits());
        assert_eq!(again[1].1.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn for_each_in_matches_range() {
        let mut s = TimeSeriesStore::with_config(small_config());
        for i in 0..200 {
            s.insert("s", i * 9, (i * i % 101) as f64);
        }
        s.seal_all();
        let mut streamed = Vec::new();
        s.for_each_in("s", 100, 1500, |t, v| streamed.push((t, v)));
        assert_eq!(streamed, s.range("s", 100, 1500));
    }

    #[test]
    fn latest_prefers_newest_seal_on_tie() {
        let mut s = TimeSeriesStore::with_config(small_config());
        s.insert("s", 10, 1.0);
        s.seal_all();
        s.insert("s", 10, 2.0);
        s.seal_all();
        assert_eq!(s.latest("s"), Some((10, 2.0)));
        s.maintain();
        assert_eq!(s.latest("s"), Some((10, 2.0)));
    }
}
