//! A document store keyed by string ids.
//!
//! GIS databases store feature documents; the master node snapshots its
//! ontology as documents. This store keeps whole common-data-format
//! [`Value`]s per id with optional secondary indexes over top-level
//! fields.

use std::collections::BTreeMap;

use crate::StorageError;
use dimmer_core::Value;

/// An in-memory document database.
///
/// ```
/// use storage::document::DocumentStore;
/// use dimmer_core::Value;
/// # fn main() -> Result<(), storage::StorageError> {
/// let mut store = DocumentStore::new();
/// store.insert("b1", Value::object([("kind", Value::from("building"))]))?;
/// store.create_index("kind");
/// assert_eq!(store.find_eq("kind", &Value::from("building")).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocumentStore {
    docs: BTreeMap<String, Value>,
    /// field name -> (encoded field value -> doc ids)
    indexes: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

fn index_key(v: &Value) -> String {
    // Compact JSON is a stable, injective encoding for index keys.
    dimmer_core::json::to_string(v)
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DocumentStore::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Inserts a new document.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::DuplicateId`] if `id` is taken; use
    /// [`DocumentStore::upsert`] to overwrite.
    pub fn insert(&mut self, id: impl Into<String>, doc: Value) -> Result<(), StorageError> {
        let id = id.into();
        if self.docs.contains_key(&id) {
            return Err(StorageError::DuplicateId { id });
        }
        self.index_doc(&id, &doc);
        self.docs.insert(id, doc);
        Ok(())
    }

    /// Inserts or replaces a document, returning the previous one.
    pub fn upsert(&mut self, id: impl Into<String>, doc: Value) -> Option<Value> {
        let id = id.into();
        let old = self.remove(&id);
        self.index_doc(&id, &doc);
        self.docs.insert(id, doc);
        old
    }

    /// Fetches a document by id.
    pub fn get(&self, id: &str) -> Option<&Value> {
        self.docs.get(id)
    }

    /// Removes a document, returning it.
    pub fn remove(&mut self, id: &str) -> Option<Value> {
        let doc = self.docs.remove(id)?;
        for (field, index) in self.indexes.iter_mut() {
            if let Some(v) = doc.get(field) {
                if let Some(ids) = index.get_mut(&index_key(v)) {
                    ids.retain(|d| d != id);
                    if ids.is_empty() {
                        index.remove(&index_key(v));
                    }
                }
            }
        }
        Some(doc)
    }

    /// Iterates over `(id, document)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.docs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Builds a secondary index over top-level `field`.
    pub fn create_index(&mut self, field: impl Into<String>) {
        let field = field.into();
        let mut index: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (id, doc) in &self.docs {
            if let Some(v) = doc.get(&field) {
                index.entry(index_key(v)).or_default().push(id.clone());
            }
        }
        self.indexes.insert(field, index);
    }

    /// Finds documents whose top-level `field` equals `value`. Uses the
    /// secondary index when one exists, otherwise scans.
    pub fn find_eq(&self, field: &str, value: &Value) -> Vec<(&str, &Value)> {
        if let Some(index) = self.indexes.get(field) {
            index
                .get(&index_key(value))
                .map(|ids| {
                    ids.iter()
                        .filter_map(|id| self.docs.get(id).map(|d| (id.as_str(), d)))
                        .collect()
                })
                .unwrap_or_default()
        } else {
            self.iter()
                .filter(|(_, doc)| doc.get(field) == Some(value))
                .collect()
        }
    }

    fn index_doc(&mut self, id: &str, doc: &Value) {
        for (field, index) in self.indexes.iter_mut() {
            if let Some(v) = doc.get(field) {
                index.entry(index_key(v)).or_default().push(id.to_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(kind: &str, n: i64) -> Value {
        Value::object([("kind", Value::from(kind)), ("n", Value::from(n))])
    }

    #[test]
    fn insert_get_remove() {
        let mut s = DocumentStore::new();
        s.insert("a", doc("building", 1)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get("a").unwrap().get("n").and_then(Value::as_i64),
            Some(1)
        );
        assert!(s.insert("a", doc("building", 2)).is_err(), "duplicate id");
        let old = s.remove("a").unwrap();
        assert_eq!(old.get("n").and_then(Value::as_i64), Some(1));
        assert!(s.is_empty());
        assert!(s.remove("a").is_none());
    }

    #[test]
    fn upsert_replaces() {
        let mut s = DocumentStore::new();
        assert!(s.upsert("a", doc("x", 1)).is_none());
        let old = s.upsert("a", doc("x", 2)).unwrap();
        assert_eq!(old.get("n").and_then(Value::as_i64), Some(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn find_eq_without_index_scans() {
        let mut s = DocumentStore::new();
        s.insert("a", doc("building", 1)).unwrap();
        s.insert("b", doc("network", 2)).unwrap();
        s.insert("c", doc("building", 3)).unwrap();
        let hits = s.find_eq("kind", &Value::from("building"));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, "a");
    }

    #[test]
    fn indexed_find_agrees_with_scan_and_tracks_mutations() {
        let mut s = DocumentStore::new();
        s.insert("a", doc("building", 1)).unwrap();
        s.insert("b", doc("network", 2)).unwrap();
        s.create_index("kind");
        assert_eq!(s.find_eq("kind", &Value::from("building")).len(), 1);
        // Insert after index creation is indexed too.
        s.insert("c", doc("building", 3)).unwrap();
        assert_eq!(s.find_eq("kind", &Value::from("building")).len(), 2);
        // Remove updates the index.
        s.remove("a");
        assert_eq!(s.find_eq("kind", &Value::from("building")).len(), 1);
        // Upsert changing the field moves the doc between index buckets.
        s.upsert("c", doc("network", 3));
        assert!(s.find_eq("kind", &Value::from("building")).is_empty());
        assert_eq!(s.find_eq("kind", &Value::from("network")).len(), 2);
    }

    #[test]
    fn find_on_missing_field_is_empty() {
        let mut s = DocumentStore::new();
        s.insert("a", doc("x", 1)).unwrap();
        assert!(s.find_eq("ghost", &Value::from(1)).is_empty());
        s.create_index("ghost");
        assert!(s.find_eq("ghost", &Value::from(1)).is_empty());
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut s = DocumentStore::new();
        s.insert("z", doc("x", 1)).unwrap();
        s.insert("a", doc("x", 2)).unwrap();
        let ids: Vec<&str> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["a", "z"]);
    }

    #[test]
    fn index_distinguishes_value_types() {
        let mut s = DocumentStore::new();
        s.insert("a", Value::object([("k", Value::from(1))]))
            .unwrap();
        s.insert("b", Value::object([("k", Value::from("1"))]))
            .unwrap();
        s.create_index("k");
        assert_eq!(s.find_eq("k", &Value::from(1)).len(), 1);
        assert_eq!(s.find_eq("k", &Value::from("1")).len(), 1);
    }
}
