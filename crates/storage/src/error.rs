//! The storage error type.

use std::fmt;

/// Errors raised by the storage substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A row did not match the table schema.
    SchemaMismatch {
        /// The table involved.
        table: String,
        /// What was wrong.
        reason: String,
    },
    /// A referenced column does not exist.
    UnknownColumn {
        /// The table involved.
        table: String,
        /// The missing column.
        column: String,
    },
    /// A legacy-format document failed to parse.
    ParseLegacy {
        /// Which format.
        format: &'static str,
        /// Line (1-based) of the failure, 0 when not line-oriented.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A document id was already taken.
    DuplicateId {
        /// The offending id.
        id: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::SchemaMismatch { table, reason } => {
                write!(f, "row does not match schema of table {table:?}: {reason}")
            }
            StorageError::UnknownColumn { table, column } => {
                write!(f, "table {table:?} has no column {column:?}")
            }
            StorageError::ParseLegacy {
                format,
                line,
                reason,
            } => write!(f, "{format} parse error at line {line}: {reason}"),
            StorageError::DuplicateId { id } => {
                write!(f, "document id {id:?} already exists")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn {
            table: "bim".into(),
            column: "ghost".into(),
        };
        assert!(e.to_string().contains("bim") && e.to_string().contains("ghost"));
    }
}
