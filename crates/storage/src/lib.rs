//! # dimmer-storage — storage substrates for the infrastructure
//!
//! The paper's infrastructure sits on a zoo of stores:
//!
//! * every Device-proxy keeps a **local database** of samples (its middle
//!   layer) — [`tskv::TimeSeriesStore`];
//! * BIM/SIM exports behave like **relational dumps** — [`table::Table`];
//! * GIS features and ontology snapshots are **documents** —
//!   [`document::DocumentStore`];
//! * and the legacy databases each arrive in a **different on-disk
//!   encoding** the Database-proxies must translate — [`legacy`] (CSV,
//!   fixed-width records, INI).
//!
//! Everything runs in-memory and deterministically, but the time-series
//! store models durability: points append to a write-ahead log before
//! they are acknowledged, cold data seals into Gorilla-compressed
//! immutable segments with materialized rollups, and a node crash (which
//! wipes the volatile head) recovers by restoring the last snapshot and
//! replaying the WAL tail — see [`tskv`] and `DESIGN.md` §15.
//!
//! ## Example
//!
//! ```
//! use storage::tskv::{TimeSeriesStore, Aggregate};
//!
//! let mut store = TimeSeriesStore::new();
//! for minute in 0..60i64 {
//!     store.insert("dev1:temperature", minute * 60_000, 20.0 + (minute % 10) as f64);
//! }
//! let points = store.range("dev1:temperature", 0, 3_600_000);
//! assert_eq!(points.len(), 60);
//! let hourly = store.downsample("dev1:temperature", 0, 3_600_000, 3_600_000, Aggregate::Mean);
//! assert_eq!(hourly.len(), 1);
//! ```

pub mod document;
pub mod legacy;
pub mod table;
pub mod tskv;

mod error;

pub use error::StorageError;
