//! # dimmer-storage — storage substrates for the infrastructure
//!
//! The paper's infrastructure sits on a zoo of stores:
//!
//! * every Device-proxy keeps a **local database** of samples (its middle
//!   layer) — [`tskv::TimeSeriesStore`];
//! * BIM/SIM exports behave like **relational dumps** — [`table::Table`];
//! * GIS features and ontology snapshots are **documents** —
//!   [`document::DocumentStore`];
//! * and the legacy databases each arrive in a **different on-disk
//!   encoding** the Database-proxies must translate — [`legacy`] (CSV,
//!   fixed-width records, INI).
//!
//! Everything is in-memory and deterministic; durability is out of scope
//! for the reproduction (the paper's evaluation never exercises it).
//!
//! ## Example
//!
//! ```
//! use storage::tskv::{TimeSeriesStore, Aggregate};
//!
//! let mut store = TimeSeriesStore::new();
//! for minute in 0..60i64 {
//!     store.insert("dev1:temperature", minute * 60_000, 20.0 + (minute % 10) as f64);
//! }
//! let points = store.range("dev1:temperature", 0, 3_600_000);
//! assert_eq!(points.len(), 60);
//! let hourly = store.downsample("dev1:temperature", 0, 3_600_000, 3_600_000, Aggregate::Mean);
//! assert_eq!(hourly.len(), 1);
//! ```

pub mod document;
pub mod legacy;
pub mod table;
pub mod tskv;

mod error;

pub use error::StorageError;
