//! A miniature relational table store.
//!
//! BIM and SIM models are usually *exported* to relational databases —
//! "there is a database for each building … and for each distribution
//! network". This module provides the relational substrate those exports
//! land in: typed schemas, validated inserts, predicate scans and
//! equality indexes. The Database-proxy reads tables through this API and
//! translates rows into the common data format.

use std::collections::BTreeMap;
use std::fmt;

use crate::StorageError;
use dimmer_core::Value;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An integer cell.
    Int(i64),
    /// A float cell.
    Float(f64),
    /// A text cell.
    Text(String),
    /// A boolean cell.
    Bool(bool),
    /// SQL-style NULL (allowed in any column).
    Null,
}

impl Cell {
    /// Whether the cell is admissible in a column of `ty`.
    pub fn fits(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Cell::Int(_), ColumnType::Int)
                | (Cell::Float(_), ColumnType::Float)
                | (Cell::Text(_), ColumnType::Text)
                | (Cell::Bool(_), ColumnType::Bool)
                | (Cell::Null, _)
        )
    }

    /// Translates the cell into the common data format.
    pub fn to_value(&self) -> Value {
        match self {
            Cell::Int(i) => Value::Int(*i),
            Cell::Float(f) => Value::Float(*f),
            Cell::Text(s) => Value::Str(s.clone()),
            Cell::Bool(b) => Value::Bool(*b),
            Cell::Null => Value::Null,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Int(i) => write!(f, "{i}"),
            Cell::Float(x) => write!(f, "{x}"),
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Bool(b) => write!(f, "{b}"),
            Cell::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_owned())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

impl From<bool> for Cell {
    fn from(v: bool) -> Self {
        Cell::Bool(v)
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// The column name.
    pub name: String,
    /// The column type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// A comparison operator in a [`Predicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (numbers and text, lexicographic for text).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// A row filter for [`Table::scan`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Accept every row.
    True,
    /// Compare a column against a literal; NULL never matches.
    Compare {
        /// The column name.
        column: String,
        /// The operator.
        op: CompareOp,
        /// The literal to compare against.
        literal: Cell,
    },
    /// Both sub-predicates must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate must hold.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for an equality comparison.
    pub fn eq(column: impl Into<String>, literal: impl Into<Cell>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Eq,
            literal: literal.into(),
        }
    }

    /// Convenience constructor for any comparison.
    pub fn cmp(column: impl Into<String>, op: CompareOp, literal: impl Into<Cell>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op,
            literal: literal.into(),
        }
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }
}

fn compare_cells(a: &Cell, b: &Cell) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Cell::Int(x), Cell::Int(y)) => Some(x.cmp(y)),
        (Cell::Float(x), Cell::Float(y)) => x.partial_cmp(y),
        (Cell::Int(x), Cell::Float(y)) => (*x as f64).partial_cmp(y),
        (Cell::Float(x), Cell::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Cell::Text(x), Cell::Text(y)) => Some(x.cmp(y)),
        (Cell::Bool(x), Cell::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// A typed in-memory table with optional equality indexes.
///
/// ```
/// use storage::table::{Table, Column, ColumnType, Cell, Predicate};
/// # fn main() -> Result<(), storage::StorageError> {
/// let mut rooms = Table::new("rooms", vec![
///     Column::new("id", ColumnType::Text),
///     Column::new("floor", ColumnType::Int),
///     Column::new("area_m2", ColumnType::Float),
/// ]);
/// rooms.insert(vec!["r1".into(), 2.into(), 24.5.into()])?;
/// rooms.insert(vec!["r2".into(), 2.into(), 18.0.into()])?;
/// let second_floor = rooms.scan(&Predicate::eq("floor", 2i64));
/// assert_eq!(second_floor.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: Vec<Vec<Cell>>,
    /// column index -> (cell text key -> row ids)
    indexes: BTreeMap<usize, BTreeMap<String, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or contains duplicate names.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(&c.name), "duplicate column {:?}", c.name);
        }
        Table {
            name: name.into(),
            columns,
            rows: Vec::new(),
            indexes: BTreeMap::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The position of a column by name.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] when absent.
    pub fn column_index(&self, name: &str) -> Result<usize, StorageError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// Inserts a row after validating it against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::SchemaMismatch`] on arity or type errors.
    pub fn insert(&mut self, row: Vec<Cell>) -> Result<usize, StorageError> {
        if row.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch {
                table: self.name.clone(),
                reason: format!("expected {} cells, got {}", self.columns.len(), row.len()),
            });
        }
        for (cell, col) in row.iter().zip(&self.columns) {
            if !cell.fits(col.ty) {
                return Err(StorageError::SchemaMismatch {
                    table: self.name.clone(),
                    reason: format!("cell {cell} does not fit column {:?}", col.name),
                });
            }
        }
        let id = self.rows.len();
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(row[col].to_string()).or_default().push(id);
        }
        self.rows.push(row);
        Ok(id)
    }

    /// Builds an equality index over `column`, accelerating
    /// [`Table::lookup`].
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] when absent.
    pub fn create_index(&mut self, column: &str) -> Result<(), StorageError> {
        let col = self.column_index(column)?;
        let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, row) in self.rows.iter().enumerate() {
            index.entry(row[col].to_string()).or_default().push(id);
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// Indexed equality lookup; falls back to a scan when no index exists.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::UnknownColumn`] when absent.
    pub fn lookup(&self, column: &str, literal: &Cell) -> Result<Vec<&[Cell]>, StorageError> {
        let col = self.column_index(column)?;
        if let Some(index) = self.indexes.get(&col) {
            Ok(index
                .get(&literal.to_string())
                .map(|ids| {
                    ids.iter()
                        .map(|&id| self.rows[id].as_slice())
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default())
        } else {
            Ok(self.scan(&Predicate::Compare {
                column: column.to_owned(),
                op: CompareOp::Eq,
                literal: literal.clone(),
            }))
        }
    }

    /// Returns the rows matching `predicate` in insertion order.
    /// Unknown columns in the predicate match nothing.
    pub fn scan(&self, predicate: &Predicate) -> Vec<&[Cell]> {
        self.rows
            .iter()
            .filter(|row| self.matches(row, predicate))
            .map(Vec::as_slice)
            .collect()
    }

    fn matches(&self, row: &[Cell], predicate: &Predicate) -> bool {
        match predicate {
            Predicate::True => true,
            Predicate::Compare {
                column,
                op,
                literal,
            } => {
                let Ok(col) = self.column_index(column) else {
                    return false;
                };
                let Some(ordering) = compare_cells(&row[col], literal) else {
                    return false; // NULL or cross-type: no match
                };
                match op {
                    CompareOp::Eq => ordering.is_eq(),
                    CompareOp::Ne => ordering.is_ne(),
                    CompareOp::Lt => ordering.is_lt(),
                    CompareOp::Le => ordering.is_le(),
                    CompareOp::Gt => ordering.is_gt(),
                    CompareOp::Ge => ordering.is_ge(),
                }
            }
            Predicate::And(a, b) => self.matches(row, a) && self.matches(row, b),
            Predicate::Or(a, b) => self.matches(row, a) || self.matches(row, b),
        }
    }

    /// Translates a row into a common-data-format object keyed by column
    /// names.
    pub fn row_to_value(&self, row: &[Cell]) -> Value {
        Value::object(
            self.columns
                .iter()
                .zip(row)
                .map(|(c, cell)| (c.name.clone(), cell.to_value())),
        )
    }

    /// Translates the whole table: `{name, columns, rows: [...]}`.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.as_str())),
            (
                "columns",
                Value::Array(
                    self.columns
                        .iter()
                        .map(|c| Value::from(c.name.as_str()))
                        .collect(),
                ),
            ),
            (
                "rows",
                Value::Array(self.rows.iter().map(|r| self.row_to_value(r)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rooms() -> Table {
        let mut t = Table::new(
            "rooms",
            vec![
                Column::new("id", ColumnType::Text),
                Column::new("floor", ColumnType::Int),
                Column::new("area", ColumnType::Float),
                Column::new("heated", ColumnType::Bool),
            ],
        );
        t.insert(vec!["r1".into(), 1.into(), 20.0.into(), true.into()])
            .unwrap();
        t.insert(vec!["r2".into(), 1.into(), 35.5.into(), false.into()])
            .unwrap();
        t.insert(vec!["r3".into(), 2.into(), 12.0.into(), true.into()])
            .unwrap();
        t.insert(vec!["r4".into(), 2.into(), Cell::Null, true.into()])
            .unwrap();
        t
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = rooms();
        assert!(t.insert(vec!["r5".into()]).is_err());
        assert!(t
            .insert(vec!["r5".into(), "one".into(), 1.0.into(), true.into()])
            .is_err());
        assert!(t
            .insert(vec![Cell::Null, Cell::Null, Cell::Null, Cell::Null])
            .is_ok());
    }

    #[test]
    fn scan_with_comparisons() {
        let t = rooms();
        assert_eq!(t.scan(&Predicate::True).len(), 4);
        assert_eq!(t.scan(&Predicate::eq("floor", 1i64)).len(), 2);
        assert_eq!(
            t.scan(&Predicate::cmp("area", CompareOp::Gt, 15.0)).len(),
            2
        );
        assert_eq!(
            t.scan(&Predicate::cmp("id", CompareOp::Ge, "r3")).len(),
            2,
            "text comparisons are lexicographic"
        );
        assert_eq!(
            t.scan(&Predicate::cmp("floor", CompareOp::Ne, 1i64)).len(),
            2
        );
    }

    #[test]
    fn null_never_matches() {
        let t = rooms();
        // r4 has NULL area: neither < nor >= anything.
        assert_eq!(t.scan(&Predicate::cmp("area", CompareOp::Ge, 0.0)).len(), 3);
        assert_eq!(t.scan(&Predicate::cmp("area", CompareOp::Lt, 1e9)).len(), 3);
    }

    #[test]
    fn and_or_compose() {
        let t = rooms();
        let p = Predicate::eq("floor", 2i64).and(Predicate::eq("heated", true));
        assert_eq!(t.scan(&p).len(), 2);
        let p = Predicate::eq("id", "r1").or(Predicate::eq("id", "r3"));
        assert_eq!(t.scan(&p).len(), 2);
    }

    #[test]
    fn int_float_compare_across_types() {
        let t = rooms();
        // area compared against an int literal.
        assert_eq!(
            t.scan(&Predicate::cmp("area", CompareOp::Eq, 20i64)).len(),
            1
        );
    }

    #[test]
    fn unknown_column_in_predicate_matches_nothing() {
        let t = rooms();
        assert!(t.scan(&Predicate::eq("ghost", 1i64)).is_empty());
    }

    #[test]
    fn indexed_lookup_agrees_with_scan() {
        let mut t = rooms();
        t.create_index("floor").unwrap();
        let indexed = t.lookup("floor", &Cell::Int(2)).unwrap();
        let scanned = t.scan(&Predicate::eq("floor", 2i64));
        assert_eq!(indexed, scanned);
        // Index stays consistent across later inserts.
        t.insert(vec!["r9".into(), 2.into(), 9.0.into(), true.into()])
            .unwrap();
        assert_eq!(t.lookup("floor", &Cell::Int(2)).unwrap().len(), 3);
        // Miss returns empty.
        assert!(t.lookup("floor", &Cell::Int(99)).unwrap().is_empty());
    }

    #[test]
    fn lookup_without_index_scans() {
        let t = rooms();
        assert_eq!(t.lookup("id", &Cell::Text("r2".into())).unwrap().len(), 1);
        assert!(t.lookup("ghost", &Cell::Null).is_err());
    }

    #[test]
    fn row_to_value_translation() {
        let t = rooms();
        let rows = t.scan(&Predicate::eq("id", "r1"));
        let v = t.row_to_value(rows[0]);
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("floor").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("heated").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn table_to_value_shape() {
        let t = rooms();
        let v = t.to_value();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("rooms"));
        assert_eq!(v.require_array("table", "rows").unwrap().len(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("a", ColumnType::Int),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_rejected() {
        Table::new("t", vec![]);
    }
}
