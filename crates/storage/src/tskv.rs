//! The time-series store backing every Device-proxy's local database.
//!
//! Series are keyed by free-form strings (by convention
//! `<device>:<quantity>`); points are `(unix-millis, f64)` pairs kept in
//! a `BTreeMap` per series, which gives `O(log n)` inserts and cheap
//! in-order range scans. The store also implements the two maintenance
//! operations the Device-proxy's middle layer needs: **retention** (drop
//! points older than a horizon) and **downsampling** (bucketed
//! aggregates for coarse-grained district views).

use std::collections::BTreeMap;

use telemetry::Registry;

/// How a downsampling bucket combines its points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Aggregate {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Number of points.
    Count,
    /// The chronologically last point.
    Last,
}

impl Aggregate {
    /// The lowercase name used in query strings.
    pub fn as_str(self) -> &'static str {
        match self {
            Aggregate::Mean => "mean",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::Sum => "sum",
            Aggregate::Count => "count",
            Aggregate::Last => "last",
        }
    }

    /// Parses a name produced by [`Aggregate::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        [
            Aggregate::Mean,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Sum,
            Aggregate::Count,
            Aggregate::Last,
        ]
        .into_iter()
        .find(|a| a.as_str() == s)
    }

    fn apply(self, points: &[(i64, f64)]) -> f64 {
        debug_assert!(!points.is_empty());
        match self {
            Aggregate::Mean => points.iter().map(|(_, v)| v).sum::<f64>() / points.len() as f64,
            Aggregate::Min => points.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min),
            Aggregate::Max => points
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Sum => points.iter().map(|(_, v)| v).sum(),
            Aggregate::Count => points.len() as f64,
            Aggregate::Last => points.last().expect("non-empty").1,
        }
    }
}

/// One downsampling bucket: the aggregate value plus how many raw
/// points produced it (see [`TimeSeriesStore::downsample_counted`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start (unix millis, aligned to the query's `from`).
    pub start: i64,
    /// The aggregated value.
    pub value: f64,
    /// How many raw points fell into this bucket.
    pub count: u64,
}

/// A per-series, in-memory time-series database.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesStore {
    series: BTreeMap<String, BTreeMap<i64, f64>>,
    /// Optional metrics sink (see [`TimeSeriesStore::attach_metrics`]).
    metrics: Option<Registry>,
}

impl PartialEq for TimeSeriesStore {
    fn eq(&self, other: &Self) -> bool {
        // The metrics sink is observability plumbing, not data.
        self.series == other.series
    }
}

impl TimeSeriesStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TimeSeriesStore::default()
    }

    /// Attaches a metrics registry; the store then counts appends and
    /// scans (`tskv.append`, `tskv.scan`) and sizes result sets
    /// (`tskv.scan_points`) into it.
    pub fn attach_metrics(&mut self, metrics: Registry) {
        self.metrics = Some(metrics);
    }

    /// Inserts a point; a point at the same timestamp is overwritten
    /// (last-writer-wins, matching sensor re-transmissions).
    pub fn insert(&mut self, series: &str, timestamp_millis: i64, value: f64) {
        self.series
            .entry(series.to_owned())
            .or_default()
            .insert(timestamp_millis, value);
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.append");
        }
    }

    /// Number of points in `series` (0 for unknown series).
    pub fn series_len(&self, series: &str) -> usize {
        self.series.get(series).map_or(0, BTreeMap::len)
    }

    /// Total number of points across all series.
    pub fn len(&self) -> usize {
        self.series.values().map(BTreeMap::len).sum()
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The names of all series, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The chronologically last point of a series.
    pub fn latest(&self, series: &str) -> Option<(i64, f64)> {
        self.series
            .get(series)?
            .iter()
            .next_back()
            .map(|(&t, &v)| (t, v))
    }

    /// All points with `from <= t < to`, in chronological order.
    pub fn range(&self, series: &str, from: i64, to: i64) -> Vec<(i64, f64)> {
        let out: Vec<(i64, f64)> = match self.series.get(series) {
            Some(points) if from < to => points.range(from..to).map(|(&t, &v)| (t, v)).collect(),
            _ => Vec::new(),
        };
        if let Some(metrics) = &self.metrics {
            metrics.incr("tskv.scan");
            metrics.observe("tskv.scan_points", out.len() as f64);
        }
        out
    }

    /// Bucketed aggregates over `[from, to)` with buckets of
    /// `bucket_millis`, labelled by bucket start. Empty buckets are
    /// omitted.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_millis` is not positive.
    pub fn downsample(
        &self,
        series: &str,
        from: i64,
        to: i64,
        bucket_millis: i64,
        aggregate: Aggregate,
    ) -> Vec<(i64, f64)> {
        self.downsample_counted(series, from, to, bucket_millis, aggregate)
            .into_iter()
            .map(|b| (b.start, b.value))
            .collect()
    }

    /// Like [`TimeSeriesStore::downsample`], but each bucket also
    /// carries its raw sample count, so higher aggregation tiers can
    /// re-combine buckets with correct weights (a count-weighted mean
    /// of bucket means equals the mean over the raw points, instead of
    /// an average of averages).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_millis` is not positive.
    pub fn downsample_counted(
        &self,
        series: &str,
        from: i64,
        to: i64,
        bucket_millis: i64,
        aggregate: Aggregate,
    ) -> Vec<Bucket> {
        assert!(bucket_millis > 0, "bucket size must be positive");
        let points = self.range(series, from, to);
        let mut out = Vec::new();
        let mut bucket_start = i64::MIN;
        let mut bucket_points: Vec<(i64, f64)> = Vec::new();
        let mut flush = |start: i64, points: &mut Vec<(i64, f64)>| {
            if !points.is_empty() {
                out.push(Bucket {
                    start,
                    value: aggregate.apply(points),
                    count: points.len() as u64,
                });
                points.clear();
            }
        };
        for (t, v) in points {
            let start = from + (t - from).div_euclid(bucket_millis) * bucket_millis;
            if start != bucket_start {
                flush(bucket_start, &mut bucket_points);
            }
            bucket_start = start;
            bucket_points.push((t, v));
        }
        flush(bucket_start, &mut bucket_points);
        out
    }

    /// Drops every point strictly older than `horizon_millis` across all
    /// series; returns how many points were removed. Empty series are
    /// pruned.
    pub fn apply_retention(&mut self, horizon_millis: i64) -> usize {
        let mut removed = 0;
        self.series.retain(|_, points| {
            let keep = points.split_off(&horizon_millis);
            removed += points.len();
            *points = keep;
            !points.is_empty()
        });
        removed
    }

    /// Removes a whole series; returns how many points it held.
    pub fn drop_series(&mut self, series: &str) -> usize {
        self.series.remove(series).map_or(0, |points| points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(points: &[(i64, f64)]) -> TimeSeriesStore {
        let mut s = TimeSeriesStore::new();
        for &(t, v) in points {
            s.insert("s", t, v);
        }
        s
    }

    #[test]
    fn insert_and_range() {
        let s = store_with(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        assert_eq!(s.range("s", 10, 30), vec![(10, 1.0), (20, 2.0)]);
        assert_eq!(s.range("s", 0, 100).len(), 3);
        assert!(s.range("s", 30, 10).is_empty(), "inverted range is empty");
        assert!(s.range("missing", 0, 100).is_empty());
    }

    #[test]
    fn range_bounds_are_half_open() {
        let s = store_with(&[(10, 1.0), (20, 2.0)]);
        assert_eq!(s.range("s", 10, 20), vec![(10, 1.0)]);
    }

    #[test]
    fn same_timestamp_overwrites() {
        let s = store_with(&[(10, 1.0), (10, 9.0)]);
        assert_eq!(s.series_len("s"), 1);
        assert_eq!(s.latest("s"), Some((10, 9.0)));
    }

    #[test]
    fn latest_is_chronological_max() {
        let s = store_with(&[(30, 3.0), (10, 1.0), (20, 2.0)]);
        assert_eq!(s.latest("s"), Some((30, 3.0)));
        assert_eq!(s.latest("missing"), None);
    }

    #[test]
    fn counts_and_names() {
        let mut s = store_with(&[(1, 1.0)]);
        s.insert("other", 5, 5.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.series_names().collect::<Vec<_>>(), vec!["other", "s"]);
    }

    #[test]
    fn downsample_mean() {
        // Two 10 ms buckets: [0,10) -> 1,3 mean 2; [10,20) -> 5 mean 5.
        let s = store_with(&[(0, 1.0), (5, 3.0), (12, 5.0)]);
        assert_eq!(
            s.downsample("s", 0, 20, 10, Aggregate::Mean),
            vec![(0, 2.0), (10, 5.0)]
        );
    }

    #[test]
    fn downsample_all_aggregates() {
        let s = store_with(&[(0, 1.0), (1, 4.0), (2, 2.0)]);
        let one = |a| s.downsample("s", 0, 10, 10, a);
        assert_eq!(one(Aggregate::Mean), vec![(0, 7.0 / 3.0)]);
        assert_eq!(one(Aggregate::Min), vec![(0, 1.0)]);
        assert_eq!(one(Aggregate::Max), vec![(0, 4.0)]);
        assert_eq!(one(Aggregate::Sum), vec![(0, 7.0)]);
        assert_eq!(one(Aggregate::Count), vec![(0, 3.0)]);
        assert_eq!(one(Aggregate::Last), vec![(0, 2.0)]);
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        let s = store_with(&[(0, 1.0), (35, 2.0)]);
        assert_eq!(
            s.downsample("s", 0, 40, 10, Aggregate::Mean),
            vec![(0, 1.0), (30, 2.0)]
        );
    }

    #[test]
    fn downsample_buckets_align_to_from() {
        let s = store_with(&[(7, 1.0), (13, 3.0)]);
        // from=5, bucket 10: buckets [5,15) containing both.
        assert_eq!(
            s.downsample("s", 5, 25, 10, Aggregate::Count),
            vec![(5, 2.0)]
        );
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn downsample_rejects_zero_bucket() {
        TimeSeriesStore::new().downsample("s", 0, 10, 0, Aggregate::Mean);
    }

    #[test]
    fn downsample_counted_carries_sample_counts() {
        let s = store_with(&[(0, 1.0), (5, 3.0), (12, 5.0)]);
        assert_eq!(
            s.downsample_counted("s", 0, 20, 10, Aggregate::Mean),
            vec![
                Bucket {
                    start: 0,
                    value: 2.0,
                    count: 2
                },
                Bucket {
                    start: 10,
                    value: 5.0,
                    count: 1
                },
            ]
        );
        // The plain API is exactly the counted one minus the counts.
        for a in [Aggregate::Mean, Aggregate::Sum, Aggregate::Last] {
            let plain = s.downsample("s", 0, 20, 10, a);
            let counted: Vec<(i64, f64)> = s
                .downsample_counted("s", 0, 20, 10, a)
                .into_iter()
                .map(|b| (b.start, b.value))
                .collect();
            assert_eq!(plain, counted);
        }
    }

    #[test]
    fn counted_buckets_make_mean_of_means_exact() {
        // Buckets with unequal populations: the naive average of bucket
        // means is wrong, the count-weighted one matches the raw mean.
        let s = store_with(&[(0, 1.0), (2, 2.0), (4, 3.0), (12, 10.0)]);
        let buckets = s.downsample_counted("s", 0, 20, 10, Aggregate::Mean);
        let naive = buckets.iter().map(|b| b.value).sum::<f64>() / buckets.len() as f64;
        let weighted_sum: f64 = buckets.iter().map(|b| b.value * b.count as f64).sum();
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        let weighted = weighted_sum / total as f64;
        assert_eq!(weighted, 4.0, "raw mean of 1,2,3,10");
        assert!((naive - 6.0).abs() < 1e-12, "mean of means is biased");
    }

    #[test]
    fn retention_drops_old_points() {
        let mut s = store_with(&[(0, 1.0), (10, 2.0), (20, 3.0)]);
        s.insert("fresh", 100, 1.0);
        let removed = s.apply_retention(10);
        assert_eq!(removed, 1);
        assert_eq!(s.range("s", 0, 100), vec![(10, 2.0), (20, 3.0)]);
        // Retention that empties a series prunes it entirely.
        let removed = s.apply_retention(1_000);
        assert_eq!(removed, 3);
        assert_eq!(s.series_names().count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn drop_series_reports_size() {
        let mut s = store_with(&[(0, 1.0), (1, 2.0)]);
        assert_eq!(s.drop_series("s"), 2);
        assert_eq!(s.drop_series("s"), 0);
    }

    #[test]
    fn aggregate_names_round_trip() {
        for a in [
            Aggregate::Mean,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Sum,
            Aggregate::Count,
            Aggregate::Last,
        ] {
            assert_eq!(Aggregate::parse(a.as_str()), Some(a));
        }
        assert_eq!(Aggregate::parse("median"), None);
    }

    #[test]
    fn attached_metrics_count_appends_and_scans() {
        let mut s = TimeSeriesStore::new();
        let registry = Registry::new();
        s.attach_metrics(registry.clone());
        s.insert("s", 1, 1.0);
        s.insert("s", 2, 2.0);
        assert_eq!(s.range("s", 0, 10).len(), 2);
        assert_eq!(registry.counter("tskv.append"), 2);
        assert_eq!(registry.counter("tskv.scan"), 1);
        assert_eq!(registry.histogram("tskv.scan_points").unwrap().count, 1);
        // Metrics plumbing is invisible to equality.
        let mut bare = TimeSeriesStore::new();
        bare.insert("s", 1, 1.0);
        bare.insert("s", 2, 2.0);
        assert_eq!(s, bare);
    }

    #[test]
    fn negative_timestamps_supported() {
        let s = store_with(&[(-20, 1.0), (-10, 2.0), (0, 3.0)]);
        assert_eq!(s.range("s", -20, 0), vec![(-20, 1.0), (-10, 2.0)]);
        assert_eq!(
            s.downsample("s", -20, 0, 10, Aggregate::Count),
            vec![(-20, 1.0), (-10, 1.0)]
        );
    }
}
