//! Randomized tests on the storage substrates, driven by
//! `simnet::rng::DeterministicRng` (reproducible, no external
//! property-testing dependency).

use simnet::rng::DeterministicRng;
use storage::legacy::csv::CsvDocument;
use storage::legacy::fixedwidth::{FieldSpec, RecordLayout};
use storage::legacy::ini::IniDocument;
use storage::table::{Cell, Column, ColumnType, CompareOp, Predicate, Table};
use storage::tskv::{Aggregate, TimeSeriesStore};

const CASES: usize = 256;

fn string_from(rng: &mut DeterministicRng, charset: &str, lo: usize, hi: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.next_range(lo as u64, hi as u64) as usize;
    (0..len)
        .map(|_| chars[rng.next_bounded(chars.len() as u64) as usize])
        .collect()
}

/// Printable text including quotes, commas, newlines and non-ASCII.
fn printable_string(rng: &mut DeterministicRng, max_len: usize) -> String {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| match rng.next_bounded(8) {
            0 => '"',
            1 => ',',
            2..=5 => char::from_u32(0x20 + rng.next_bounded(0x5f) as u32).unwrap(),
            6 => char::from_u32(0x00A1 + rng.next_bounded(0x500) as u32).unwrap(),
            _ => ['é', '✓', '中', 'Ω'][rng.next_bounded(4) as usize],
        })
        .collect()
}

#[test]
fn tskv_range_equals_filter() {
    let mut rng = DeterministicRng::seed_from(0x5709_0001);
    for _ in 0..CASES / 4 {
        let points: Vec<(i64, f64)> = (0..rng.next_bounded(200))
            .map(|_| (rng.next_u64() as i32 as i64, rng.next_f64_range(-1e6, 1e6)))
            .collect();
        let mut store = TimeSeriesStore::new();
        let mut reference = std::collections::BTreeMap::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
            reference.insert(t, v);
        }
        let from = rng.next_u64() as i32 as i64;
        let to = from + rng.next_bounded(1_000_000) as i64;
        let got = store.range("s", from, to);
        let expected: Vec<(i64, f64)> = reference.range(from..to).map(|(&t, &v)| (t, v)).collect();
        assert_eq!(got, expected);
        assert_eq!(store.series_len("s"), reference.len());
    }
}

#[test]
fn tskv_downsample_conserves_count() {
    let mut rng = DeterministicRng::seed_from(0x5709_0002);
    for _ in 0..CASES / 4 {
        let points: Vec<(i64, f64)> = (0..rng.next_range(1, 199))
            .map(|_| {
                (
                    rng.next_bounded(100_000) as i64,
                    rng.next_f64_range(-1e3, 1e3),
                )
            })
            .collect();
        let bucket = rng.next_range(1, 9_999) as i64;
        let mut store = TimeSeriesStore::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
        }
        let total = store.series_len("s");
        let counted: f64 = store
            .downsample("s", 0, 100_000, bucket, Aggregate::Count)
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(counted as usize, total);
        // Mean of each bucket lies within [min, max] of that bucket.
        let means = store.downsample("s", 0, 100_000, bucket, Aggregate::Mean);
        let mins = store.downsample("s", 0, 100_000, bucket, Aggregate::Min);
        let maxs = store.downsample("s", 0, 100_000, bucket, Aggregate::Max);
        for ((tm, mean), ((_, lo), (_, hi))) in means.iter().zip(mins.iter().zip(maxs.iter())) {
            assert!(lo - 1e-9 <= *mean && *mean <= hi + 1e-9, "bucket {tm}");
        }
    }
}

#[test]
fn tskv_retention_keeps_only_newer() {
    let mut rng = DeterministicRng::seed_from(0x5709_0003);
    for _ in 0..CASES / 4 {
        let points: Vec<(i64, f64)> = (0..rng.next_bounded(100))
            .map(|_| (rng.next_u64() as i16 as i64, rng.next_f64()))
            .collect();
        let horizon = rng.next_u64() as i16 as i64;
        let mut store = TimeSeriesStore::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
        }
        let before = store.series_len("s");
        let removed = store.apply_retention(horizon);
        assert_eq!(store.len() + removed, before);
        for (t, _) in store.range("s", i64::MIN, i64::MAX) {
            assert!(t >= horizon);
        }
    }
}

#[test]
fn csv_round_trips_arbitrary_fields() {
    let mut rng = DeterministicRng::seed_from(0x5709_0004);
    for _ in 0..CASES / 4 {
        let header: Vec<String> = (0..rng.next_range(1, 4))
            .map(|_| string_from(&mut rng, "abcdefgh", 1, 8))
            .collect();
        let width = header.len();
        let mut doc = CsvDocument::new(header);
        for _ in 0..rng.next_bounded(20) {
            let mut row: Vec<String> = (0..rng.next_range(1, 4))
                .map(|_| printable_string(&mut rng, 16))
                .collect();
            row.resize(width, String::new());
            row.truncate(width);
            doc.push(row).expect("width fixed");
        }
        assert_eq!(CsvDocument::parse(&doc.encode()).expect("round trip"), doc);
    }
}

#[test]
fn csv_parser_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x5709_0005);
    for _ in 0..CASES {
        let len = rng.next_bounded(129) as usize;
        let text: String = (0..len)
            .filter_map(|_| char::from_u32(rng.next_bounded(0x500) as u32))
            .collect();
        let _ = CsvDocument::parse(&text);
    }
}

#[test]
fn fixedwidth_round_trips() {
    let mut rng = DeterministicRng::seed_from(0x5709_0006);
    for _ in 0..CASES / 4 {
        let widths: Vec<usize> = (0..rng.next_range(1, 4))
            .map(|_| rng.next_range(1, 11) as usize)
            .collect();
        let layout = RecordLayout::new(
            widths
                .iter()
                .enumerate()
                .map(|(i, &w)| FieldSpec::new(format!("f{i}"), w))
                .collect(),
        );
        let rows: Vec<Vec<String>> = (0..rng.next_bounded(10))
            .map(|_| {
                widths
                    .iter()
                    .map(|&w| {
                        // Fit the width and drop trailing spaces (they
                        // cannot survive the padding round trip).
                        string_from(&mut rng, "abcXYZ019._-", 0, 11)
                            .chars()
                            .take(w)
                            .collect::<String>()
                            .trim_end()
                            .to_owned()
                    })
                    .collect()
            })
            .collect();
        let text = layout.encode_document(&rows).expect("values fit");
        assert_eq!(layout.parse_document(&text).expect("round trip"), rows);
    }
}

#[test]
fn ini_round_trips() {
    let mut rng = DeterministicRng::seed_from(0x5709_0007);
    for _ in 0..CASES / 4 {
        let mut doc = IniDocument::new();
        for _ in 0..rng.next_bounded(5) {
            let section = string_from(&mut rng, "abcdefgh", 1, 8);
            for _ in 0..rng.next_range(1, 4) {
                let k = string_from(&mut rng, "abcdefgh", 1, 8);
                let v = string_from(&mut rng, "abcXYZ019 ._/:-", 0, 16);
                doc.set(section.clone(), k, v.trim().to_owned());
            }
        }
        assert_eq!(IniDocument::parse(&doc.encode()).expect("round trip"), doc);
    }
}

#[test]
fn table_scan_matches_manual_filter() {
    let mut rng = DeterministicRng::seed_from(0x5709_0008);
    for _ in 0..CASES / 4 {
        let values: Vec<(i64, f64)> = (0..rng.next_bounded(100))
            .map(|_| (rng.next_u64() as i64, rng.next_f64_range(-1e6, 1e6)))
            .collect();
        let pivot = rng.next_u64() as i64;
        let mut table = Table::new(
            "t",
            vec![
                Column::new("i", ColumnType::Int),
                Column::new("f", ColumnType::Float),
            ],
        );
        for &(i, f) in &values {
            table
                .insert(vec![Cell::Int(i), Cell::Float(f)])
                .expect("schema ok");
        }
        let got = table.scan(&Predicate::cmp("i", CompareOp::Ge, pivot)).len();
        let expected = values.iter().filter(|(i, _)| *i >= pivot).count();
        assert_eq!(got, expected);

        // Indexed lookup agrees with scan for any value.
        let mut indexed = table.clone();
        indexed.create_index("i").expect("column exists");
        let probe = values.first().map_or(0, |(i, _)| *i);
        assert_eq!(
            indexed
                .lookup("i", &Cell::Int(probe))
                .expect("indexed")
                .len(),
            table.scan(&Predicate::eq("i", probe)).len()
        );
    }
}
