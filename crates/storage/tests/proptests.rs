//! Randomized tests on the storage substrates, driven by
//! `simnet::rng::DeterministicRng` (reproducible, no external
//! property-testing dependency).

use simnet::rng::DeterministicRng;
use storage::legacy::csv::CsvDocument;
use storage::legacy::fixedwidth::{FieldSpec, RecordLayout};
use storage::legacy::ini::IniDocument;
use storage::table::{Cell, Column, ColumnType, CompareOp, Predicate, Table};
use storage::tskv::{Aggregate, TimeSeriesStore, TskvConfig};

const CASES: usize = 256;

fn string_from(rng: &mut DeterministicRng, charset: &str, lo: usize, hi: usize) -> String {
    let chars: Vec<char> = charset.chars().collect();
    let len = rng.next_range(lo as u64, hi as u64) as usize;
    (0..len)
        .map(|_| chars[rng.next_bounded(chars.len() as u64) as usize])
        .collect()
}

/// Printable text including quotes, commas, newlines and non-ASCII.
fn printable_string(rng: &mut DeterministicRng, max_len: usize) -> String {
    let len = rng.next_bounded(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| match rng.next_bounded(8) {
            0 => '"',
            1 => ',',
            2..=5 => char::from_u32(0x20 + rng.next_bounded(0x5f) as u32).unwrap(),
            6 => char::from_u32(0x00A1 + rng.next_bounded(0x500) as u32).unwrap(),
            _ => ['é', '✓', '中', 'Ω'][rng.next_bounded(4) as usize],
        })
        .collect()
}

#[test]
fn tskv_range_equals_filter() {
    let mut rng = DeterministicRng::seed_from(0x5709_0001);
    for _ in 0..CASES / 4 {
        let points: Vec<(i64, f64)> = (0..rng.next_bounded(200))
            .map(|_| (rng.next_u64() as i32 as i64, rng.next_f64_range(-1e6, 1e6)))
            .collect();
        let mut store = TimeSeriesStore::new();
        let mut reference = std::collections::BTreeMap::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
            reference.insert(t, v);
        }
        let from = rng.next_u64() as i32 as i64;
        let to = from + rng.next_bounded(1_000_000) as i64;
        let got = store.range("s", from, to);
        let expected: Vec<(i64, f64)> = reference.range(from..to).map(|(&t, &v)| (t, v)).collect();
        assert_eq!(got, expected);
        assert_eq!(store.series_len("s"), reference.len());
    }
}

#[test]
fn tskv_downsample_conserves_count() {
    let mut rng = DeterministicRng::seed_from(0x5709_0002);
    for _ in 0..CASES / 4 {
        let points: Vec<(i64, f64)> = (0..rng.next_range(1, 199))
            .map(|_| {
                (
                    rng.next_bounded(100_000) as i64,
                    rng.next_f64_range(-1e3, 1e3),
                )
            })
            .collect();
        let bucket = rng.next_range(1, 9_999) as i64;
        let mut store = TimeSeriesStore::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
        }
        let total = store.series_len("s");
        let counted: f64 = store
            .downsample("s", 0, 100_000, bucket, Aggregate::Count)
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(counted as usize, total);
        // Mean of each bucket lies within [min, max] of that bucket.
        let means = store.downsample("s", 0, 100_000, bucket, Aggregate::Mean);
        let mins = store.downsample("s", 0, 100_000, bucket, Aggregate::Min);
        let maxs = store.downsample("s", 0, 100_000, bucket, Aggregate::Max);
        for ((tm, mean), ((_, lo), (_, hi))) in means.iter().zip(mins.iter().zip(maxs.iter())) {
            assert!(lo - 1e-9 <= *mean && *mean <= hi + 1e-9, "bucket {tm}");
        }
    }
}

#[test]
fn tskv_retention_keeps_only_newer() {
    let mut rng = DeterministicRng::seed_from(0x5709_0003);
    for _ in 0..CASES / 4 {
        let points: Vec<(i64, f64)> = (0..rng.next_bounded(100))
            .map(|_| (rng.next_u64() as i16 as i64, rng.next_f64()))
            .collect();
        let horizon = rng.next_u64() as i16 as i64;
        let mut store = TimeSeriesStore::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
        }
        let before = store.series_len("s");
        let removed = store.apply_retention(horizon);
        assert_eq!(store.len() + removed, before);
        for (t, _) in store.range("s", i64::MIN, i64::MAX) {
            assert!(t >= horizon);
        }
    }
}

/// A value generator that stresses both segment encodings: NaNs with
/// random payloads, signed zeros, infinities, decimal-quantized
/// telemetry, integers, and full-precision noise.
fn adversarial_value(rng: &mut DeterministicRng) -> f64 {
    match rng.next_bounded(6) {
        0 => f64::from_bits(0x7ff8_0000_0000_0000 | (rng.next_u64() & 0x0007_ffff_ffff_ffff)),
        1 => [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY][rng.next_bounded(4) as usize],
        2 => (rng.next_range(0, 10_000) as i64 - 5_000) as f64 / 100.0,
        3 => (rng.next_u64() as i32) as f64,
        _ => rng.next_f64_range(-1e9, 1e9),
    }
}

/// A config that forces lots of tiny segments so every structural edge
/// (single-point segments, multi-segment partitions, compaction merges)
/// shows up with few points.
fn tiny_config() -> TskvConfig {
    TskvConfig {
        partition_millis: 1_000,
        seal_threshold: 8,
        wal_checkpoint_records: 32,
        rollup_levels: vec![100, 500],
    }
}

#[test]
fn tskv_segment_scans_match_flat_reference() {
    let mut rng = DeterministicRng::seed_from(0x5709_0009);
    for _ in 0..CASES / 4 {
        let mut store = TimeSeriesStore::with_config(tiny_config());
        let mut reference = std::collections::BTreeMap::new();
        let n = rng.next_range(1, 121);
        for _ in 0..n {
            // Negative timestamps and frequent duplicates (overwrites).
            let t = rng.next_bounded(8_000) as i64 - 4_000;
            let v = adversarial_value(&mut rng);
            store.insert("s", t, v);
            reference.insert(t, v);
            // Random engine churn between inserts: seals (down to
            // single-point segments), compaction, checkpoints, and
            // crashes. None of it may change what a scan returns.
            match rng.next_bounded(12) {
                0 => store.seal_all(),
                1 => {
                    store.maintain();
                }
                2 => store.checkpoint(),
                3 => {
                    store.debug_snapshot_without_truncate();
                    store.crash_recover();
                }
                4 => {
                    store.crash_recover();
                }
                _ => {}
            }
        }
        let bits = |pts: Vec<(i64, f64)>| -> Vec<(i64, u64)> {
            pts.into_iter().map(|(t, v)| (t, v.to_bits())).collect()
        };
        let expect_bits = |from: i64, to: i64| -> Vec<(i64, u64)> {
            reference
                .range(from..to)
                .map(|(&t, &v)| (t, v.to_bits()))
                .collect()
        };
        assert_eq!(
            bits(store.range("s", i64::MIN, i64::MAX)),
            expect_bits(i64::MIN, i64::MAX)
        );
        for _ in 0..4 {
            let from = rng.next_bounded(10_000) as i64 - 5_000;
            let to = from + rng.next_bounded(3_000) as i64;
            assert_eq!(bits(store.range("s", from, to)), expect_bits(from, to));
            let mut streamed = Vec::new();
            store.for_each_in("s", from, to, |t, v| streamed.push((t, v)));
            assert_eq!(bits(streamed), expect_bits(from, to));
        }
        assert_eq!(store.series_len("s"), reference.len());
        let (lt, lv) = store.latest("s").expect("non-empty");
        let (&rt, &rv) = reference.iter().next_back().expect("non-empty");
        assert_eq!((lt, lv.to_bits()), (rt, rv.to_bits()));
    }
}

#[test]
fn tskv_downsample_agrees_between_sealed_and_head_only_stores() {
    let mut rng = DeterministicRng::seed_from(0x5709_000a);
    for _ in 0..CASES / 4 {
        // `sealed` runs the full engine (segments, compaction,
        // materialized rollups); `flat` never leaves its mutable head
        // (default config, tiny data), i.e. the reference fold.
        let mut sealed = TimeSeriesStore::with_config(tiny_config());
        let mut flat = TimeSeriesStore::new();
        for _ in 0..rng.next_range(1, 150) {
            let t = rng.next_bounded(6_000) as i64 - 3_000;
            let v = adversarial_value(&mut rng);
            sealed.insert("s", t, v);
            flat.insert("s", t, v);
        }
        sealed.seal_all();
        sealed.maintain();
        for _ in 0..6 {
            // Half the queries are bucket-aligned so the materialized
            // fast path actually fires; the rest take the raw fold.
            let bucket = [100, 500, rng.next_range(1, 2_000) as i64][rng.next_bounded(3) as usize];
            let from = if rng.next_bounded(2) == 0 {
                (rng.next_bounded(80) as i64 - 40) * bucket
            } else {
                rng.next_bounded(8_000) as i64 - 4_000
            };
            let to = from + rng.next_bounded(5_000) as i64;
            let agg = [
                Aggregate::Mean,
                Aggregate::Min,
                Aggregate::Max,
                Aggregate::Sum,
                Aggregate::Count,
                Aggregate::Last,
            ][rng.next_bounded(6) as usize];
            let project = |s: &TimeSeriesStore| -> Vec<(i64, u64, u64)> {
                s.downsample_counted("s", from, to, bucket, agg)
                    .into_iter()
                    .map(|b| (b.start, b.value.to_bits(), b.count))
                    .collect()
            };
            assert_eq!(
                project(&sealed),
                project(&flat),
                "downsample({from},{to},{bucket},{agg:?})"
            );
        }
    }
}

#[test]
fn csv_round_trips_arbitrary_fields() {
    let mut rng = DeterministicRng::seed_from(0x5709_0004);
    for _ in 0..CASES / 4 {
        let header: Vec<String> = (0..rng.next_range(1, 4))
            .map(|_| string_from(&mut rng, "abcdefgh", 1, 8))
            .collect();
        let width = header.len();
        let mut doc = CsvDocument::new(header);
        for _ in 0..rng.next_bounded(20) {
            let mut row: Vec<String> = (0..rng.next_range(1, 4))
                .map(|_| printable_string(&mut rng, 16))
                .collect();
            row.resize(width, String::new());
            row.truncate(width);
            doc.push(row).expect("width fixed");
        }
        assert_eq!(CsvDocument::parse(&doc.encode()).expect("round trip"), doc);
    }
}

#[test]
fn csv_parser_never_panics() {
    let mut rng = DeterministicRng::seed_from(0x5709_0005);
    for _ in 0..CASES {
        let len = rng.next_bounded(129) as usize;
        let text: String = (0..len)
            .filter_map(|_| char::from_u32(rng.next_bounded(0x500) as u32))
            .collect();
        let _ = CsvDocument::parse(&text);
    }
}

#[test]
fn fixedwidth_round_trips() {
    let mut rng = DeterministicRng::seed_from(0x5709_0006);
    for _ in 0..CASES / 4 {
        let widths: Vec<usize> = (0..rng.next_range(1, 4))
            .map(|_| rng.next_range(1, 11) as usize)
            .collect();
        let layout = RecordLayout::new(
            widths
                .iter()
                .enumerate()
                .map(|(i, &w)| FieldSpec::new(format!("f{i}"), w))
                .collect(),
        );
        let rows: Vec<Vec<String>> = (0..rng.next_bounded(10))
            .map(|_| {
                widths
                    .iter()
                    .map(|&w| {
                        // Fit the width and drop trailing spaces (they
                        // cannot survive the padding round trip).
                        string_from(&mut rng, "abcXYZ019._-", 0, 11)
                            .chars()
                            .take(w)
                            .collect::<String>()
                            .trim_end()
                            .to_owned()
                    })
                    .collect()
            })
            .collect();
        let text = layout.encode_document(&rows).expect("values fit");
        assert_eq!(layout.parse_document(&text).expect("round trip"), rows);
    }
}

#[test]
fn ini_round_trips() {
    let mut rng = DeterministicRng::seed_from(0x5709_0007);
    for _ in 0..CASES / 4 {
        let mut doc = IniDocument::new();
        for _ in 0..rng.next_bounded(5) {
            let section = string_from(&mut rng, "abcdefgh", 1, 8);
            for _ in 0..rng.next_range(1, 4) {
                let k = string_from(&mut rng, "abcdefgh", 1, 8);
                let v = string_from(&mut rng, "abcXYZ019 ._/:-", 0, 16);
                doc.set(section.clone(), k, v.trim().to_owned());
            }
        }
        assert_eq!(IniDocument::parse(&doc.encode()).expect("round trip"), doc);
    }
}

#[test]
fn table_scan_matches_manual_filter() {
    let mut rng = DeterministicRng::seed_from(0x5709_0008);
    for _ in 0..CASES / 4 {
        let values: Vec<(i64, f64)> = (0..rng.next_bounded(100))
            .map(|_| (rng.next_u64() as i64, rng.next_f64_range(-1e6, 1e6)))
            .collect();
        let pivot = rng.next_u64() as i64;
        let mut table = Table::new(
            "t",
            vec![
                Column::new("i", ColumnType::Int),
                Column::new("f", ColumnType::Float),
            ],
        );
        for &(i, f) in &values {
            table
                .insert(vec![Cell::Int(i), Cell::Float(f)])
                .expect("schema ok");
        }
        let got = table.scan(&Predicate::cmp("i", CompareOp::Ge, pivot)).len();
        let expected = values.iter().filter(|(i, _)| *i >= pivot).count();
        assert_eq!(got, expected);

        // Indexed lookup agrees with scan for any value.
        let mut indexed = table.clone();
        indexed.create_index("i").expect("column exists");
        let probe = values.first().map_or(0, |(i, _)| *i);
        assert_eq!(
            indexed
                .lookup("i", &Cell::Int(probe))
                .expect("indexed")
                .len(),
            table.scan(&Predicate::eq("i", probe)).len()
        );
    }
}
