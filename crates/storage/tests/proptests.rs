//! Property-based tests on the storage substrates.

use proptest::prelude::*;
use storage::legacy::csv::CsvDocument;
use storage::legacy::fixedwidth::{FieldSpec, RecordLayout};
use storage::legacy::ini::IniDocument;
use storage::table::{Cell, Column, ColumnType, CompareOp, Predicate, Table};
use storage::tskv::{Aggregate, TimeSeriesStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tskv_range_equals_filter(
        points in prop::collection::vec((any::<i32>(), -1e6f64..1e6), 0..200),
        from in any::<i32>(),
        len in 0i64..1_000_000,
    ) {
        let mut store = TimeSeriesStore::new();
        let mut reference = std::collections::BTreeMap::new();
        for &(t, v) in &points {
            store.insert("s", i64::from(t), v);
            reference.insert(i64::from(t), v);
        }
        let from = i64::from(from);
        let to = from + len;
        let got = store.range("s", from, to);
        let expected: Vec<(i64, f64)> = reference
            .range(from..to)
            .map(|(&t, &v)| (t, v))
            .collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(store.series_len("s"), reference.len());
    }

    #[test]
    fn tskv_downsample_conserves_count(
        points in prop::collection::vec((0i64..100_000, -1e3f64..1e3), 1..200),
        bucket in 1i64..10_000,
    ) {
        let mut store = TimeSeriesStore::new();
        for &(t, v) in &points {
            store.insert("s", t, v);
        }
        let total = store.series_len("s");
        let counted: f64 = store
            .downsample("s", 0, 100_000, bucket, Aggregate::Count)
            .iter()
            .map(|(_, c)| c)
            .sum();
        prop_assert_eq!(counted as usize, total);
        // Mean of each bucket lies within [min, max] of that bucket.
        let means = store.downsample("s", 0, 100_000, bucket, Aggregate::Mean);
        let mins = store.downsample("s", 0, 100_000, bucket, Aggregate::Min);
        let maxs = store.downsample("s", 0, 100_000, bucket, Aggregate::Max);
        for ((tm, mean), ((_, lo), (_, hi))) in
            means.iter().zip(mins.iter().zip(maxs.iter()))
        {
            prop_assert!(lo - 1e-9 <= *mean && *mean <= hi + 1e-9, "bucket {tm}");
        }
    }

    #[test]
    fn tskv_retention_keeps_only_newer(
        points in prop::collection::vec((any::<i16>(), 0.0f64..1.0), 0..100),
        horizon in any::<i16>(),
    ) {
        let mut store = TimeSeriesStore::new();
        for &(t, v) in &points {
            store.insert("s", i64::from(t), v);
        }
        let before = store.series_len("s");
        let removed = store.apply_retention(i64::from(horizon));
        prop_assert_eq!(store.len() + removed, before);
        for (t, _) in store.range("s", i64::MIN, i64::MAX) {
            prop_assert!(t >= i64::from(horizon));
        }
    }

    #[test]
    fn csv_round_trips_arbitrary_fields(
        header in prop::collection::vec("[a-z]{1,8}", 1..5),
        rows in prop::collection::vec(prop::collection::vec("\\PC{0,16}", 1..5), 0..20),
    ) {
        let width = header.len();
        let mut doc = CsvDocument::new(header);
        for mut row in rows {
            row.resize(width, String::new());
            doc.push(row).expect("width fixed");
        }
        prop_assert_eq!(CsvDocument::parse(&doc.encode()).expect("round trip"), doc);
    }

    #[test]
    fn csv_parser_never_panics(text in "\\PC{0,128}") {
        let _ = CsvDocument::parse(&text);
    }

    #[test]
    fn fixedwidth_round_trips(
        widths in prop::collection::vec(1usize..12, 1..5),
        seed_rows in prop::collection::vec(prop::collection::vec("[a-zA-Z0-9._-]{0,11}", 1..5), 0..10),
    ) {
        let layout = RecordLayout::new(
            widths
                .iter()
                .enumerate()
                .map(|(i, &w)| FieldSpec::new(format!("f{i}"), w))
                .collect(),
        );
        let rows: Vec<Vec<String>> = seed_rows
            .into_iter()
            .map(|mut row| {
                row.resize(widths.len(), String::new());
                row.iter()
                    .zip(&widths)
                    .map(|(value, &w)| {
                        // Truncate to width and drop trailing spaces (they
                        // cannot survive the padding round trip).
                        value.chars().take(w).collect::<String>().trim_end().to_owned()
                    })
                    .collect()
            })
            .collect();
        let text = layout.encode_document(&rows).expect("values fit");
        prop_assert_eq!(layout.parse_document(&text).expect("round trip"), rows);
    }

    #[test]
    fn ini_round_trips(
        entries in prop::collection::btree_map(
            "[a-z]{1,8}",
            prop::collection::btree_map("[a-z]{1,8}", "[a-zA-Z0-9 ._/:-]{0,16}", 1..5),
            0..5,
        ),
    ) {
        let mut doc = IniDocument::new();
        for (section, kv) in &entries {
            for (k, v) in kv {
                doc.set(section.clone(), k.clone(), v.trim().to_owned());
            }
        }
        prop_assert_eq!(IniDocument::parse(&doc.encode()).expect("round trip"), doc);
    }

    #[test]
    fn table_scan_matches_manual_filter(
        values in prop::collection::vec((any::<i64>(), -1e6f64..1e6), 0..100),
        pivot in any::<i64>(),
    ) {
        let mut table = Table::new(
            "t",
            vec![
                Column::new("i", ColumnType::Int),
                Column::new("f", ColumnType::Float),
            ],
        );
        for &(i, f) in &values {
            table.insert(vec![Cell::Int(i), Cell::Float(f)]).expect("schema ok");
        }
        let got = table
            .scan(&Predicate::cmp("i", CompareOp::Ge, pivot))
            .len();
        let expected = values.iter().filter(|(i, _)| *i >= pivot).count();
        prop_assert_eq!(got, expected);

        // Indexed lookup agrees with scan for any value.
        let mut indexed = table.clone();
        indexed.create_index("i").expect("column exists");
        let probe = values.first().map_or(0, |(i, _)| *i);
        prop_assert_eq!(
            indexed.lookup("i", &Cell::Int(probe)).expect("indexed").len(),
            table.scan(&Predicate::eq("i", probe)).len()
        );
    }
}
