//! Small statistics helpers for experiment reporting.
//!
//! Experiments accumulate observations (latencies, sizes, counts) into a
//! [`Summary`] and read back mean/min/max/percentiles. Nothing here is
//! simulation-specific; the type lives in `simnet` because every layer of
//! the stack reports through it.

use std::cell::RefCell;
use std::fmt;

use crate::time::SimDuration;

/// An online collection of `f64` observations with exact quantiles.
///
/// Observations are stored; `percentile` sorts lazily on the first query
/// and caches the sorted order until the next `record`, so repeated
/// percentile reads (e.g. a p50/p95/p99 report line) sort only once.
///
/// **Memory caveat:** every observation is kept, so memory grows without
/// bound with the number of points. This is intended for experiment
/// harnesses reporting *exact* quantiles over thousands to a few million
/// points. Hot paths that record unboundedly should use the fixed-memory
/// log-bucketed [`telemetry::Histogram`](telemetry::metrics::Histogram)
/// (±6% quantile error) instead.
///
/// ```
/// use simnet::stats::Summary;
/// let mut s = Summary::new("latency_ms");
/// for x in [1.0, 2.0, 3.0, 4.0, 5.0] { s.record(x); }
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.percentile(50.0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    name: String,
    values: Vec<f64>,
    /// Sorted copy of `values`, built lazily by `percentile` and
    /// invalidated by `record`. Interior mutability keeps `percentile`
    /// callable through `&self` (as the `Display` impl requires).
    sorted: RefCell<Option<Vec<f64>>>,
}

impl PartialEq for Summary {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state; equality is name + observations.
        self.name == other.name && self.values == other.values
    }
}

impl Summary {
    /// Creates an empty summary labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Summary {
            name: name.into(),
            values: Vec::new(),
            sorted: RefCell::new(None),
        }
    }

    /// The label given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.values.push(value);
        *self.sorted.get_mut() = None;
    }

    /// Records a duration in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Smallest observation, or 0 for an empty summary.
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_or_zero()
    }

    /// Largest observation, or 0 for an empty summary.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_or_zero()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Population standard deviation, or 0 with fewer than two points.
    pub fn stddev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// Returns 0 for an empty summary.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut sorted = self.values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            sorted
        });
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    /// Convenience accessor for the median.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

trait OrZero {
    fn min_or_zero(self) -> f64;
    fn max_or_zero(self) -> f64;
}

impl OrZero for f64 {
    fn min_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.name,
            self.count(),
            self.mean(),
            self.min(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

/// A monotonically increasing named counter.
///
/// ```
/// use simnet::stats::Counter;
/// let mut c = Counter::new("requests");
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The label given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
    }

    #[test]
    fn moments() {
        let mut s = Summary::new("x");
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new("x");
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.median() - 50.0).abs() <= 1.0);
    }

    #[test]
    fn percentile_cache_invalidates_on_record() {
        let mut s = Summary::new("x");
        s.record(1.0);
        assert_eq!(s.percentile(100.0), 1.0);
        // A record after a percentile query must invalidate the cached
        // sorted order.
        s.record(5.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        // Cache state does not affect equality.
        let mut other = Summary::new("x");
        other.record(1.0);
        other.record(5.0);
        assert_eq!(s, other);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new("x").record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        Summary::new("x").percentile(150.0);
    }

    #[test]
    fn display_formats() {
        let mut s = Summary::new("lat");
        s.record(1.0);
        let text = s.to_string();
        assert!(text.starts_with("lat: n=1"));
        let mut c = Counter::new("req");
        c.incr();
        assert_eq!(c.to_string(), "req=1");
    }

    #[test]
    fn record_duration_uses_millis() {
        let mut s = Summary::new("lat");
        s.record_duration(SimDuration::from_millis(250));
        assert_eq!(s.mean(), 250.0);
    }
}
