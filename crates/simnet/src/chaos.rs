//! Declarative fault injection: [`FaultPlan`] schedules of crashes,
//! restarts, partitions, latency spikes and link flaps, applied to a
//! running [`Simulator`] by a [`ChaosRunner`].
//!
//! The simulator provides the primitives ([`Simulator::crash`],
//! [`Simulator::restart`], [`Simulator::partition`], [`Simulator::heal`],
//! [`Simulator::set_link`]); this module layers a schedule on top. Plans
//! are either written out explicitly (the `e10_chaos` experiment) or
//! generated from configurable rates under a seed
//! ([`FaultPlan::random`]), so a chaos run replays identically.
//!
//! Every injected fault is counted under a `chaos.*` metric and recorded
//! into the telemetry trace stream, which makes a run fully
//! reconstructable from its `DIMMER_TRACE` output.
//!
//! ```
//! use simnet::chaos::{ChaosRunner, Fault, FaultPlan};
//! use simnet::{SimConfig, SimDuration, SimTime, Simulator};
//! # use simnet::{Context, Node, Packet};
//! # struct Quiet;
//! # impl Node for Quiet { fn on_packet(&mut self, _: &mut Context<'_>, _: Packet) {} }
//!
//! let mut sim = Simulator::new(SimConfig::default());
//! let broker = sim.add_node("broker", Quiet);
//! let plan = FaultPlan::new()
//!     .at(
//!         SimTime::from_secs(60),
//!         Fault::CrashFor { node: broker, down: SimDuration::from_secs(30) },
//!     )
//!     .at(SimTime::from_secs(180), Fault::Heal);
//! let mut chaos = ChaosRunner::new(plan);
//! chaos.run_until(&mut sim, SimTime::from_secs(300));
//! assert_eq!(chaos.faults_injected(), 2);
//! ```

use crate::link::LinkModel;
use crate::node::NodeId;
use crate::rng::DeterministicRng;
use crate::sim::Simulator;
use crate::time::{SimDuration, SimTime};

/// Anything a [`ChaosRunner`] can inject faults into: a stand-alone
/// [`Simulator`] or a sharded
/// [`ParallelSimulator`](crate::parallel::ParallelSimulator). The
/// parallel implementation routes each primitive to the owning shard
/// (or fans it out to all shards, for partitions), so one fault plan
/// replays identically at any shard/thread combination.
pub trait FaultTarget {
    /// The current virtual time.
    fn now(&self) -> SimTime;
    /// Runs the simulation until `deadline`.
    fn run_until(&mut self, deadline: SimTime);
    /// Crashes a node (see [`Simulator::crash`]).
    fn crash(&mut self, id: NodeId);
    /// Schedules a crashed node's restart (see [`Simulator::restart`]).
    fn restart(&mut self, id: NodeId, after: SimDuration);
    /// Partitions the network (see [`Simulator::partition`]).
    fn partition(&mut self, groups: Vec<Vec<NodeId>>);
    /// Lifts the active partition (see [`Simulator::heal`]).
    fn heal(&mut self);
    /// Overrides the `src → dst` link model.
    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, model: LinkModel);
    /// The link model in effect from `src` to `dst` (owned, so sharded
    /// targets can answer without lending internal borrows).
    fn link_model(&self, src: NodeId, dst: NodeId) -> LinkModel;
    /// The node's gray-failure slowdown factor.
    fn node_slowdown(&self, id: NodeId) -> f64;
    /// Sets the node's gray-failure slowdown factor.
    fn set_node_slowdown(&mut self, id: NodeId, factor: f64);
    /// Records a custom fault event into the telemetry trace stream.
    fn record_fault(&self, kind: &str, detail: String);
}

impl FaultTarget for Simulator {
    fn now(&self) -> SimTime {
        Simulator::now(self)
    }

    fn run_until(&mut self, deadline: SimTime) {
        Simulator::run_until(self, deadline);
    }

    fn crash(&mut self, id: NodeId) {
        Simulator::crash(self, id);
    }

    fn restart(&mut self, id: NodeId, after: SimDuration) {
        Simulator::restart(self, id, after);
    }

    fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        Simulator::partition(self, groups);
    }

    fn heal(&mut self) {
        Simulator::heal(self);
    }

    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, model: LinkModel) {
        Simulator::set_link_directed(self, src, dst, model);
    }

    fn link_model(&self, src: NodeId, dst: NodeId) -> LinkModel {
        self.link(src, dst).clone()
    }

    fn node_slowdown(&self, id: NodeId) -> f64 {
        Simulator::node_slowdown(self, id)
    }

    fn set_node_slowdown(&mut self, id: NodeId, factor: f64) {
        Simulator::set_node_slowdown(self, id, factor);
    }

    fn record_fault(&self, kind: &str, detail: String) {
        Simulator::record_fault(self, kind, detail);
    }
}

/// One injectable fault.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Crash a node; it stays down until an explicit [`Fault::Restart`].
    Crash {
        /// The victim.
        node: NodeId,
    },
    /// Bring a crashed node back up (runs its `on_restart` hook).
    Restart {
        /// The node to revive.
        node: NodeId,
    },
    /// Crash a node and bring it back up `down` later.
    CrashFor {
        /// The victim.
        node: NodeId,
        /// How long it stays down.
        down: SimDuration,
    },
    /// Partition the network into groups (see [`Simulator::partition`]).
    Partition {
        /// The groups; cross-group packets are dropped.
        groups: Vec<Vec<NodeId>>,
    },
    /// Lift the active partition.
    Heal,
    /// Replace the `a`↔`b` link with a total-loss link for `down`, then
    /// restore the previous models.
    LinkFlap {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Outage duration.
        down: SimDuration,
    },
    /// Add `extra` latency to the `a`↔`b` link for `duration`, then
    /// restore the previous models.
    LatencySpike {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Added one-way latency.
        extra: SimDuration,
        /// Spike duration.
        duration: SimDuration,
    },
    /// Gray-fail a node: multiply every delay on paths it terminates by
    /// `factor` for `duration`, then restore normal service. The node
    /// never stops answering — it just answers late, which is the
    /// failure mode liveness probes miss (see
    /// [`Simulator::set_node_slowdown`]).
    SlowNode {
        /// The victim.
        node: NodeId,
        /// Service-delay multiplier (e.g. `50.0` = fifty times slower).
        factor: f64,
        /// How long the node stays slow.
        duration: SimDuration,
    },
    /// Raise the `a`↔`b` loss probability to `loss` for `duration`,
    /// then restore the previous models (latency and bandwidth are
    /// preserved, so the link degrades rather than disappearing).
    LossyLink {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Packet-loss probability while degraded, in `[0, 1]`.
        loss: f64,
        /// Degradation duration.
        duration: SimDuration,
    },
    /// A flapping link: `cycles` consecutive `down`-long outages of the
    /// `a`↔`b` link separated by `up`-long healthy gaps. Expanded at
    /// plan time into `cycles` [`Fault::LinkFlap`]s (each counted as an
    /// injected fault).
    Flapping {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Outage length of each cycle.
        down: SimDuration,
        /// Healthy gap between outages.
        up: SimDuration,
        /// Number of down/up cycles.
        cycles: u32,
    },
}

/// A fault and the instant it is injected.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Injection time.
    pub at: SimTime,
    /// The fault.
    pub fault: Fault,
}

/// Configuration for seeded random fault injection
/// ([`FaultPlan::random`]). Rates are per hour of virtual time.
#[derive(Debug, Clone, Default)]
pub struct RandomFaults {
    /// Nodes eligible for crash/restart cycles.
    pub crash_targets: Vec<NodeId>,
    /// Expected crashes per target per hour.
    pub crashes_per_hour: f64,
    /// Mean downtime of a crash (actual downtime is jittered ±50%).
    pub mean_downtime: SimDuration,
    /// Node pairs eligible for link flaps.
    pub flap_pairs: Vec<(NodeId, NodeId)>,
    /// Expected flaps per pair per hour.
    pub flaps_per_hour: f64,
    /// Mean flap outage (actual outage is jittered ±50%).
    pub mean_flap: SimDuration,
    /// Nodes eligible for gray-failure slowdowns ([`Fault::SlowNode`]).
    pub slow_targets: Vec<NodeId>,
    /// Expected slowdowns per target per hour.
    pub slows_per_hour: f64,
    /// Mean slowdown episode length (jittered ±50%).
    pub mean_slow: SimDuration,
    /// Service-delay multiplier of an injected slowdown.
    pub slow_factor: f64,
}

/// A time-ordered schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at `at` (builder style). Events may be added in any
    /// order; the runner sorts them.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push(FaultEvent { at, fault });
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events (unsorted, in insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Generates a plan over `[0, horizon)` from per-hour rates,
    /// deterministically under `seed`. Crash counts follow the expected
    /// value (fractional parts resolved by a biased coin), times are
    /// uniform, durations jittered ±50% around their means.
    pub fn random(seed: u64, horizon: SimDuration, cfg: &RandomFaults) -> Self {
        let mut rng = DeterministicRng::seed_from(seed);
        let hours = horizon.as_secs_f64() / 3600.0;
        let mut plan = FaultPlan::new();
        let draw_count = |rng: &mut DeterministicRng, rate: f64| -> u32 {
            let expected = rate * hours;
            let mut n = expected.floor() as u32;
            if rng.chance(expected.fract()) {
                n += 1;
            }
            n
        };
        for &node in &cfg.crash_targets {
            for _ in 0..draw_count(&mut rng, cfg.crashes_per_hour) {
                let at = SimTime::from_nanos(rng.next_bounded(horizon.as_nanos().max(1)));
                let down = SimDuration::from_secs_f64(
                    cfg.mean_downtime.as_secs_f64() * rng.next_f64_range(0.5, 1.5),
                );
                plan = plan.at(at, Fault::CrashFor { node, down });
            }
        }
        for &(a, b) in &cfg.flap_pairs {
            for _ in 0..draw_count(&mut rng, cfg.flaps_per_hour) {
                let at = SimTime::from_nanos(rng.next_bounded(horizon.as_nanos().max(1)));
                let down = SimDuration::from_secs_f64(
                    cfg.mean_flap.as_secs_f64() * rng.next_f64_range(0.5, 1.5),
                );
                plan = plan.at(at, Fault::LinkFlap { a, b, down });
            }
        }
        for &node in &cfg.slow_targets {
            for _ in 0..draw_count(&mut rng, cfg.slows_per_hour) {
                let at = SimTime::from_nanos(rng.next_bounded(horizon.as_nanos().max(1)));
                let duration = SimDuration::from_secs_f64(
                    cfg.mean_slow.as_secs_f64() * rng.next_f64_range(0.5, 1.5),
                );
                plan = plan.at(
                    at,
                    Fault::SlowNode {
                        node,
                        factor: cfg.slow_factor.max(1.0),
                        duration,
                    },
                );
            }
        }
        plan
    }
}

/// A link restore scheduled by a flap or spike.
#[derive(Debug)]
struct LinkRestore {
    at: SimTime,
    a: NodeId,
    b: NodeId,
    forward: LinkModel,
    backward: LinkModel,
}

/// A slowdown restore scheduled by a [`Fault::SlowNode`].
#[derive(Debug)]
struct SlowRestore {
    at: SimTime,
    node: NodeId,
    /// The factor in effect before the fault (normally 1.0).
    factor: f64,
}

/// Applies a [`FaultPlan`] to a [`Simulator`], interleaving fault
/// injection with event processing.
///
/// The runner drives the simulator from outside (nodes cannot reach the
/// simulator), so use [`ChaosRunner::run_until`] / [`ChaosRunner::run_for`]
/// instead of the simulator's own run methods for the chaotic phase.
#[derive(Debug)]
pub struct ChaosRunner {
    events: Vec<FaultEvent>,
    next: usize,
    restores: Vec<LinkRestore>,
    slow_restores: Vec<SlowRestore>,
    injected: u64,
}

impl ChaosRunner {
    /// Creates a runner over `plan` (sorted by injection time; ties keep
    /// insertion order). [`Fault::Flapping`] events are expanded here
    /// into their individual [`Fault::LinkFlap`] cycles.
    pub fn new(plan: FaultPlan) -> Self {
        let mut events = Vec::with_capacity(plan.events.len());
        for e in plan.events {
            match e.fault {
                Fault::Flapping {
                    a,
                    b,
                    down,
                    up,
                    cycles,
                } => {
                    let period = down + up;
                    for i in 0..cycles {
                        events.push(FaultEvent {
                            at: e.at + period * u64::from(i),
                            fault: Fault::LinkFlap { a, b, down },
                        });
                    }
                }
                fault => events.push(FaultEvent { at: e.at, fault }),
            }
        }
        events.sort_by_key(|e| e.at);
        ChaosRunner {
            events,
            next: 0,
            restores: Vec::new(),
            slow_restores: Vec::new(),
            injected: 0,
        }
    }

    /// Number of faults injected so far (restores not counted).
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    /// Number of faults not yet injected.
    pub fn pending_faults(&self) -> usize {
        self.events.len() - self.next
    }

    /// Runs the simulation until `deadline`, injecting every fault (and
    /// link restore) whose time falls inside the window.
    pub fn run_until<T: FaultTarget>(&mut self, sim: &mut T, deadline: SimTime) {
        loop {
            let next_fault = self.events.get(self.next).map(|e| e.at);
            let next_restore = self
                .restores
                .iter()
                .map(|r| r.at)
                .chain(self.slow_restores.iter().map(|r| r.at))
                .min();
            let next_action = match (next_fault, next_restore) {
                (Some(f), Some(r)) => Some(f.min(r)),
                (f, r) => f.or(r),
            };
            match next_action {
                Some(at) if at <= deadline => {
                    sim.run_until(at.max(sim.now()));
                    self.apply_due(sim);
                }
                _ => {
                    sim.run_until(deadline);
                    return;
                }
            }
        }
    }

    /// Runs for `dur` of virtual time from the current instant.
    pub fn run_for<T: FaultTarget>(&mut self, sim: &mut T, dur: SimDuration) {
        let deadline = sim.now() + dur;
        self.run_until(sim, deadline);
    }

    /// Applies every fault and restore due at or before the current time.
    fn apply_due<T: FaultTarget>(&mut self, sim: &mut T) {
        let now = sim.now();
        let mut i = 0;
        while i < self.restores.len() {
            if self.restores[i].at <= now {
                let r = self.restores.swap_remove(i);
                sim.set_link_directed(r.a, r.b, r.forward);
                sim.set_link_directed(r.b, r.a, r.backward);
                sim.record_fault("chaos.link_restore", format!("a={} b={}", r.a, r.b));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.slow_restores.len() {
            if self.slow_restores[i].at <= now {
                let r = self.slow_restores.swap_remove(i);
                sim.set_node_slowdown(r.node, r.factor);
                sim.record_fault("chaos.slow_restore", format!("node={}", r.node));
            } else {
                i += 1;
            }
        }
        while self.next < self.events.len() && self.events[self.next].at <= now {
            let fault = self.events[self.next].fault.clone();
            self.next += 1;
            self.injected += 1;
            self.apply(sim, fault);
        }
    }

    fn apply<T: FaultTarget>(&mut self, sim: &mut T, fault: Fault) {
        match fault {
            Fault::Crash { node } => sim.crash(node),
            Fault::Restart { node } => sim.restart(node, SimDuration::ZERO),
            Fault::CrashFor { node, down } => {
                sim.crash(node);
                sim.restart(node, down);
            }
            Fault::Partition { groups } => sim.partition(groups),
            Fault::Heal => sim.heal(),
            Fault::LinkFlap { a, b, down } => {
                self.save_link(sim, a, b, down);
                let dead = LinkModel::builder().loss(1.0).build();
                sim.set_link_directed(a, b, dead.clone());
                sim.set_link_directed(b, a, dead);
                sim.record_fault(
                    "chaos.link_flap",
                    format!("a={a} b={b} down={:.1}s", down.as_secs_f64()),
                );
            }
            Fault::LatencySpike {
                a,
                b,
                extra,
                duration,
            } => {
                self.save_link(sim, a, b, duration);
                let spike = |m: &LinkModel| {
                    LinkModel::builder()
                        .latency(m.latency() + extra)
                        .bandwidth_bps(m.bandwidth_bps())
                        .jitter(m.jitter())
                        .loss(m.loss_probability())
                        .build()
                };
                let (fw, bw) = (spike(&sim.link_model(a, b)), spike(&sim.link_model(b, a)));
                sim.set_link_directed(a, b, fw);
                sim.set_link_directed(b, a, bw);
                sim.record_fault(
                    "chaos.latency_spike",
                    format!("a={a} b={b} extra={:.0}ms", extra.as_millis_f64()),
                );
            }
            Fault::SlowNode {
                node,
                factor,
                duration,
            } => {
                self.slow_restores.push(SlowRestore {
                    at: sim.now() + duration,
                    node,
                    factor: sim.node_slowdown(node),
                });
                sim.set_node_slowdown(node, factor);
                sim.record_fault(
                    "chaos.slow_node",
                    format!(
                        "node={node} factor={factor:.1} for={:.1}s",
                        duration.as_secs_f64()
                    ),
                );
            }
            Fault::LossyLink {
                a,
                b,
                loss,
                duration,
            } => {
                self.save_link(sim, a, b, duration);
                let degrade = |m: &LinkModel| {
                    LinkModel::builder()
                        .latency(m.latency())
                        .bandwidth_bps(m.bandwidth_bps())
                        .jitter(m.jitter())
                        .loss(loss)
                        .build()
                };
                let (fw, bw) = (
                    degrade(&sim.link_model(a, b)),
                    degrade(&sim.link_model(b, a)),
                );
                sim.set_link_directed(a, b, fw);
                sim.set_link_directed(b, a, bw);
                sim.record_fault(
                    "chaos.lossy_link",
                    format!(
                        "a={a} b={b} loss={loss:.2} for={:.1}s",
                        duration.as_secs_f64()
                    ),
                );
            }
            Fault::Flapping { .. } => {
                unreachable!("Flapping is expanded into LinkFlaps at plan time")
            }
        }
    }

    fn save_link<T: FaultTarget>(&mut self, sim: &T, a: NodeId, b: NodeId, duration: SimDuration) {
        self.restores.push(LinkRestore {
            at: sim.now() + duration,
            a,
            b,
            forward: sim.link_model(a, b),
            backward: sim.link_model(b, a),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, Node, Packet, Port, SimConfig};

    #[derive(Default)]
    struct Rx {
        got: Vec<SimTime>,
    }
    impl Node for Rx {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _pkt: Packet) {
            self.got.push(ctx.now());
        }
    }

    /// Sends one packet to `dst` every second.
    struct Ticker {
        dst: NodeId,
    }
    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), crate::TimerTag(1));
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: crate::TimerTag) {
            ctx.send(self.dst, Port::new(1), vec![1]);
            ctx.set_timer(SimDuration::from_secs(1), crate::TimerTag(1));
        }
    }

    fn ideal_sim() -> Simulator {
        Simulator::new(SimConfig {
            seed: 1,
            default_link: LinkModel::ideal(),
        })
    }

    #[test]
    fn plan_applies_in_time_order() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Rx::default());
        let _tx = sim.add_node("tx", Ticker { dst: rx });
        // Out-of-order insertion; the runner sorts.
        let plan = FaultPlan::new()
            .at(
                SimTime::from_secs(10),
                Fault::Partition {
                    groups: vec![vec![rx], vec![_tx]],
                },
            )
            .at(
                SimTime::from_secs(3),
                Fault::CrashFor {
                    node: rx,
                    down: SimDuration::from_secs(2),
                },
            )
            .at(SimTime::from_secs(15), Fault::Heal);
        let mut chaos = ChaosRunner::new(plan);
        chaos.run_until(&mut sim, SimTime::from_secs(20));
        assert_eq!(chaos.faults_injected(), 3);
        assert_eq!(chaos.pending_faults(), 0);
        let got = &sim.node_ref::<Rx>(rx).unwrap().got;
        // Down 3→5 drops the tick sent at 4 (the restart event at t=5 is
        // older than that second's tick, so the node is back up in time);
        // partitioned 10→15 drops the five ticks sent at 11..=15.
        assert_eq!(got.len(), 20 - 1 - 5, "{got:?}");
        assert_eq!(sim.metrics().packets_dropped_crashed, 1);
        assert_eq!(sim.metrics().packets_dropped_partitioned, 5);
    }

    #[test]
    fn link_flap_restores_previous_model() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Rx::default());
        let tx = sim.add_node("tx", Ticker { dst: rx });
        let custom = LinkModel::builder()
            .latency(SimDuration::from_millis(7))
            .bandwidth_bps(1_000_000)
            .build();
        sim.set_link(tx, rx, custom.clone());
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            Fault::LinkFlap {
                a: tx,
                b: rx,
                down: SimDuration::from_secs(3),
            },
        );
        let mut chaos = ChaosRunner::new(plan);
        chaos.run_until(&mut sim, SimTime::from_secs(10));
        assert_eq!(sim.link(tx, rx).latency(), custom.latency());
        assert!((sim.link(tx, rx).loss_probability() - 0.0).abs() < f64::EPSILON);
        let got = &sim.node_ref::<Rx>(rx).unwrap().got;
        // Flapped 2→5: ticks sent at 3, 4 and 5 are lost on the wire (the
        // restore lands just after the t=5 send). The t=10 tick is still
        // in flight at the deadline.
        assert_eq!(got.len(), 10 - 3 - 1, "{got:?}");
        assert!(sim.metrics().packets_lost >= 3);
    }

    #[test]
    fn latency_spike_slows_then_recovers() {
        let mut sim = Simulator::new(SimConfig {
            seed: 2,
            default_link: LinkModel::builder()
                .latency(SimDuration::from_millis(1))
                .bandwidth_bps(u64::MAX - 1)
                .build(),
        });
        let rx = sim.add_node("rx", Rx::default());
        let tx = sim.add_node("tx", Ticker { dst: rx });
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            Fault::LatencySpike {
                a: tx,
                b: rx,
                extra: SimDuration::from_millis(400),
                duration: SimDuration::from_secs(2),
            },
        );
        let mut chaos = ChaosRunner::new(plan);
        chaos.run_until(&mut sim, SimTime::from_secs(6));
        let got = &sim.node_ref::<Rx>(rx).unwrap().got;
        let slow = got
            .iter()
            .filter(|t| {
                let off_ms = t.as_nanos() % 1_000_000_000 / 1_000_000;
                off_ms > 100
            })
            .count();
        assert_eq!(slow, 2, "ticks sent at 3s and 4s ride the spike: {got:?}");
        assert_eq!(
            sim.link(tx, rx).latency(),
            SimDuration::from_millis(1),
            "restored"
        );
    }

    #[test]
    fn slow_node_stretches_then_recovers() {
        let mut sim = Simulator::new(SimConfig {
            seed: 3,
            default_link: LinkModel::builder()
                .latency(SimDuration::from_millis(10))
                .bandwidth_bps(u64::MAX - 1)
                .build(),
        });
        let rx = sim.add_node("rx", Rx::default());
        let _tx = sim.add_node("tx", Ticker { dst: rx });
        let plan = FaultPlan::new().at(
            SimTime::from_secs(2),
            Fault::SlowNode {
                node: rx,
                factor: 50.0,
                duration: SimDuration::from_secs(2),
            },
        );
        let mut chaos = ChaosRunner::new(plan);
        chaos.run_until(&mut sim, SimTime::from_secs(6));
        assert_eq!(sim.node_slowdown(rx), 1.0, "restored after the episode");
        let got = &sim.node_ref::<Rx>(rx).unwrap().got;
        // Ticks sent at 3s and 4s ride the 50× slowdown (500 ms instead
        // of 10 ms); everything else arrives promptly — the node never
        // stopped answering.
        let slow = got
            .iter()
            .filter(|t| t.as_nanos() % 1_000_000_000 / 1_000_000 > 100)
            .count();
        assert_eq!(slow, 2, "{got:?}");
        assert_eq!(got.len(), 5, "no tick is lost under gray failure");
    }

    #[test]
    fn lossy_link_degrades_then_restores() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Rx::default());
        let tx = sim.add_node("tx", Ticker { dst: rx });
        let plan = FaultPlan::new().at(
            SimTime::from_secs(1),
            Fault::LossyLink {
                a: tx,
                b: rx,
                loss: 1.0,
                duration: SimDuration::from_secs(4),
            },
        );
        let mut chaos = ChaosRunner::new(plan);
        chaos.run_until(&mut sim, SimTime::from_secs(10));
        // Total loss 1→5 drops the ticks sent at 2, 3, 4 and 5 (the
        // restore lands just after the t=5 send); the ideal link
        // delivers the rest instantly.
        assert_eq!(sim.link(tx, rx).loss_probability(), 0.0, "restored");
        let got = &sim.node_ref::<Rx>(rx).unwrap().got;
        assert_eq!(got.len(), 10 - 4, "{got:?}");
        assert_eq!(sim.metrics().packets_lost, 4);
    }

    #[test]
    fn flapping_expands_into_link_flap_cycles() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Rx::default());
        let tx = sim.add_node("tx", Ticker { dst: rx });
        let plan = FaultPlan::new().at(
            SimTime::from_secs(1),
            Fault::Flapping {
                a: tx,
                b: rx,
                down: SimDuration::from_secs(1),
                up: SimDuration::from_secs(2),
                cycles: 3,
            },
        );
        let mut chaos = ChaosRunner::new(plan);
        assert_eq!(chaos.pending_faults(), 3, "one LinkFlap per cycle");
        chaos.run_until(&mut sim, SimTime::from_secs(12));
        assert_eq!(chaos.faults_injected(), 3);
        // Down windows [1,2], [4,5], [7,8] each eat one tick (sent at
        // 2s, 5s and 8s); between the windows the link is healthy and
        // the ideal link delivers instantly.
        let got = &sim.node_ref::<Rx>(rx).unwrap().got;
        assert_eq!(got.len(), 12 - 3, "{got:?}");
        assert_eq!(sim.link(tx, rx).loss_probability(), 0.0, "restored");
    }

    #[test]
    fn random_plans_are_deterministic_and_rate_shaped() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId::from_index).collect();
        let cfg = RandomFaults {
            crash_targets: nodes.clone(),
            crashes_per_hour: 2.0,
            mean_downtime: SimDuration::from_secs(30),
            flap_pairs: vec![(nodes[0], nodes[1])],
            flaps_per_hour: 1.0,
            mean_flap: SimDuration::from_secs(10),
            ..RandomFaults::default()
        };
        let horizon = SimDuration::from_hours(1);
        let a = FaultPlan::random(42, horizon, &cfg);
        let b = FaultPlan::random(42, horizon, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at, y.at);
            assert_eq!(format!("{:?}", x.fault), format!("{:?}", y.fault));
        }
        // ~2 crashes/node/hour over 10 nodes + ~1 flap: expect 15..30.
        assert!((15..=30).contains(&a.len()), "{}", a.len());
        let c = FaultPlan::random(43, horizon, &cfg);
        assert!(
            a.events().iter().map(|e| e.at).collect::<Vec<_>>()
                != c.events().iter().map(|e| e.at).collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }
}
