//! Link quality models.
//!
//! Every ordered pair of nodes communicates over a link described by a
//! [`LinkModel`]: a base propagation latency, a serialization rate
//! (bandwidth), symmetric jitter and an independent loss probability.
//! The simulator uses the model to compute per-packet delivery delay.

use crate::rng::DeterministicRng;
use crate::time::SimDuration;

/// Describes the quality of a directed link between two nodes.
///
/// ```
/// use simnet::{LinkModel, SimDuration};
/// let wan = LinkModel::builder()
///     .latency(SimDuration::from_millis(20))
///     .bandwidth_bps(10_000_000)
///     .jitter(SimDuration::from_millis(2))
///     .loss(0.001)
///     .build();
/// assert!(wan.loss_probability() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    latency: SimDuration,
    bandwidth_bps: u64,
    jitter: SimDuration,
    loss: f64,
}

impl LinkModel {
    /// A builder starting from [`LinkModel::ideal`]: only the properties
    /// you set degrade the link.
    pub fn builder() -> LinkModelBuilder {
        LinkModelBuilder {
            inner: LinkModel::ideal(),
        }
    }

    /// An ideal link: zero latency, infinite bandwidth, no jitter, no loss.
    /// Useful in unit tests where timing is irrelevant.
    pub fn ideal() -> Self {
        LinkModel {
            latency: SimDuration::ZERO,
            bandwidth_bps: u64::MAX,
            jitter: SimDuration::ZERO,
            loss: 0.0,
        }
    }

    /// A typical wired LAN segment: 0.5 ms latency, 100 Mbit/s, light jitter.
    pub fn lan() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(500),
            bandwidth_bps: 100_000_000,
            jitter: SimDuration::from_micros(100),
            loss: 0.0,
        }
    }

    /// A metropolitan WAN hop as between district sites: 10 ms latency,
    /// 20 Mbit/s, 1 ms jitter, 0.1 % loss.
    pub fn wan() -> Self {
        LinkModel {
            latency: SimDuration::from_millis(10),
            bandwidth_bps: 20_000_000,
            jitter: SimDuration::from_millis(1),
            loss: 0.001,
        }
    }

    /// A metro backbone hop between broker shards: 5 ms latency,
    /// 1 Gbit/s, no jitter, no loss.
    ///
    /// This is the default cross-shard link of
    /// [`parallel::ParallelSimulator`](crate::parallel::ParallelSimulator);
    /// being jitter- and loss-free it contributes its full 5 ms latency
    /// as conservative lookahead.
    pub fn backbone() -> Self {
        LinkModel {
            latency: SimDuration::from_millis(5),
            bandwidth_bps: 1_000_000_000,
            jitter: SimDuration::ZERO,
            loss: 0.0,
        }
    }

    /// A low-power wireless sensor hop (802.15.4-class): 5 ms latency,
    /// 250 kbit/s, 2 ms jitter, 1 % loss.
    pub fn wireless_sensor() -> Self {
        LinkModel {
            latency: SimDuration::from_millis(5),
            bandwidth_bps: 250_000,
            jitter: SimDuration::from_millis(2),
            loss: 0.01,
        }
    }

    /// Base propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Serialization rate in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Maximum symmetric jitter added or subtracted from the latency.
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    /// Independent per-packet loss probability in `[0, 1]`.
    pub fn loss_probability(&self) -> f64 {
        self.loss
    }

    /// The earliest delay this link can ever produce, or `None` when the
    /// link drops every packet (loss ≥ 1.0) and therefore never delivers.
    ///
    /// Used by the parallel runner to derive its conservative lookahead:
    /// a cross-shard packet sampled at time `t` arrives no earlier than
    /// `t + min_delay()`.
    pub fn min_delay(&self) -> Option<SimDuration> {
        if self.loss >= 1.0 {
            return None;
        }
        Some(self.latency.saturating_sub(self.jitter))
    }

    /// Decides the fate of one packet of `wire_size` bytes: `None` if the
    /// packet is lost, otherwise the delivery delay.
    pub fn sample_delay(
        &self,
        wire_size: usize,
        rng: &mut DeterministicRng,
    ) -> Option<SimDuration> {
        if rng.chance(self.loss) {
            return None;
        }
        let serialization = if self.bandwidth_bps == u64::MAX {
            SimDuration::ZERO
        } else {
            let bits = wire_size as u128 * 8 * 1_000_000_000;
            SimDuration::from_nanos((bits / self.bandwidth_bps as u128) as u64)
        };
        let mut delay = self.latency + serialization;
        if !self.jitter.is_zero() {
            // Uniform offset in [-jitter, +jitter], clamped so the total
            // delay never goes negative.
            let offset = rng.next_range(0, 2 * self.jitter.as_nanos()) as i128
                - self.jitter.as_nanos() as i128;
            let total = delay.as_nanos() as i128 + offset;
            delay = SimDuration::from_nanos(total.max(0) as u64);
        }
        Some(delay)
    }
}

impl Default for LinkModel {
    /// The default link is [`LinkModel::lan`].
    fn default() -> Self {
        LinkModel::lan()
    }
}

/// Builder for [`LinkModel`].
#[derive(Debug, Clone)]
pub struct LinkModelBuilder {
    inner: LinkModel,
}

impl LinkModelBuilder {
    /// Sets the base propagation latency.
    pub fn latency(mut self, latency: SimDuration) -> Self {
        self.inner.latency = latency;
        self
    }

    /// Sets the serialization rate in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.inner.bandwidth_bps = bps;
        self
    }

    /// Sets the symmetric jitter bound.
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.inner.jitter = jitter;
        self
    }

    /// Sets the per-packet loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.inner.loss = p;
        self
    }

    /// Finalizes the model.
    pub fn build(self) -> LinkModel {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_delivers_instantly() {
        let mut rng = DeterministicRng::seed_from(1);
        let d = LinkModel::ideal().sample_delay(1000, &mut rng);
        assert_eq!(d, Some(SimDuration::ZERO));
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let link = LinkModel::builder()
            .latency(SimDuration::ZERO)
            .bandwidth_bps(8_000) // 1 byte per millisecond
            .build();
        let mut rng = DeterministicRng::seed_from(2);
        let d = link.sample_delay(100, &mut rng).unwrap();
        assert_eq!(d, SimDuration::from_millis(100));
    }

    #[test]
    fn latency_is_floor_without_jitter() {
        let link = LinkModel::builder()
            .latency(SimDuration::from_millis(7))
            .bandwidth_bps(u64::MAX - 1)
            .build();
        let mut rng = DeterministicRng::seed_from(3);
        let d = link.sample_delay(10, &mut rng).unwrap();
        assert!(d >= SimDuration::from_millis(7));
        assert!(d < SimDuration::from_millis(8));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let link = LinkModel::builder()
            .latency(SimDuration::from_millis(10))
            .bandwidth_bps(u64::MAX - 1)
            .jitter(SimDuration::from_millis(3))
            .build();
        let mut rng = DeterministicRng::seed_from(4);
        for _ in 0..500 {
            let d = link.sample_delay(1, &mut rng).unwrap();
            assert!(d >= SimDuration::from_millis(7), "{d}");
            assert!(
                d <= SimDuration::from_millis(13) + SimDuration::from_nanos(200),
                "{d}"
            );
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let link = LinkModel::builder().loss(1.0).build();
        let mut rng = DeterministicRng::seed_from(5);
        for _ in 0..32 {
            assert!(link.sample_delay(10, &mut rng).is_none());
        }
    }

    #[test]
    fn partial_loss_rate_roughly_observed() {
        let link = LinkModel::builder().loss(0.2).build();
        let mut rng = DeterministicRng::seed_from(6);
        let lost = (0..10_000)
            .filter(|_| link.sample_delay(10, &mut rng).is_none())
            .count();
        assert!((1_700..2_300).contains(&lost), "lost {lost}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn builder_rejects_bad_loss() {
        LinkModel::builder().loss(1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn builder_rejects_zero_bandwidth() {
        LinkModel::builder().bandwidth_bps(0);
    }
}
