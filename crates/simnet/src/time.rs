//! Virtual time for the discrete-event simulation.
//!
//! Simulated time is a count of nanoseconds since the start of the
//! simulation, wrapped in the [`SimTime`] newtype; spans between two
//! instants are [`SimDuration`]s. Both are plain `u64`s under the hood,
//! cheap to copy and totally ordered, which is what the event queue needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds since the
/// simulation started.
///
/// ```
/// use simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// ```
/// use simnet::SimDuration;
/// assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero instead of
    /// panicking when `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timer wheel
// ---------------------------------------------------------------------------

/// Number of wheel levels; deadlines beyond the top level's horizon
/// overflow into a fallback binary heap.
const WHEEL_LEVELS: usize = 3;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2 of the level-0 bucket granularity in nanoseconds (2^20 ns ≈ 1 ms).
const SHIFT0: u32 = 20;

/// Bit shift mapping a nanosecond timestamp to a bucket index at `level`.
const fn level_shift(level: usize) -> u32 {
    SHIFT0 + SLOT_BITS * level as u32
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WheelEntry {
    time_ns: u64,
    seq: u64,
    handle: u32,
}

impl WheelEntry {
    fn key(&self) -> (u64, u64) {
        (self.time_ns, self.seq)
    }
}

impl Ord for WheelEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for WheelEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A flat-`Vec`-backed hierarchical timer wheel ordering `(time, seq)`
/// keys, with a binary-heap fallback for far-future deadlines.
///
/// This is the simulator's event priority queue. The workload it is
/// built for is the city-scale hot path: hundreds of thousands of
/// short-horizon deadlines (packet deliveries a few µs–ms out,
/// keepalives and batch flushes a few seconds out) plus a thin tail of
/// far-future timers (scheduled restarts, scenario stop times).
///
/// Three levels of 64 slots cover deadlines up to ~275 s ahead of the
/// wheel cursor at granularities of ~1 ms / ~67 ms / ~4.3 s (bucket
/// widths `2^20`, `2^26`, `2^32` ns). Pushing is O(1): the entry drops
/// into the finest-grained bucket whose level can still address it,
/// or into the `far` heap beyond the top horizon. Popping advances a
/// monotone cursor: higher-level buckets cascade down as the cursor
/// reaches them, and a level-0 bucket is drained and sorted (by
/// `(time, seq)`, so the simulator's total event order is preserved
/// exactly) into a ready buffer that pops from its tail.
///
/// `pop`/`peek_time` take `&mut self` because both may advance the
/// cursor and cascade buckets; the ordering they observe is unaffected.
///
/// Entries carry an opaque `u32` handle (the event arena slot in
/// [`crate::Simulator`]); ties on `time` are broken by `seq`, which the
/// caller must keep unique and monotonically increasing — that is what
/// makes replay deterministic across this structure and the old
/// `BinaryHeap` implementation (see the differential tests below).
#[derive(Debug)]
pub struct TimerWheel {
    /// `WHEEL_LEVELS * SLOTS` buckets, index `level * SLOTS + slot`.
    slots: Vec<Vec<WheelEntry>>,
    /// One occupancy bitmap per level; bit `s` set iff bucket slot `s`
    /// is non-empty. Lets `prepare` find the next bucket in O(1).
    occupancy: [u64; WHEEL_LEVELS],
    /// Deadlines beyond the top level's horizon, min-ordered.
    far: std::collections::BinaryHeap<std::cmp::Reverse<WheelEntry>>,
    /// Drained entries sorted descending by `(time, seq)`; popped from
    /// the tail. May also receive entries pushed behind the cursor.
    ready: Vec<WheelEntry>,
    /// Monotone wheel position in nanoseconds: every entry still in a
    /// bucket or in `far` has `time_ns >= cursor_ns`.
    cursor_ns: u64,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_LEVELS * SLOTS],
            occupancy: [0; WHEEL_LEVELS],
            far: std::collections::BinaryHeap::new(),
            ready: Vec::new(),
            cursor_ns: 0,
            len: 0,
        }
    }

    /// Number of entries in the wheel.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. `seq` breaks ties on `time` and must be unique.
    pub fn push(&mut self, time: SimTime, seq: u64, handle: u32) {
        self.len += 1;
        self.insert(WheelEntry {
            time_ns: time.as_nanos(),
            seq,
            handle,
        });
    }

    /// Removes and returns the entry with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
        self.prepare();
        let e = self.ready.pop()?;
        self.len -= 1;
        Some((SimTime::from_nanos(e.time_ns), e.seq, e.handle))
    }

    /// The `time` of the entry the next [`TimerWheel::pop`] returns.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.prepare();
        self.ready.last().map(|e| SimTime::from_nanos(e.time_ns))
    }

    /// Routes an entry to the right home for the current cursor. Does
    /// not touch `len`, so cascades can reuse it for re-insertion.
    fn insert(&mut self, e: WheelEntry) {
        if e.time_ns < self.cursor_ns {
            // The bucket this would have lived in was already drained
            // (the caller schedules at >= now, but `now` can sit mid
            // bucket). Merge into the sorted ready buffer instead.
            let pos = self.ready.partition_point(|r| r.key() > e.key());
            self.ready.insert(pos, e);
            return;
        }
        for level in 0..WHEEL_LEVELS {
            let shift = level_shift(level);
            let bucket = e.time_ns >> shift;
            if bucket - (self.cursor_ns >> shift) < SLOTS as u64 {
                let slot = (bucket & (SLOTS as u64 - 1)) as usize;
                self.slots[level * SLOTS + slot].push(e);
                self.occupancy[level] |= 1 << slot;
                return;
            }
        }
        self.far.push(std::cmp::Reverse(e));
    }

    /// The smallest occupied absolute bucket index at `level`, if any.
    ///
    /// Occupied slots always lie within 64 buckets at or after the
    /// cursor, so rotating the bitmap by the cursor's slot turns
    /// "first occupied slot at/after the cursor" into a trailing-zeros
    /// count.
    fn min_bucket(&self, level: usize) -> Option<u64> {
        let occ = self.occupancy[level];
        if occ == 0 {
            return None;
        }
        let cursor_bucket = self.cursor_ns >> level_shift(level);
        let rotated = occ.rotate_right((cursor_bucket & (SLOTS as u64 - 1)) as u32);
        Some(cursor_bucket + rotated.trailing_zeros() as u64)
    }

    /// Advances the cursor until `ready` holds the next entries (or the
    /// wheel is empty): cascades higher-level buckets down, pulls `far`
    /// entries into range, and drains the winning level-0 bucket.
    fn prepare(&mut self) {
        while self.ready.is_empty() {
            // Candidate next times: per level, the start of its first
            // occupied bucket (a lower bound on its entries); for the
            // far heap, the exact head deadline.
            let mut best: Option<(u64, usize)> = None;
            for level in 0..WHEEL_LEVELS {
                if let Some(bucket) = self.min_bucket(level) {
                    let bound = bucket << level_shift(level);
                    // Ties prefer the highest level so coarse buckets
                    // cascade before a finer bucket with the same lower
                    // bound is drained.
                    if best.is_none_or(|(t, l)| bound < t || (bound == t && level > l)) {
                        best = Some((bound, level));
                    }
                }
            }
            let far_head = self.far.peek().map(|r| r.0.time_ns);
            if let Some(t_far) = far_head {
                if best.is_none_or(|(t, _)| t_far < t) {
                    // The far heap strictly leads every bucket: advance
                    // the cursor to the head's level-0 bucket and
                    // reinsert it there; the next iteration drains it.
                    let e = self.far.pop().expect("peeked entry present").0;
                    self.cursor_ns = self.cursor_ns.max((e.time_ns >> SHIFT0) << SHIFT0);
                    self.insert(e);
                    continue;
                }
            }
            let Some((bound, level)) = best else {
                return; // empty wheel
            };
            let bucket = self.min_bucket(level).expect("level is occupied");
            let slot = (bucket & (SLOTS as u64 - 1)) as usize;
            let entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupancy[level] &= !(1 << slot);
            if level > 0 {
                // Cascade: each entry re-homes at a strictly finer
                // level now that the cursor has reached its bucket.
                self.cursor_ns = self.cursor_ns.max(bound);
                for e in entries {
                    self.insert(e);
                }
                continue;
            }
            // Drain: no other bucket can hold anything earlier than
            // this level-0 bucket's end (coarser bucket bounds are
            // aligned multiples of its width, and ties cascaded above),
            // so everything due before the bucket end is here or in
            // `far`. Sweep the latter, sort once, serve from the tail.
            self.cursor_ns = (bucket + 1) << SHIFT0;
            self.ready = entries;
            while self
                .far
                .peek()
                .is_some_and(|r| r.0.time_ns < self.cursor_ns)
            {
                let e = self.far.pop().expect("peeked entry present").0;
                self.ready.push(e);
            }
            self.ready
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            return;
        }
    }
}

#[cfg(test)]
mod wheel_tests {
    use super::*;
    use crate::rng::DeterministicRng;
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};

    /// The pre-wheel implementation, kept verbatim as the differential
    /// oracle: a binary heap ordered by `(time, seq)`.
    #[derive(Default)]
    struct HeapOracle {
        heap: BinaryHeap<Reverse<WheelEntry>>,
    }

    impl HeapOracle {
        fn push(&mut self, time: SimTime, seq: u64, handle: u32) {
            self.heap.push(Reverse(WheelEntry {
                time_ns: time.as_nanos(),
                seq,
                handle,
            }));
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            self.heap
                .pop()
                .map(|Reverse(e)| (SimTime::from_nanos(e.time_ns), e.seq, e.handle))
        }
    }

    /// A spread of deadlines covering every wheel home: the current
    /// bucket, each level, and the far heap (> ~275 s horizon).
    fn random_delay(rng: &mut DeterministicRng) -> u64 {
        match rng.next_bounded(6) {
            0 => rng.next_bounded(1 << SHIFT0),         // same bucket
            1 => rng.next_bounded(1 << 26),             // level 0/1
            2 => rng.next_bounded(1 << 32),             // level 1/2
            3 => rng.next_bounded(1 << 38),             // level 2 / horizon edge
            4 => (1 << 38) + rng.next_bounded(1 << 42), // far heap
            _ => 0,                                     // immediate
        }
    }

    #[test]
    fn differential_wheel_vs_heap_random_pushes_and_pops() {
        for seed in 0..8u64 {
            let mut rng = DeterministicRng::seed_from(0xD1FF + seed);
            let mut wheel = TimerWheel::new();
            let mut oracle = HeapOracle::default();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..4000 {
                if rng.chance(0.6) || wheel.is_empty() {
                    // Push at `now + delay`; occasionally a burst of
                    // same-time entries to stress tie-breaking.
                    let t = SimTime::from_nanos(now + random_delay(&mut rng));
                    let burst = if rng.chance(0.1) {
                        rng.next_range(2, 6)
                    } else {
                        1
                    };
                    for _ in 0..burst {
                        wheel.push(t, seq, seq as u32);
                        oracle.push(t, seq, seq as u32);
                        seq += 1;
                    }
                } else {
                    let got = wheel.pop();
                    let want = oracle.pop();
                    assert_eq!(got, want, "seed {seed} diverged at seq {seq}");
                    if let Some((t, _, _)) = got {
                        // The simulator never travels backwards.
                        assert!(t.as_nanos() >= now);
                        now = t.as_nanos();
                    }
                }
                assert_eq!(wheel.len(), oracle.heap.len());
            }
            while let Some(want) = oracle.pop() {
                assert_eq!(wheel.pop(), Some(want), "seed {seed} diverged draining");
            }
            assert!(wheel.is_empty());
            assert_eq!(wheel.pop(), None);
        }
    }

    #[test]
    fn differential_with_cancellation_fires_identical_time_id_order() {
        // Mirrors the simulator's lazy cancellation: both queues skip
        // entries whose handle landed in the cancelled set, and the
        // surviving (time, id) fire order must match exactly.
        for seed in 0..4u64 {
            let mut rng = DeterministicRng::seed_from(0xCA7 + seed);
            let mut wheel = TimerWheel::new();
            let mut oracle = HeapOracle::default();
            let mut cancelled: HashSet<u32> = HashSet::new();
            let mut live: Vec<u32> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut fired = (Vec::new(), Vec::new());
            for _ in 0..3000 {
                match rng.next_bounded(10) {
                    0..=4 => {
                        let t = SimTime::from_nanos(now + random_delay(&mut rng));
                        wheel.push(t, seq, seq as u32);
                        oracle.push(t, seq, seq as u32);
                        live.push(seq as u32);
                        seq += 1;
                    }
                    5 => {
                        if let Some(&id) = rng.choose(&live) {
                            cancelled.insert(id);
                        }
                    }
                    _ => {
                        // Advance: pop a handful of entries from both.
                        for _ in 0..rng.next_range(1, 4) {
                            let a = wheel.pop();
                            let b = oracle.pop();
                            assert_eq!(a, b, "seed {seed}: queues diverged");
                            let Some((t, _, id)) = a else { break };
                            now = now.max(t.as_nanos());
                            if !cancelled.contains(&id) {
                                fired.0.push((t, id));
                            }
                            let Some((t, _, id)) = b else { break };
                            if !cancelled.contains(&id) {
                                fired.1.push((t, id));
                            }
                        }
                    }
                }
            }
            assert_eq!(fired.0, fired.1, "seed {seed}: fire order diverged");
            assert!(!fired.0.is_empty(), "seed {seed}: nothing fired");
        }
    }

    #[test]
    fn pops_in_time_order_across_all_levels_and_far_heap() {
        let mut wheel = TimerWheel::new();
        // One entry per decade of delay, pushed in shuffled order.
        let mut delays: Vec<u64> = (0..14).map(|i| 10u64.pow(i)).collect();
        delays.push(0);
        delays.push(u64::MAX); // SimTime::MAX sentinel territory
        let mut rng = DeterministicRng::seed_from(99);
        rng.shuffle(&mut delays);
        for (i, &d) in delays.iter().enumerate() {
            wheel.push(SimTime::from_nanos(d), i as u64, i as u32);
        }
        let mut last = None;
        while let Some((t, _, _)) = wheel.pop() {
            assert!(last.is_none_or(|p| p <= t), "out of order: {last:?} {t}");
            last = Some(t);
        }
        assert_eq!(last, Some(SimTime::MAX));
    }

    #[test]
    fn same_time_entries_pop_in_push_order() {
        let mut wheel = TimerWheel::new();
        let t = SimTime::from_millis(5);
        for seq in 0..100u64 {
            wheel.push(t, seq, (99 - seq) as u32);
        }
        for seq in 0..100u64 {
            assert_eq!(wheel.pop(), Some((t, seq, (99 - seq) as u32)));
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut wheel = TimerWheel::new();
        assert_eq!(wheel.peek_time(), None);
        wheel.push(SimTime::from_secs(500), 0, 0); // far heap
        wheel.push(SimTime::from_millis(1), 1, 1);
        assert_eq!(wheel.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(1), 1, 1)));
        assert_eq!(wheel.peek_time(), Some(SimTime::from_secs(500)));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(500), 0, 0)));
        assert_eq!(wheel.peek_time(), None);
    }

    #[test]
    fn push_behind_cursor_still_pops_in_order() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_millis(10), 0, 0);
        assert!(wheel.pop().is_some()); // cursor now past the 10 ms bucket
                                        // A caller scheduling "at now" lands behind the drained bucket's
                                        // end; it must merge into the ready buffer, not get lost.
        wheel.push(SimTime::from_millis(10), 1, 1);
        wheel.push(SimTime::from_millis(10), 2, 2);
        wheel.push(SimTime::from_secs(1), 3, 3);
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(10), 1, 1)));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(10), 2, 2)));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(1), 3, 3)));
        assert!(wheel.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let u = t + SimDuration::from_secs(5);
        assert_eq!(u.since(t), SimDuration::from_secs(5));
        assert_eq!(u - t, SimDuration::from_secs(5));
        assert_eq!(u - SimDuration::from_secs(15), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_future() {
        SimTime::ZERO.since(SimTime::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_negative() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn duration_mul_div() {
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }
}
