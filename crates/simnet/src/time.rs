//! Virtual time for the discrete-event simulation.
//!
//! Simulated time is a count of nanoseconds since the start of the
//! simulation, wrapped in the [`SimTime`] newtype; spans between two
//! instants are [`SimDuration`]s. Both are plain `u64`s under the hood,
//! cheap to copy and totally ordered, which is what the event queue needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds since the
/// simulation started.
///
/// ```
/// use simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// ```
/// use simnet::SimDuration;
/// assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero instead of
    /// panicking when `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let u = t + SimDuration::from_secs(5);
        assert_eq!(u.since(t), SimDuration::from_secs(5));
        assert_eq!(u - t, SimDuration::from_secs(5));
        assert_eq!(u - SimDuration::from_secs(15), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_future() {
        SimTime::ZERO.since(SimTime::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_secs_f64_rejects_negative() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn duration_mul_div() {
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }
}
