//! Request/response framing and tracking over raw packets.
//!
//! The Web-Service layer of the framework (see the `proxy` crate) is a
//! request/response protocol. This module provides the two halves every
//! node needs:
//!
//! * a tiny wire frame ([`encode_request`] / [`encode_response`] /
//!   [`decode`]) carrying a direction flag and a 64-bit correlation id;
//! * a [`RequestTracker`] that a node embeds to correlate responses with
//!   outstanding requests, with per-request timeout and bounded retry.
//!
//! The tracker is deliberately callback-free: the owning node feeds it
//! incoming packets and timer ticks and reacts to the returned
//! [`RpcEvent`]s, which keeps all state in the node where the simulator
//! can see it.

use std::collections::HashMap;

use crate::context::Context;
use crate::node::{NodeId, Packet, Port, TimerTag};
use crate::overload::RetryBudget;
use crate::time::SimDuration;

/// Direction flag + correlation id header, little-endian id.
const HEADER_LEN: usize = 9;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeRpcError {
    /// The packet is shorter than the frame header.
    Truncated,
    /// The direction byte is neither request nor response.
    BadDirection(u8),
}

impl std::fmt::Display for DecodeRpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeRpcError::Truncated => write!(f, "rpc frame truncated"),
            DecodeRpcError::BadDirection(b) => {
                write!(f, "invalid rpc direction byte {b}")
            }
        }
    }
}

impl std::error::Error for DecodeRpcError {}

/// A decoded RPC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcFrame {
    /// A request carrying the caller-chosen correlation id.
    Request {
        /// Correlation id to echo in the response.
        id: u64,
        /// Application payload.
        body: Vec<u8>,
    },
    /// A response to a previously sent request.
    Response {
        /// Correlation id of the matching request.
        id: u64,
        /// Application payload.
        body: Vec<u8>,
    },
}

/// Encodes a request frame.
pub fn encode_request(id: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(0);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Encodes a response frame.
pub fn encode_response(id: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(1);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Decodes a frame previously produced by [`encode_request`] or
/// [`encode_response`].
///
/// # Errors
///
/// Returns [`DecodeRpcError`] if the bytes are shorter than the header or
/// the direction byte is invalid.
pub fn decode(bytes: &[u8]) -> Result<RpcFrame, DecodeRpcError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeRpcError::Truncated);
    }
    let id = u64::from_le_bytes(bytes[1..9].try_into().expect("slice is 8 bytes"));
    let body = bytes[HEADER_LEN..].to_vec();
    match bytes[0] {
        0 => Ok(RpcFrame::Request { id, body }),
        1 => Ok(RpcFrame::Response { id, body }),
        b => Err(DecodeRpcError::BadDirection(b)),
    }
}

/// Events surfaced by [`RequestTracker::accept`] and
/// [`RequestTracker::on_timer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcEvent {
    /// A peer sent us a request; reply with
    /// [`RequestTracker::respond`] using the same id.
    IncomingRequest {
        /// Correlation id chosen by the requester.
        id: u64,
        /// The requesting node.
        from: NodeId,
        /// The port the request arrived on (responses go back to it).
        port: Port,
        /// Application payload.
        body: Vec<u8>,
    },
    /// A response matched one of our outstanding requests.
    ResponseReceived {
        /// Correlation id of our request.
        id: u64,
        /// Application payload.
        body: Vec<u8>,
    },
    /// An outstanding request exhausted its retries without a response.
    RequestTimedOut {
        /// Correlation id of the abandoned request.
        id: u64,
    },
}

/// Retry shaping applied by a [`RequestTracker`] to every request it
/// sends.
///
/// The default policy reproduces the original fixed-interval behaviour:
/// per-request retry budgets, a constant resend interval equal to the
/// request timeout, and no jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// When `Some`, caps (and overrides) the per-request `retries`
    /// argument of [`RequestTracker::send_request`] for every request.
    pub max_retries: Option<u32>,
    /// Multiplier applied to the resend interval per attempt
    /// (`timeout * backoff^attempt`). `1.0` keeps the interval constant;
    /// `2.0` doubles it on every retry.
    pub backoff: f64,
    /// Fractional jitter on each retry delay: a delay `d` becomes a
    /// uniform draw from `d * [1 - jitter, 1 + jitter]`. Jitter decorrelates
    /// retry storms after a partition heals or a peer restarts.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: None,
            backoff: 1.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// The delay armed after resend number `attempt` (1-based), jittered
    /// with the caller's RNG: `base * backoff^attempt`, so the wait
    /// between the original send and the first resend is `base` and each
    /// subsequent gap grows by the backoff factor.
    fn delay(
        &self,
        base: SimDuration,
        attempt: u32,
        rng: &mut crate::rng::DeterministicRng,
    ) -> SimDuration {
        let mut d = base.as_secs_f64() * self.backoff.powi(attempt as i32);
        if self.jitter > 0.0 {
            d *= rng.next_f64_range(1.0 - self.jitter, 1.0 + self.jitter);
        }
        SimDuration::from_secs_f64(d.max(0.0))
    }
}

#[derive(Debug, Clone)]
struct Pending {
    dst: NodeId,
    port: Port,
    body: Vec<u8>,
    timeout: SimDuration,
    retries_left: u32,
    /// Retry attempts already made (0 = only the original send).
    attempt: u32,
}

/// Correlates responses with requests; embeds in a [`Node`](crate::Node).
///
/// The tracker owns a contiguous range of timer tags starting at the
/// `tag_base` given to [`RequestTracker::new`]; the owning node must route
/// any timer whose tag falls in that namespace to
/// [`RequestTracker::on_timer`]. See `crates/proxy` for a complete usage.
#[derive(Debug)]
pub struct RequestTracker {
    tag_base: u64,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    policy: RetryPolicy,
    /// Optional shared retry budget: when set, every resend must claim
    /// a token, so a fleet sharing one budget cannot retry-storm even
    /// with `max_retries: None` against a partitioned target.
    budget: Option<RetryBudget>,
}

impl RequestTracker {
    /// Creates a tracker whose timers use tags `tag_base + request-id`,
    /// with the default (fixed-interval, unjittered) retry policy.
    pub fn new(tag_base: u64) -> Self {
        RequestTracker::with_policy(tag_base, RetryPolicy::default())
    }

    /// Creates a tracker with an explicit [`RetryPolicy`].
    pub fn with_policy(tag_base: u64, policy: RetryPolicy) -> Self {
        RequestTracker {
            tag_base,
            next_id: 0,
            pending: HashMap::new(),
            policy,
            budget: None,
        }
    }

    /// Attaches a shared [`RetryBudget`]: every retry (not the original
    /// send) claims one token first. A denied claim abandons the request
    /// with [`RpcEvent::RequestTimedOut`] and counts
    /// `rpc.budget_exhausted` — the global cap the per-request retry
    /// counter cannot provide.
    pub fn set_retry_budget(&mut self, budget: RetryBudget) {
        self.budget = Some(budget);
    }

    /// The attached retry budget, if any.
    pub fn retry_budget(&self) -> Option<&RetryBudget> {
        self.budget.as_ref()
    }

    /// Number of requests still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Whether request `id` is still awaiting a response.
    pub fn is_pending(&self, id: u64) -> bool {
        self.pending.contains_key(&id)
    }

    /// Forgets every outstanding request without firing events.
    ///
    /// Call from a node's `on_restart`: the crash already cancelled the
    /// retry timers, so pending entries could otherwise never resolve.
    /// Correlation ids keep increasing across the reset, which makes any
    /// late response to a pre-crash request fall on the floor.
    pub fn reset(&mut self) {
        self.pending.clear();
    }

    /// Sends `body` as a request to `dst`:`port`, arming a timeout that
    /// will retry up to `retries` times before reporting
    /// [`RpcEvent::RequestTimedOut`]. Returns the correlation id.
    pub fn send_request(
        &mut self,
        ctx: &mut Context<'_>,
        dst: NodeId,
        port: Port,
        body: Vec<u8>,
        timeout: SimDuration,
        retries: u32,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let retries = match self.policy.max_retries {
            Some(cap) => retries.min(cap),
            None => retries,
        };
        ctx.send(dst, port, encode_request(id, &body));
        ctx.set_timer(timeout, TimerTag(self.tag_base + id));
        self.pending.insert(
            id,
            Pending {
                dst,
                port,
                body,
                timeout,
                retries_left: retries,
                attempt: 0,
            },
        );
        id
    }

    /// Sends a response for a previously received request id.
    pub fn respond(&self, ctx: &mut Context<'_>, to: NodeId, port: Port, id: u64, body: &[u8]) {
        ctx.send(to, port, encode_response(id, body));
    }

    /// Feeds an incoming packet through the tracker.
    ///
    /// Returns `None` for packets that are not valid RPC frames or that
    /// answer an already-completed (or unknown) request.
    pub fn accept(&mut self, pkt: &Packet) -> Option<RpcEvent> {
        match decode(&pkt.payload).ok()? {
            RpcFrame::Request { id, body } => Some(RpcEvent::IncomingRequest {
                id,
                from: pkt.src,
                port: pkt.port,
                body,
            }),
            RpcFrame::Response { id, body } => {
                self.pending.remove(&id)?;
                Some(RpcEvent::ResponseReceived { id, body })
            }
        }
    }

    /// Feeds a fired timer through the tracker.
    ///
    /// Returns `Some(RequestTimedOut)` when a request ran out of retries,
    /// `None` when the tag is foreign, the request already completed, or a
    /// retry was transparently resent.
    pub fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) -> Option<RpcEvent> {
        let id = tag.0.checked_sub(self.tag_base)?;
        let pending = self.pending.get_mut(&id)?;
        if pending.retries_left == 0 {
            self.pending.remove(&id);
            ctx.telemetry().metrics.incr("rpc.retry_exhausted");
            return Some(RpcEvent::RequestTimedOut { id });
        }
        if let Some(budget) = &self.budget {
            let now = ctx.now();
            if !budget.try_claim(now) {
                self.pending.remove(&id);
                ctx.telemetry().metrics.incr("rpc.budget_exhausted");
                return Some(RpcEvent::RequestTimedOut { id });
            }
            ctx.telemetry()
                .metrics
                .set_gauge("rpc.budget_tokens", budget.tokens(now));
        }
        pending.retries_left -= 1;
        pending.attempt += 1;
        let (dst, port, timeout, attempt, body) = (
            pending.dst,
            pending.port,
            pending.timeout,
            pending.attempt,
            pending.body.clone(),
        );
        let delay = self.policy.delay(timeout, attempt, ctx.rng());
        ctx.send(dst, port, encode_request(id, &body));
        ctx.set_timer(delay, TimerTag(self.tag_base + id));
        None
    }

    /// Whether a timer tag belongs to this tracker's namespace.
    pub fn owns_tag(&self, tag: TimerTag) -> bool {
        tag.0 >= self.tag_base && self.pending.contains_key(&(tag.0 - self.tag_base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let req = encode_request(42, b"hello");
        assert_eq!(
            decode(&req).unwrap(),
            RpcFrame::Request {
                id: 42,
                body: b"hello".to_vec()
            }
        );
        let resp = encode_response(42, b"world");
        assert_eq!(
            decode(&resp).unwrap(),
            RpcFrame::Response {
                id: 42,
                body: b"world".to_vec()
            }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(&[0, 1]), Err(DecodeRpcError::Truncated));
        let mut bad = encode_request(1, b"x");
        bad[0] = 9;
        assert_eq!(decode(&bad), Err(DecodeRpcError::BadDirection(9)));
    }

    #[test]
    fn empty_body_allowed() {
        let req = encode_request(0, b"");
        match decode(&req).unwrap() {
            RpcFrame::Request { id, body } => {
                assert_eq!(id, 0);
                assert!(body.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Tracker behaviour is exercised end-to-end in the integration test
    // below using a real simulator.
    use crate::link::LinkModel;
    use crate::{Node, SimConfig, Simulator};

    struct Server {
        tracker: RequestTracker,
    }

    impl Node for Server {
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(RpcEvent::IncomingRequest {
                id,
                from,
                port,
                body,
            }) = self.tracker.accept(&pkt)
            {
                let mut reply = body;
                reply.reverse();
                self.tracker.respond(ctx, from, port, id, &reply);
            }
        }
    }

    struct ClientNode {
        tracker: RequestTracker,
        server: NodeId,
        responses: Vec<(u64, Vec<u8>)>,
        timeouts: Vec<u64>,
    }

    impl Node for ClientNode {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.tracker.send_request(
                ctx,
                self.server,
                Port::new(80),
                b"abc".to_vec(),
                SimDuration::from_secs(1),
                2,
            );
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(RpcEvent::ResponseReceived { id, body }) = self.tracker.accept(&pkt) {
                self.responses.push((id, body));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            if let Some(RpcEvent::RequestTimedOut { id }) = self.tracker.on_timer(ctx, tag) {
                self.timeouts.push(id);
            }
        }
    }

    #[test]
    fn request_response_over_network() {
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node(
            "server",
            Server {
                tracker: RequestTracker::new(1000),
            },
        );
        let client = sim.add_node(
            "client",
            ClientNode {
                tracker: RequestTracker::new(1000),
                server,
                responses: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(10));
        let c = sim.node_ref::<ClientNode>(client).unwrap();
        assert_eq!(c.responses, vec![(0, b"cba".to_vec())]);
        assert!(c.timeouts.is_empty());
        assert_eq!(c.tracker.outstanding(), 0);
    }

    #[test]
    fn retries_survive_a_lossy_link() {
        // 60% loss: with 5 retries the request virtually always succeeds.
        let mut sim = Simulator::new(SimConfig {
            seed: 77,
            default_link: LinkModel::builder().loss(0.6).build(),
        });
        let server = sim.add_node(
            "server",
            Server {
                tracker: RequestTracker::new(1000),
            },
        );
        let mut client_node = ClientNode {
            tracker: RequestTracker::new(1000),
            server,
            responses: vec![],
            timeouts: vec![],
        };
        // More retries than the default used in on_start.
        client_node.tracker = RequestTracker::new(1000);
        let client = sim.add_node("client", client_node);
        sim.run_for(SimDuration::from_secs(60));
        let c = sim.node_ref::<ClientNode>(client).unwrap();
        assert!(
            !c.responses.is_empty() || !c.timeouts.is_empty(),
            "request must resolve one way or the other"
        );
    }

    #[test]
    fn timeout_fires_when_peer_is_silent() {
        struct Mute;
        impl Node for Mute {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node("mute", Mute);
        let client = sim.add_node(
            "client",
            ClientNode {
                tracker: RequestTracker::new(1000),
                server,
                responses: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        let c = sim.node_ref::<ClientNode>(client).unwrap();
        assert_eq!(c.timeouts, vec![0]);
        assert!(c.responses.is_empty());
    }

    #[test]
    fn owns_tag_tracks_pending_requests() {
        // Construct a tracker and inspect tag ownership around the
        // request lifecycle without a simulator (pure bookkeeping).
        let tracker = RequestTracker::new(500);
        assert!(!tracker.owns_tag(TimerTag(500)), "nothing pending yet");
        assert!(!tracker.owns_tag(TimerTag(0)), "below the namespace");
    }

    #[test]
    fn exhausted_retries_emit_a_metric_and_respect_the_policy_cap() {
        struct Mute;
        impl Node for Mute {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node("mute", Mute);
        let client = sim.add_node(
            "client",
            ClientNode {
                // The cap overrides the per-request budget of 2 retries.
                tracker: RequestTracker::with_policy(
                    1000,
                    RetryPolicy {
                        max_retries: Some(0),
                        ..RetryPolicy::default()
                    },
                ),
                server,
                responses: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(30));
        let c = sim.node_ref::<ClientNode>(client).unwrap();
        assert_eq!(c.timeouts, vec![0], "abandoned after the capped attempt");
        assert_eq!(sim.telemetry().metrics.counter("rpc.retry_exhausted"), 1);
        // With max_retries = 0 the request is sent exactly once.
        assert_eq!(sim.node_metrics(client).packets_sent, 1);
    }

    #[test]
    fn shared_retry_budget_caps_fleet_wide_retries() {
        struct Mute;
        impl Node for Mute {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        }
        // Two clients hammer a silent server with an uncapped policy;
        // a shared 3-token budget (negligible refill) bounds the total
        // resend volume across both to 3, then both abandon.
        let budget = RetryBudget::new(3.0, 1e-9);
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node("mute", Mute);
        let mut clients = Vec::new();
        for i in 0..2 {
            let mut node = ClientNode {
                tracker: RequestTracker::new(1000),
                server,
                responses: vec![],
                timeouts: vec![],
            };
            node.tracker.set_retry_budget(budget.clone());
            clients.push(sim.add_node(format!("client{i}"), node));
        }
        sim.run_for(SimDuration::from_secs(120));
        let total_sent: u64 = clients
            .iter()
            .map(|&c| sim.node_metrics(c).packets_sent)
            .sum();
        // 2 original sends + at most 3 budgeted resends.
        assert!(total_sent <= 5, "retry storm: {total_sent} packets");
        assert!(budget.exhausted() > 0);
        assert_eq!(sim.telemetry().metrics.counter("rpc.budget_exhausted"), 1);
        for &c in &clients {
            let node = sim.node_ref::<ClientNode>(c).unwrap();
            assert_eq!(node.timeouts, vec![0], "abandoned, not retried forever");
            assert_eq!(node.tracker.outstanding(), 0);
        }
    }

    #[test]
    fn backoff_and_jitter_stretch_the_retry_schedule() {
        struct Recorder {
            arrivals: Vec<crate::SimTime>,
        }
        impl Node for Recorder {
            fn on_packet(&mut self, ctx: &mut Context<'_>, _pkt: Packet) {
                self.arrivals.push(ctx.now());
            }
        }
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node("recorder", Recorder { arrivals: vec![] });
        let client = sim.add_node(
            "client",
            ClientNode {
                tracker: RequestTracker::with_policy(
                    1000,
                    RetryPolicy {
                        max_retries: None,
                        backoff: 2.0,
                        jitter: 0.2,
                    },
                ),
                server,
                responses: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(60));
        let arrivals = &sim.node_ref::<Recorder>(server).unwrap().arrivals;
        // on_start sends with timeout 1s and 2 retries: original send plus
        // two resends, then abandonment.
        assert_eq!(arrivals.len(), 3, "{arrivals:?}");
        let gap1 = arrivals[1].since(arrivals[0]).as_secs_f64();
        let gap2 = arrivals[2].since(arrivals[1]).as_secs_f64();
        // First resend after ~1s (±20%), second after ~2s (±20%).
        assert!((0.8..=1.2).contains(&gap1), "gap1={gap1}");
        assert!((1.6..=2.4).contains(&gap2), "gap2={gap2}");
        assert!(
            (gap1 - 1.0).abs() > 1e-9 || (gap2 - 2.0).abs() > 1e-9,
            "jitter should perturb at least one delay"
        );
        assert_eq!(
            sim.node_ref::<ClientNode>(client).unwrap().timeouts,
            vec![0]
        );
    }

    #[test]
    fn reset_forgets_outstanding_requests() {
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node("mute", {
            struct Mute;
            impl Node for Mute {
                fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
            }
            Mute
        });
        let client = sim.add_node(
            "client",
            ClientNode {
                tracker: RequestTracker::new(1000),
                server,
                responses: vec![],
                timeouts: vec![],
            },
        );
        sim.run_for(SimDuration::from_millis(10));
        let c = sim.node_mut::<ClientNode>(client).unwrap();
        assert_eq!(c.tracker.outstanding(), 1);
        c.tracker.reset();
        assert_eq!(c.tracker.outstanding(), 0);
        assert!(!c.tracker.owns_tag(TimerTag(1000)));
    }

    #[test]
    fn late_duplicate_response_is_ignored() {
        let mut tracker = RequestTracker::new(0);
        // Simulate a response for an id that was never pending.
        let pkt = Packet {
            src: NodeId::from_index(1),
            dst: NodeId::from_index(0),
            port: Port::new(1),
            payload: encode_response(99, b"late"),
            trace: 0,
            span: 0,
        };
        assert!(tracker.accept(&pkt).is_none());
    }
}
