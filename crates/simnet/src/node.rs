//! Node identities, packets and the [`Node`] behaviour trait.

use std::any::Any;
use std::fmt;

use crate::context::Context;

/// Identifies a node within one [`Simulator`](crate::Simulator) — or,
/// under [`parallel::ParallelSimulator`](crate::parallel::ParallelSimulator),
/// within the whole sharded simulation.
///
/// Node ids are dense indices handed out by
/// [`Simulator::add_node`](crate::Simulator::add_node) in registration
/// order, which keeps them stable across replays of the same scenario.
/// A parallel simulation tags the owning shard into the top
/// [`NodeId::SHARD_BITS`] bits, so ids stay globally unique and any
/// shard can tell local destinations from cross-shard ones without a
/// lookup; a stand-alone simulator uses shard 0 and its ids are plain
/// indices, bit-for-bit as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Bits reserved for the owning shard (max 256 shards, 16.7M nodes
    /// per shard).
    pub const SHARD_BITS: u32 = 8;
    /// Shift applied to a shard index when tagging it into an id.
    pub const SHARD_SHIFT: u32 = 32 - Self::SHARD_BITS;
    /// Mask selecting the in-shard index of an id.
    pub const LOCAL_MASK: u32 = (1 << Self::SHARD_SHIFT) - 1;

    /// The raw index of this node (shard tag included, so ids from a
    /// parallel simulation stay unique when used as flat keys).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from a raw index (e.g. after serialization).
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// The shard this id belongs to (0 for stand-alone simulators).
    pub const fn shard(self) -> usize {
        (self.0 >> Self::SHARD_SHIFT) as usize
    }

    /// The dense in-shard slot index of this id.
    pub const fn local_index(self) -> usize {
        (self.0 & Self::LOCAL_MASK) as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A service selector on a node, analogous to a UDP port.
///
/// The framework reserves a few well-known ports (see the `proxy` and
/// `pubsub` crates); applications are free to use any value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(pub u16);

impl Port {
    /// Creates a port from its raw number.
    pub const fn new(raw: u16) -> Self {
        Port(raw)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// An opaque tag carried by timers so a node can multiplex many timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimerTag(pub u64);

/// A datagram delivered between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The sending node.
    pub src: NodeId,
    /// The destination node.
    pub dst: NodeId,
    /// The destination service selector.
    pub port: Port,
    /// The opaque payload bytes (already encoded by the sender).
    pub payload: Vec<u8>,
    /// Flight-recorder trace id carried with the packet
    /// (`telemetry::NO_TRACE` = 0 when the packet is untraced). Set via
    /// [`Context::send_traced`](crate::Context::send_traced).
    pub trace: u64,
    /// Causal span of the hop that sent this packet
    /// (`telemetry::NO_SPAN` = 0 when unstructured). Receivers use it as
    /// the parent of their own spans so the flight recorder can rebuild
    /// the cross-node causal tree. Set via
    /// [`Context::send_spanned`](crate::Context::send_spanned).
    pub span: u64,
}

impl Packet {
    /// Total size charged to the link, payload plus a fixed header cost.
    ///
    /// The 32-byte header approximates the framing overhead of a small
    /// UDP/6LoWPAN datagram and keeps zero-length payloads from being free.
    pub fn wire_size(&self) -> usize {
        self.payload.len() + 32
    }
}

/// Behaviour of a simulated node.
///
/// All methods receive a [`Context`] granting access to virtual time, the
/// node's deterministic RNG, packet transmission and timers. The default
/// implementations of [`Node::on_start`] and [`Node::on_timer`] do nothing.
///
/// Implementors must be `'static` so the simulator can store them as trait
/// objects and hand references back out via downcasting
/// ([`Simulator::node_ref`](crate::Simulator::node_ref)), and `Send` so a
/// sharded parallel run can execute each shard's nodes on its own thread.
pub trait Node: Any + Send {
    /// Called once when the simulation starts (or when the node is added
    /// to an already-running simulation).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called for every packet delivered to this node.
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet);

    /// Called when a timer previously set through
    /// [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        let _ = (ctx, tag);
    }

    /// Called when the node comes back up after a
    /// [`Simulator::crash`](crate::Simulator::crash) /
    /// [`Simulator::restart`](crate::Simulator::restart) cycle.
    ///
    /// All timers armed before the crash are gone and in-flight packets
    /// addressed to the node were dropped; the node's own struct state
    /// survives. Implementors decide what is volatile (wipe it here) and
    /// what models durable storage (keep it). The default delegates to
    /// [`Node::on_start`], i.e. a restart behaves like a cold boot.
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        self.on_start(ctx);
    }

    /// Upcast helper used by the simulator for downcasting; implementors
    /// normally keep the default.
    fn as_any(&self) -> &dyn Any
    where
        Self: Sized,
    {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let id = NodeId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "n17");
    }

    #[test]
    fn packet_wire_size_includes_header() {
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            port: Port::new(5),
            payload: vec![0; 10],
            trace: 0,
            span: 0,
        };
        assert_eq!(pkt.wire_size(), 42);
    }

    #[test]
    fn port_displays_like_socket_suffix() {
        assert_eq!(Port::new(8080).to_string(), ":8080");
    }
}
