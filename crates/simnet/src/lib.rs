//! # simnet — deterministic discrete-event network simulation substrate
//!
//! The paper's infrastructure was deployed on a real district network.
//! This crate provides the substitute substrate: a deterministic
//! discrete-event simulator in which every component of the framework
//! (master node, proxies, brokers, devices, end-user clients) runs as a
//! [`Node`] exchanging [`Packet`]s over [`LinkModel`]-governed links.
//!
//! Determinism: given the same seed and the same sequence of API calls,
//! a simulation replays identically. All randomness flows from
//! [`rng::DeterministicRng`]; event ordering is total (time, then a
//! monotonically increasing sequence number).
//!
//! ## Example
//!
//! ```
//! use simnet::{Simulator, SimConfig, Node, Context, Packet, SimDuration};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
//!         ctx.send(pkt.src, pkt.port, pkt.payload);
//!     }
//! }
//!
//! struct Pinger { got: bool, peer: simnet::NodeId }
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(self.peer, simnet::Port::new(7), b"ping".to_vec());
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
//!         assert_eq!(pkt.payload, b"ping");
//!         self.got = true;
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default());
//! let echo = sim.add_node("echo", Echo);
//! let pinger = sim.add_node("pinger", Pinger { got: false, peer: echo });
//! sim.run_for(SimDuration::from_secs(1));
//! assert!(sim.node_ref::<Pinger>(pinger).unwrap().got);
//! ```

mod context;
mod event;
mod link;
mod node;
mod sim;

pub mod batch;
pub mod chaos;
pub mod overload;
pub mod parallel;
pub mod rng;
pub mod rpc;
pub mod stats;
pub mod time;

pub use chaos::FaultTarget;
pub use context::{Context, TimerId};
pub use link::{LinkModel, LinkModelBuilder};
pub use node::{Node, NodeId, Packet, Port, TimerTag};
pub use parallel::{ParallelConfig, ParallelSimulator, ParallelStats, SimHost};
pub use sim::{NetMetrics, NodeMetrics, SimConfig, Simulator};
pub use time::{SimDuration, SimTime};
// Re-export the telemetry bundle so downstream crates can name it
// without a separate dependency edge.
pub use telemetry::{self, Telemetry};
