//! The internal event queue.
//!
//! Events are totally ordered by `(time, sequence)`; the sequence number is
//! assigned at scheduling time, so two events scheduled for the same
//! instant fire in scheduling order. This total order is what makes the
//! simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{NodeId, Packet, TimerTag};
use crate::time::SimTime;

#[derive(Debug)]
pub(crate) enum EventKind {
    Deliver {
        pkt: Packet,
        /// Destination incarnation at send time; a mismatch at delivery
        /// time means the node crashed in between and the packet is lost.
        epoch: u32,
    },
    Timer {
        node: NodeId,
        tag: TimerTag,
        timer_id: u64,
        /// Node incarnation at scheduling time; a crash bumps the epoch,
        /// which silently invalidates every timer armed before it.
        epoch: u32,
    },
    Start(NodeId),
    /// Bring a crashed node back up and run its `on_restart` hook.
    Restart(NodeId),
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // exercised by tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn start(node: u32) -> EventKind {
        EventKind::Start(NodeId(node))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), start(3));
        q.push(SimTime::from_secs(1), start(1));
        q.push(SimTime::from_secs(2), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, start(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(5), start(0));
        q.push(SimTime::from_secs(4), start(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        q.pop();
        assert!(q.is_empty());
    }
}
