//! The internal event queue.
//!
//! Events are totally ordered by `(time, sequence)`; the sequence number is
//! assigned at scheduling time, so two events scheduled for the same
//! instant fire in scheduling order. This total order is what makes the
//! simulation deterministic.
//!
//! The queue is split into two flat structures instead of a
//! `BinaryHeap<Event>`: a [`TimerWheel`] ordering bare `(time, seq,
//! slot)` triples, and a slab arena holding the event payloads. Pushing
//! an event writes its [`EventKind`] into a recycled arena slot (no
//! per-event heap allocation once the arena has grown to the
//! simulation's high-water mark) and inserts a 20-byte entry into the
//! wheel. The `(time, seq)` order the wheel produces is bit-identical
//! to the old heap's, which the differential tests in
//! [`crate::time`] pin down.

use crate::node::{NodeId, Packet, TimerTag};
use crate::time::{SimTime, TimerWheel};

#[derive(Debug)]
pub(crate) enum EventKind {
    Deliver {
        pkt: Packet,
        /// Destination incarnation at send time; a mismatch at delivery
        /// time means the node crashed in between and the packet is lost.
        epoch: u32,
    },
    Timer {
        node: NodeId,
        tag: TimerTag,
        timer_id: u64,
        /// Node incarnation at scheduling time; a crash bumps the epoch,
        /// which silently invalidates every timer armed before it.
        epoch: u32,
    },
    Start(NodeId),
    /// Bring a crashed node back up and run its `on_restart` hook.
    Restart(NodeId),
}

#[derive(Debug)]
pub(crate) struct Event {
    pub time: SimTime,
    /// Position in the total `(time, seq)` order; the simulator itself
    /// only needs `time`, but tests assert on the tie-break.
    #[allow(dead_code)]
    pub seq: u64,
    pub kind: EventKind,
}

#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    wheel: TimerWheel,
    /// Event payload arena; `None` marks a free slot.
    arena: Vec<Option<EventKind>>,
    /// Recycled arena slots, reused LIFO.
    free: Vec<u32>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.arena[slot as usize] = Some(kind);
                slot
            }
            None => {
                assert!(self.arena.len() < u32::MAX as usize, "event arena overflow");
                self.arena.push(Some(kind));
                (self.arena.len() - 1) as u32
            }
        };
        self.wheel.push(time, seq, slot);
    }

    pub fn pop(&mut self) -> Option<Event> {
        let (time, seq, slot) = self.wheel.pop()?;
        let kind = self.arena[slot as usize]
            .take()
            .expect("wheel entry points at a live arena slot");
        self.free.push(slot);
        Some(Event { time, seq, kind })
    }

    /// `&mut` because peeking may cascade wheel buckets; the observable
    /// order is unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    #[allow(dead_code)] // exercised by tests
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Arena slots currently holding a pending event. Equals [`len`]
    /// unless the slab leaks; chaos tests assert it returns to zero at
    /// quiesce.
    ///
    /// [`len`]: EventQueue::len
    pub fn arena_in_use(&self) -> usize {
        self.arena.len() - self.free.len()
    }

    /// High-water mark of the arena: total slots ever grown.
    pub fn arena_capacity(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn start(node: u32) -> EventKind {
        EventKind::Start(NodeId(node))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), start(3));
        q.push(SimTime::from_secs(1), start(1));
        q.push(SimTime::from_secs(2), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, start(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Start(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_secs(5), start(0));
        q.push(SimTime::from_secs(4), start(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn arena_recycles_slots_and_drains_to_zero() {
        let mut q = EventQueue::new();
        for round in 0..5 {
            for i in 0..100 {
                q.push(SimTime::from_millis(round * 1000 + i), start(i as u32));
            }
            assert_eq!(q.arena_in_use(), 100);
            while q.pop().is_some() {}
            assert_eq!(q.arena_in_use(), 0, "slab leaked in round {round}");
            // The high-water mark is reached once and then recycled.
            assert_eq!(q.arena_capacity(), 100);
        }
    }

    #[test]
    fn seq_numbers_stay_monotonic_across_recycling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), start(0));
        q.pop();
        q.push(SimTime::from_secs(1), start(1));
        q.push(SimTime::from_secs(1), start(2));
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        assert!(a.seq < b.seq);
        assert!(matches!(a.kind, EventKind::Start(NodeId(1))));
        assert!(matches!(b.kind, EventKind::Start(NodeId(2))));
    }
}
