//! The [`Context`] handed to node callbacks.
//!
//! A context buffers the node's side effects (packet sends, timer
//! operations); the simulator applies them once the callback returns. This
//! keeps the borrow structure simple and guarantees that effects of one
//! callback are totally ordered after the event that caused them.

use crate::node::{NodeId, Port, TimerTag};
use crate::rng::DeterministicRng;
use crate::time::{SimDuration, SimTime};
use telemetry::{Telemetry, TraceId, NO_TRACE};

/// Handle to a pending timer, usable with [`Context::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

#[derive(Debug)]
pub(crate) enum Effect {
    Send {
        dst: NodeId,
        port: Port,
        payload: Vec<u8>,
        trace: TraceId,
    },
    SetTimer {
        at: SimTime,
        tag: TimerTag,
        id: u64,
    },
    CancelTimer(u64),
}

/// Execution context passed to every [`Node`](crate::Node) callback.
///
/// Grants access to virtual time, the node's own deterministic random
/// stream, packet transmission and timers.
#[derive(Debug)]
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut DeterministicRng,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) telemetry: &'a Telemetry,
}

impl Context<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this callback runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        self.rng
    }

    /// The simulation-wide telemetry handle (metrics + tracer). State is
    /// behind interior mutability, so `&self` suffices for recording.
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// Queues a packet to `dst` on `port`. Delivery time and loss are
    /// decided by the link model between the two nodes.
    pub fn send(&mut self, dst: NodeId, port: Port, payload: Vec<u8>) {
        self.send_traced(dst, port, payload, NO_TRACE);
    }

    /// Like [`Context::send`], but tags the packet with a flight-recorder
    /// trace id so its journey can be reconstructed hop by hop.
    pub fn send_traced(&mut self, dst: NodeId, port: Port, payload: Vec<u8>, trace: TraceId) {
        self.effects.push(Effect::Send {
            dst,
            port,
            payload,
            trace,
        });
    }

    /// Records a flight-recorder hop at the current node and time.
    pub fn trace_hop(&self, kind: &str, trace: TraceId, detail: impl Into<String>) {
        self.telemetry
            .tracer
            .record(self.now.as_nanos(), self.node.0, kind, trace, detail);
    }

    /// Schedules a timer to fire `after` from now, carrying `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: TimerTag) -> TimerId {
        self.set_timer_at(self.now + after, tag)
    }

    /// Schedules a timer at an absolute instant, carrying `tag`.
    ///
    /// Instants in the past fire at the current time.
    pub fn set_timer_at(&mut self, at: SimTime, tag: TimerTag) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        let at = at.max(self.now);
        self.effects.push(Effect::SetTimer { at, tag, id });
        TimerId(id)
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id.0));
    }
}
