//! The [`Context`] handed to node callbacks.
//!
//! A context buffers the node's side effects (packet sends, timer
//! operations); the simulator applies them once the callback returns. This
//! keeps the borrow structure simple and guarantees that effects of one
//! callback are totally ordered after the event that caused them.

use crate::node::{NodeId, Port, TimerTag};
use crate::rng::DeterministicRng;
use crate::time::{SimDuration, SimTime};
use telemetry::{SpanId, Telemetry, TraceId, NO_SPAN, NO_TRACE};

/// Handle to a pending timer, usable with [`Context::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

#[derive(Debug)]
pub(crate) enum Effect {
    Send {
        dst: NodeId,
        port: Port,
        payload: Vec<u8>,
        trace: TraceId,
        span: SpanId,
    },
    SetTimer {
        at: SimTime,
        tag: TimerTag,
        id: u64,
    },
    CancelTimer(u64),
}

/// Execution context passed to every [`Node`](crate::Node) callback.
///
/// Grants access to virtual time, the node's own deterministic random
/// stream, packet transmission and timers.
#[derive(Debug)]
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut DeterministicRng,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) telemetry: &'a Telemetry,
}

impl Context<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this callback runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        self.rng
    }

    /// The simulation-wide telemetry handle (metrics + tracer). State is
    /// behind interior mutability, so `&self` suffices for recording.
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// Queues a packet to `dst` on `port`. Delivery time and loss are
    /// decided by the link model between the two nodes.
    pub fn send(&mut self, dst: NodeId, port: Port, payload: Vec<u8>) {
        self.send_traced(dst, port, payload, NO_TRACE);
    }

    /// Like [`Context::send`], but tags the packet with a flight-recorder
    /// trace id so its journey can be reconstructed hop by hop.
    pub fn send_traced(&mut self, dst: NodeId, port: Port, payload: Vec<u8>, trace: TraceId) {
        self.send_spanned(dst, port, payload, trace, NO_SPAN);
    }

    /// Like [`Context::send_traced`], but also carries the causal span of
    /// the sending hop, so the receiver can parent its own spans under it
    /// and the flight recorder can rebuild the cross-node span tree.
    pub fn send_spanned(
        &mut self,
        dst: NodeId,
        port: Port,
        payload: Vec<u8>,
        trace: TraceId,
        span: SpanId,
    ) {
        self.effects.push(Effect::Send {
            dst,
            port,
            payload,
            trace,
            span,
        });
    }

    /// Records a flight-recorder hop at the current node and time, minting
    /// a root span for it (no causal parent). Returns the span id so the
    /// hop can be propagated as a parent via [`Context::send_spanned`];
    /// callers that only want the flat flight path may ignore it.
    pub fn trace_hop(&self, kind: &str, trace: TraceId, detail: impl Into<String>) -> SpanId {
        self.span_hop(kind, trace, NO_SPAN, detail)
    }

    /// Records a flight-recorder hop caused by `parent` (use
    /// [`telemetry::NO_SPAN`] for a root, or the `span` field of the
    /// packet that triggered this work). Mints and returns this hop's own
    /// span id.
    pub fn span_hop(
        &self,
        kind: &str,
        trace: TraceId,
        parent: SpanId,
        detail: impl Into<String>,
    ) -> SpanId {
        if trace == NO_TRACE {
            return NO_SPAN;
        }
        let span = self.telemetry.tracer.next_span_id();
        self.telemetry.tracer.record_span(
            self.now.as_nanos(),
            self.node.0,
            kind,
            trace,
            span,
            parent,
            detail,
        );
        span
    }

    /// Schedules a timer to fire `after` from now, carrying `tag`.
    pub fn set_timer(&mut self, after: SimDuration, tag: TimerTag) -> TimerId {
        self.set_timer_at(self.now + after, tag)
    }

    /// Schedules a timer at an absolute instant, carrying `tag`.
    ///
    /// Instants in the past fire at the current time.
    pub fn set_timer_at(&mut self, at: SimTime, tag: TimerTag) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        let at = at.max(self.now);
        self.effects.push(Effect::SetTimer { at, tag, id });
        TimerId(id)
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id.0));
    }
}
