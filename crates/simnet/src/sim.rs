//! The discrete-event [`Simulator`].

use std::collections::{HashMap, HashSet};

use crate::context::{Context, Effect};
use crate::event::{EventKind, EventQueue};
use crate::link::LinkModel;
use crate::node::{Node, NodeId, Packet, Port, TimerTag};
use crate::rng::DeterministicRng;
use crate::time::{SimDuration, SimTime};
use telemetry::Telemetry;

/// Configuration of a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed from which all simulation randomness derives.
    pub seed: u64,
    /// Link model applied to node pairs without an explicit override.
    pub default_link: LinkModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xD1_44_E2,
            default_link: LinkModel::lan(),
        }
    }
}

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Packets handed to the network by this node.
    pub packets_sent: u64,
    /// Wire bytes (payload + header) handed to the network.
    pub bytes_sent: u64,
    /// Packets delivered to this node.
    pub packets_received: u64,
    /// Wire bytes delivered to this node.
    pub bytes_received: u64,
    /// Packets this node sent that the link dropped.
    pub packets_lost: u64,
}

/// Whole-network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Total packets handed to the network.
    pub packets_sent: u64,
    /// Total packets delivered.
    pub packets_delivered: u64,
    /// Total packets dropped by links.
    pub packets_lost: u64,
    /// Total wire bytes delivered.
    pub bytes_delivered: u64,
    /// Total events processed (deliveries, timers, starts).
    pub events_processed: u64,
    /// Packets dropped because the destination was down (or rebooted
    /// between send and delivery).
    pub packets_dropped_crashed: u64,
    /// Packets dropped at the sender by an active network partition.
    pub packets_dropped_partitioned: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Node restarts completed.
    pub restarts: u64,
}

struct Slot {
    name: String,
    node: Option<Box<dyn Node>>,
    rng: DeterministicRng,
    metrics: NodeMetrics,
    /// False while the node is crashed: no packets, timers or callbacks.
    up: bool,
    /// Incarnation counter, bumped on every crash. Events carry the epoch
    /// they were scheduled under and are discarded on mismatch.
    epoch: u32,
    /// Opt-in NIC rate (bits/s): when set, the node's packets serialize
    /// through its interface one at a time in both directions. `None`
    /// (the default) keeps links as the only delay source.
    nic_bps: Option<u64>,
    /// Instant the NIC finishes transmitting the last egress packet.
    egress_free_at: SimTime,
    /// Instant the NIC finishes receiving the last ingress packet.
    ingress_free_at: SimTime,
    /// Gray-failure service-delay multiplier. 1.0 (the default for
    /// every node) leaves timing untouched; a slow node stretches every
    /// delay on paths it terminates.
    slowdown: f64,
}

/// Time a `wire_size`-byte packet occupies a `bps` NIC.
fn nic_time(wire_size: usize, bps: u64) -> SimDuration {
    let bits = wire_size as u128 * 8 * 1_000_000_000;
    SimDuration::from_nanos((bits / bps.max(1) as u128) as u64)
}

/// A packet bound for a node owned by another shard of a parallel
/// simulation. The sender computed the full delivery delay (link model,
/// sender-side slowdown, sender NIC); the destination shard applies its
/// own ingress shaping and epoch capture when the packet is injected at
/// a lookahead barrier.
#[derive(Debug)]
pub(crate) struct CrossPacket {
    /// When the sending node handed the packet to the network.
    pub(crate) sent: SimTime,
    /// Arrival instant as computed by the sender (always at least one
    /// lookahead window past `sent`).
    pub(crate) arrival: SimTime,
    /// The packet itself.
    pub(crate) pkt: Packet,
}

/// A deterministic discrete-event network simulator.
///
/// See the [crate-level documentation](crate) for a full example.
pub struct Simulator {
    now: SimTime,
    queue: EventQueue,
    slots: Vec<Slot>,
    names: HashMap<String, NodeId>,
    links: HashMap<(NodeId, NodeId), LinkModel>,
    /// Active partition groups; cross-group packets are dropped at the
    /// sender. Empty = no partition. Nodes in no group reach everyone.
    partitions: Vec<Vec<NodeId>>,
    default_link: LinkModel,
    link_rng: DeterministicRng,
    root_rng: DeterministicRng,
    cancelled_timers: HashSet<u64>,
    next_timer_id: u64,
    metrics: NetMetrics,
    telemetry: Telemetry,
    /// Shard tag minted into every id this simulator hands out. 0 for
    /// stand-alone simulators, the shard index under a
    /// [`ParallelSimulator`](crate::parallel::ParallelSimulator).
    shard: u32,
    /// Link model applied to cross-shard pairs without an explicit
    /// override (stand-alone simulators never consult it).
    cross_default_link: LinkModel,
    /// Packets addressed to other shards, accumulated between lookahead
    /// barriers and drained by the parallel runner.
    cross_egress: Vec<CrossPacket>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.slots.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    pub fn new(config: SimConfig) -> Self {
        let root_rng = DeterministicRng::seed_from(config.seed);
        let link_rng = root_rng.derive(u64::MAX);
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            slots: Vec::new(),
            names: HashMap::new(),
            links: HashMap::new(),
            partitions: Vec::new(),
            default_link: config.default_link,
            link_rng,
            root_rng,
            cancelled_timers: HashSet::new(),
            next_timer_id: 0,
            metrics: NetMetrics::default(),
            telemetry: Telemetry::new(),
            shard: 0,
            cross_default_link: LinkModel::backbone(),
            cross_egress: Vec::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The slot index of `id` when this simulator owns it, `None` when
    /// the id belongs to another shard of a parallel simulation.
    #[inline]
    fn local(&self, id: NodeId) -> Option<usize> {
        (id.0 >> NodeId::SHARD_SHIFT == self.shard).then_some((id.0 & NodeId::LOCAL_MASK) as usize)
    }

    /// Tags every id this simulator mints with `shard`. Must be called
    /// before any node is registered.
    pub(crate) fn set_shard(&mut self, shard: u32) {
        assert!(self.slots.is_empty(), "set_shard before adding nodes");
        assert!(shard < (1 << NodeId::SHARD_BITS), "shard tag out of range");
        self.shard = shard;
    }

    /// Sets the link model applied to cross-shard pairs without an
    /// explicit [`Simulator::set_link`] override.
    pub(crate) fn set_cross_default_link(&mut self, model: LinkModel) {
        self.cross_default_link = model;
    }

    /// Drains the packets addressed to other shards since the last call.
    pub(crate) fn take_cross_egress(&mut self) -> Vec<CrossPacket> {
        std::mem::take(&mut self.cross_egress)
    }

    /// The time of the earliest pending event, if any.
    pub(crate) fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Injects a cross-shard packet collected at a lookahead barrier.
    /// Destination-side ingress NIC shaping, gray-failure slowdown and
    /// incarnation-epoch capture all happen here, on the authoritative
    /// (owning) shard, so they are deterministic at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the shaped arrival lands before the shard's current
    /// time — that would mean the lookahead window was wider than the
    /// minimum cross-shard link delay, i.e. a conservative-synchrony
    /// violation.
    pub(crate) fn inject_cross(&mut self, cp: CrossPacket) {
        let CrossPacket {
            sent,
            mut arrival,
            pkt,
        } = cp;
        if let Some(slot) = self.local(pkt.dst).and_then(|i| self.slots.get_mut(i)) {
            // The sender could only apply its own slowdown factor; the
            // receiving endpoint's factor stretches the in-flight delay
            // here. Cross-shard paths therefore compound the two
            // factors instead of taking their max — conservative, and
            // identical at every thread count because it happens at the
            // (deterministic) barrier injection.
            if slot.slowdown != 1.0 {
                let delay = arrival.since(sent);
                arrival = sent
                    + SimDuration::from_nanos(
                        (delay.as_nanos() as f64 * slot.slowdown).round() as u64
                    );
            }
            if let Some(bps) = slot.nic_bps {
                let start = slot.ingress_free_at.max(arrival);
                arrival = start + nic_time(pkt.wire_size(), bps);
                slot.ingress_free_at = arrival;
            }
        }
        assert!(
            arrival >= self.now,
            "cross-shard lookahead violated: arrival {} < now {} (shard {})",
            arrival.as_nanos(),
            self.now.as_nanos(),
            self.shard
        );
        let epoch = self.epoch_of(pkt.dst);
        self.queue.push(arrival, EventKind::Deliver { pkt, epoch });
    }

    /// The number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Registers a node under a human-readable name and schedules its
    /// [`Node::on_start`] callback at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already taken.
    pub fn add_node<N: Node>(&mut self, name: impl Into<String>, node: N) -> NodeId {
        let name = name.into();
        assert!(
            !self.names.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let index = self.slots.len() as u32;
        assert!(index <= NodeId::LOCAL_MASK, "too many nodes in one shard");
        let id = NodeId((self.shard << NodeId::SHARD_SHIFT) | index);
        self.telemetry.tracer.register_node(id.0, &name);
        let rng = self.root_rng.derive(id.0 as u64);
        self.slots.push(Slot {
            name: name.clone(),
            node: Some(Box::new(node)),
            rng,
            metrics: NodeMetrics::default(),
            up: true,
            epoch: 0,
            nic_bps: None,
            egress_free_at: SimTime::ZERO,
            ingress_free_at: SimTime::ZERO,
            slowdown: 1.0,
        });
        self.names.insert(name, id);
        self.queue.push(self.now, EventKind::Start(id));
        id
    }

    /// The registration name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.slots[self.local(id).expect("foreign node id")].name
    }

    /// Looks a node up by its registration name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Borrows a node, downcast to its concrete type.
    ///
    /// Returns `None` if `id` is unknown, the node is currently executing a
    /// callback, or the concrete type does not match.
    pub fn node_ref<N: Node>(&self, id: NodeId) -> Option<&N> {
        let b = self.slots.get(self.local(id)?)?.node.as_deref()?;
        (b as &dyn std::any::Any).downcast_ref::<N>()
    }

    /// Mutably borrows a node, downcast to its concrete type.
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> Option<&mut N> {
        let i = self.local(id)?;
        let b = self.slots.get_mut(i)?.node.as_deref_mut()?;
        (b as &mut dyn std::any::Any).downcast_mut::<N>()
    }

    /// Overrides the link model for the directed pair `(a, b)` in both
    /// directions.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, model: LinkModel) {
        self.links.insert((a, b), model.clone());
        self.links.insert((b, a), model);
    }

    /// Overrides the link model for the directed pair `(src, dst)` only.
    pub fn set_link_directed(&mut self, src: NodeId, dst: NodeId, model: LinkModel) {
        self.links.insert((src, dst), model);
    }

    /// The link model in effect from `src` to `dst`. Pairs that span
    /// two shards of a parallel simulation fall back to the cross-shard
    /// default instead of the intra-shard one.
    pub fn link(&self, src: NodeId, dst: NodeId) -> &LinkModel {
        self.links.get(&(src, dst)).unwrap_or(
            if self.local(src).is_none() || self.local(dst).is_none() {
                &self.cross_default_link
            } else {
                &self.default_link
            },
        )
    }

    /// Models the node's network interface as a `bps` serializer: its
    /// packets (egress and ingress) occupy the NIC one at a time, so a
    /// node fanning out faster than its interface drains builds a real
    /// backlog. `None` (the default for every node) disables the model
    /// and keeps links as the only delay source — existing scenarios are
    /// timing-identical unless they opt in.
    ///
    /// Unknown ids are ignored.
    pub fn set_node_bandwidth(&mut self, id: NodeId, bps: Option<u64>) {
        let now = self.now;
        if let Some(slot) = self.local(id).and_then(|i| self.slots.get_mut(i)) {
            slot.nic_bps = bps;
            slot.egress_free_at = now;
            slot.ingress_free_at = now;
        }
    }

    /// The modelled NIC rate of a node, when one was set.
    pub fn node_bandwidth(&self, id: NodeId) -> Option<u64> {
        self.local(id)
            .and_then(|i| self.slots.get(i))
            .and_then(|s| s.nic_bps)
    }

    /// Models a gray-failed ("slow but up") node: every packet delay on
    /// a path that starts or ends at `id` is multiplied by `factor`.
    /// The node keeps answering — late — which is exactly the failure
    /// mode liveness probes miss. `1.0` (the default for every node)
    /// restores normal service and keeps existing scenarios
    /// timing-identical.
    ///
    /// Unknown ids are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn set_node_slowdown(&mut self, id: NodeId, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        if let Some(slot) = self.local(id).and_then(|i| self.slots.get_mut(i)) {
            slot.slowdown = factor;
        }
    }

    /// The node's current gray-failure slowdown factor (1.0 = normal).
    pub fn node_slowdown(&self, id: NodeId) -> f64 {
        self.local(id)
            .and_then(|i| self.slots.get(i))
            .map_or(1.0, |s| s.slowdown)
    }

    /// Injects a packet from outside the simulation (src = dst loopback
    /// semantics are *not* used: the packet carries the destination as its
    /// source so replies go nowhere). Mostly useful in tests.
    pub fn inject(&mut self, dst: NodeId, port: Port, payload: Vec<u8>) {
        self.queue.push(
            self.now,
            EventKind::Deliver {
                pkt: Packet {
                    src: dst,
                    dst,
                    port,
                    payload,
                    trace: 0,
                    span: 0,
                },
                epoch: self.epoch_of(dst),
            },
        );
    }

    /// Schedules a timer on `node` from outside the simulation, e.g. to
    /// kick off a scripted action at a given time.
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, tag: TimerTag) {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.queue.push(
            at.max(self.now),
            EventKind::Timer {
                node,
                tag,
                timer_id: id,
                epoch: self.epoch_of(node),
            },
        );
    }

    fn epoch_of(&self, id: NodeId) -> u32 {
        self.local(id)
            .and_then(|i| self.slots.get(i))
            .map_or(0, |s| s.epoch)
    }

    /// Whether the node is currently up (i.e. not crashed).
    ///
    /// Unknown ids report `false`.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.local(id)
            .and_then(|i| self.slots.get(i))
            .is_some_and(|s| s.up)
    }

    /// Crashes a node: from now until a [`Simulator::restart`] completes,
    /// packets addressed to it are dropped, its pending timers are
    /// silently discarded (the epoch bump invalidates them) and no
    /// callbacks run. The node's struct state is untouched — what a
    /// restart wipes or keeps is decided by
    /// [`Node::on_restart`](crate::Node::on_restart).
    ///
    /// Crashing an already-down node is a no-op. The fault is counted and
    /// recorded into the telemetry trace stream.
    pub fn crash(&mut self, id: NodeId) {
        let Some(i) = self.local(id) else { return };
        let Some(slot) = self.slots.get_mut(i) else {
            return;
        };
        if !slot.up {
            return;
        }
        slot.up = false;
        slot.epoch = slot.epoch.wrapping_add(1);
        self.metrics.crashes += 1;
        self.telemetry.metrics.incr("chaos.crash");
        let trace = self.telemetry.tracer.next_trace_id();
        self.telemetry.tracer.record(
            self.now.as_nanos(),
            id.0,
            "chaos.crash",
            trace,
            format!("node={}", self.slots[i].name),
        );
    }

    /// Schedules a crashed node to come back up `after` from now; its
    /// [`Node::on_restart`](crate::Node::on_restart) hook runs at that
    /// instant. A restart scheduled for a node that is (still or again)
    /// up when it fires is ignored.
    pub fn restart(&mut self, id: NodeId, after: SimDuration) {
        self.queue.push(self.now + after, EventKind::Restart(id));
    }

    /// Partitions the network into `groups`: packets between nodes of
    /// different groups are dropped at the sender until
    /// [`Simulator::heal`] is called. Nodes not listed in any group keep
    /// full connectivity. Replaces any previous partition.
    ///
    /// The fault is counted and recorded into the telemetry trace stream.
    pub fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        let sizes: Vec<String> = groups.iter().map(|g| g.len().to_string()).collect();
        self.partitions = groups;
        self.telemetry.metrics.incr("chaos.partition");
        let trace = self.telemetry.tracer.next_trace_id();
        self.telemetry.tracer.record(
            self.now.as_nanos(),
            u32::MAX,
            "chaos.partition",
            trace,
            format!("groups=[{}]", sizes.join(",")),
        );
    }

    /// Lifts the active partition, restoring full connectivity.
    pub fn heal(&mut self) {
        if self.partitions.is_empty() {
            return;
        }
        self.partitions.clear();
        self.telemetry.metrics.incr("chaos.heal");
        let trace = self.telemetry.tracer.next_trace_id();
        self.telemetry
            .tracer
            .record(self.now.as_nanos(), u32::MAX, "chaos.heal", trace, "");
    }

    /// Whether an active partition separates `src` from `dst`.
    pub fn partitioned(&self, src: NodeId, dst: NodeId) -> bool {
        let group_of = |n: NodeId| self.partitions.iter().position(|g| g.contains(&n));
        match (group_of(src), group_of(dst)) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }

    /// Records a custom fault-injection event into the telemetry trace
    /// stream (chaos controllers use this for faults the simulator does
    /// not apply itself, e.g. link flaps).
    pub fn record_fault(&self, kind: &str, detail: impl Into<String>) {
        self.telemetry.metrics.incr(kind);
        let trace = self.telemetry.tracer.next_trace_id();
        self.telemetry
            .tracer
            .record(self.now.as_nanos(), u32::MAX, kind, trace, detail);
    }

    /// Whole-network counters.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// The simulation-wide telemetry bundle (metrics registry, tracer).
    ///
    /// The handle is clonable and internally shared: a clone taken before
    /// a run observes everything recorded during it.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Traffic counters of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn node_metrics(&self, id: NodeId) -> NodeMetrics {
        self.slots[self.local(id).expect("foreign node id")].metrics
    }

    /// Resets all traffic counters (network-wide and per node) to zero.
    /// Useful to measure only the steady-state phase of an experiment.
    pub fn reset_metrics(&mut self) {
        self.metrics = NetMetrics::default();
        for slot in &mut self.slots {
            slot.metrics = NodeMetrics::default();
        }
    }

    /// Processes a single event, if any is pending. Returns the time of the
    /// processed event.
    pub fn step(&mut self) -> Option<SimTime> {
        let event = self.queue.pop()?;
        self.now = event.time;
        self.metrics.events_processed += 1;
        // Refresh the arena-occupancy gauge periodically (every 4096
        // events) so scrapes see queue pressure without a per-event
        // mutex hit on the registry.
        if self.metrics.events_processed & 0xFFF == 0 {
            self.telemetry
                .metrics
                .set_gauge("sim.event_arena_in_use", self.queue.arena_in_use() as f64);
            self.telemetry.metrics.set_gauge(
                "sim.event_arena_capacity",
                self.queue.arena_capacity() as f64,
            );
        }
        match event.kind {
            EventKind::Start(id) => {
                self.telemetry.metrics.incr("net.node_starts");
                if self.is_up(id) {
                    self.dispatch(id, |node, ctx| node.on_start(ctx));
                }
            }
            EventKind::Restart(id) => {
                let now = self.now;
                let Some(slot) = self.local(id).and_then(|i| self.slots.get_mut(i)) else {
                    return Some(self.now);
                };
                if !slot.up {
                    slot.up = true;
                    // A rebooted node's NIC queues died with the process.
                    slot.egress_free_at = now;
                    slot.ingress_free_at = now;
                    self.metrics.restarts += 1;
                    self.telemetry.metrics.incr("chaos.restart");
                    let trace = self.telemetry.tracer.next_trace_id();
                    let i = self.local(id).expect("just matched");
                    self.telemetry.tracer.record(
                        self.now.as_nanos(),
                        id.0,
                        "chaos.restart",
                        trace,
                        format!("node={}", self.slots[i].name),
                    );
                    self.dispatch(id, |node, ctx| node.on_restart(ctx));
                }
            }
            EventKind::Deliver { pkt, epoch } => {
                let dst = pkt.dst;
                if let Some(di) = self.local(dst).filter(|&i| i < self.slots.len()) {
                    let slot = &self.slots[di];
                    if !slot.up || slot.epoch != epoch {
                        // The destination crashed (or rebooted) while the
                        // packet was in flight: it evaporates.
                        self.metrics.packets_dropped_crashed += 1;
                        self.telemetry.metrics.incr("net.crash_drops");
                        if pkt.trace != 0 {
                            self.telemetry.tracer.record(
                                self.now.as_nanos(),
                                dst.0,
                                "net.crash_drop",
                                pkt.trace,
                                format!("from={} port={}", pkt.src, pkt.port),
                            );
                        }
                        return Some(self.now);
                    }
                    let wire = pkt.wire_size() as u64;
                    self.slots[di].metrics.packets_received += 1;
                    self.slots[di].metrics.bytes_received += wire;
                    self.metrics.packets_delivered += 1;
                    self.metrics.bytes_delivered += wire;
                    self.telemetry.metrics.incr("net.packets_delivered");
                    if pkt.trace != 0 {
                        self.telemetry.tracer.record(
                            self.now.as_nanos(),
                            dst.0,
                            "net.deliver",
                            pkt.trace,
                            format!("from={} port={} bytes={}", pkt.src, pkt.port, wire),
                        );
                    }
                    self.dispatch(dst, |node, ctx| node.on_packet(ctx, pkt));
                }
            }
            EventKind::Timer {
                node,
                tag,
                timer_id,
                epoch,
            } => {
                let stale = self
                    .local(node)
                    .and_then(|i| self.slots.get(i))
                    .is_none_or(|s| !s.up || s.epoch != epoch);
                if self.cancelled_timers.remove(&timer_id) {
                    self.telemetry.metrics.incr("net.timers_cancelled");
                } else if stale {
                    // Armed before a crash: the crash cancelled it.
                    self.telemetry.metrics.incr("net.timers_crashed");
                } else {
                    self.telemetry.metrics.incr("net.timers_fired");
                    self.dispatch(node, |n, ctx| n.on_timer(ctx, tag));
                }
            }
        }
        Some(self.now)
    }

    /// Runs until the event queue drains or virtual time would pass
    /// `deadline`; the clock ends exactly at `deadline` if it was reached.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `dur` of virtual time from the current instant.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now + dur;
        self.run_until(deadline);
    }

    /// Runs until no events remain. Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics after `max_events` events as a runaway guard.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while self.step().is_some() {
            n += 1;
            assert!(
                n <= max_events,
                "simulation did not quiesce within {max_events} events"
            );
        }
        n
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Slots of the event arena currently holding a pending event.
    ///
    /// The event queue stores payloads in a recycled slab; this must
    /// equal [`Simulator::pending_events`] at all times and return to
    /// zero when the simulation quiesces — the chaos suite asserts both
    /// to catch slab leaks.
    pub fn event_arena_in_use(&self) -> usize {
        self.queue.arena_in_use()
    }

    /// High-water mark of the event arena (total slots ever grown).
    pub fn event_arena_capacity(&self) -> usize {
        self.queue.arena_capacity()
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Context<'_>)) {
        let Some(i) = self.local(id) else { return };
        let Some(mut node) = self.slots.get_mut(i).and_then(|s| s.node.take()) else {
            return;
        };
        let mut effects = Vec::new();
        {
            let slot = &mut self.slots[i];
            let mut ctx = Context {
                now: self.now,
                node: id,
                rng: &mut slot.rng,
                effects: &mut effects,
                next_timer_id: &mut self.next_timer_id,
                telemetry: &self.telemetry,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.slots[i].node = Some(node);
        self.apply_effects(id, effects);
    }

    fn apply_effects(&mut self, src: NodeId, effects: Vec<Effect>) {
        let si = self.local(src).expect("effects come from a local node");
        for effect in effects {
            match effect {
                Effect::Send {
                    dst,
                    port,
                    payload,
                    trace,
                    span,
                } => {
                    let pkt = Packet {
                        src,
                        dst,
                        port,
                        payload,
                        trace,
                        span,
                    };
                    let wire = pkt.wire_size() as u64;
                    let m = &mut self.slots[si].metrics;
                    m.packets_sent += 1;
                    m.bytes_sent += wire;
                    self.metrics.packets_sent += 1;
                    self.telemetry.metrics.incr("net.packets_sent");
                    self.telemetry
                        .metrics
                        .observe("net.wire_bytes", wire as f64);
                    if trace != 0 {
                        self.telemetry.tracer.record(
                            self.now.as_nanos(),
                            src.0,
                            "net.send",
                            trace,
                            format!("to={} port={} bytes={}", dst, port, wire),
                        );
                    }
                    if self.partitioned(src, dst) {
                        self.metrics.packets_dropped_partitioned += 1;
                        self.telemetry.metrics.incr("net.partition_drops");
                        if trace != 0 {
                            self.telemetry.tracer.record(
                                self.now.as_nanos(),
                                src.0,
                                "net.partition_drop",
                                trace,
                                format!("to={} port={}", dst, port),
                            );
                        }
                        continue;
                    }
                    let model = if src == dst {
                        // Loopback delivery is ideal.
                        LinkModel::ideal()
                    } else {
                        self.link(src, dst).clone()
                    };
                    match model.sample_delay(pkt.wire_size(), &mut self.link_rng) {
                        Some(mut delay) => {
                            // Gray failure: the path is as slow as its
                            // slowest endpoint. With every factor at the
                            // default 1.0 this is exact identity. A
                            // cross-shard destination has no slot here;
                            // its factor is applied by the owning shard
                            // at barrier injection.
                            let dst_local = self.local(pkt.dst);
                            let factor = self.slots[si].slowdown.max(
                                dst_local
                                    .and_then(|i| self.slots.get(i))
                                    .map_or(1.0, |s| s.slowdown),
                            );
                            if factor != 1.0 {
                                delay = SimDuration::from_nanos(
                                    (delay.as_nanos() as f64 * factor).round() as u64,
                                );
                            }
                            self.telemetry
                                .metrics
                                .observe_ns("net.link_delay_ns", delay.as_nanos());
                            // NIC serialization (opt-in, loopback exempt):
                            // the packet departs once the sender's NIC is
                            // free and is delivered once the receiver's
                            // NIC has drained it.
                            let mut depart = self.now;
                            if src != dst {
                                if let Some(bps) = self.slots[si].nic_bps {
                                    let start = self.slots[si].egress_free_at.max(depart);
                                    depart = start + nic_time(pkt.wire_size(), bps);
                                    self.slots[si].egress_free_at = depart;
                                }
                            }
                            let mut arrival = depart + delay;
                            if src != dst {
                                if let Some(slot) = dst_local.and_then(|i| self.slots.get_mut(i)) {
                                    if let Some(bps) = slot.nic_bps {
                                        let start = slot.ingress_free_at.max(arrival);
                                        arrival = start + nic_time(pkt.wire_size(), bps);
                                        slot.ingress_free_at = arrival;
                                    }
                                }
                            }
                            let nic_wait = arrival - (self.now + delay);
                            if !nic_wait.is_zero() {
                                self.telemetry
                                    .metrics
                                    .observe_ns("net.nic_wait_ns", nic_wait.as_nanos());
                            }
                            if dst_local.is_none() {
                                // Another shard owns the destination:
                                // park the packet for the next lookahead
                                // barrier instead of the local queue.
                                self.cross_egress.push(CrossPacket {
                                    sent: self.now,
                                    arrival,
                                    pkt,
                                });
                            } else {
                                let epoch = self.epoch_of(pkt.dst);
                                self.queue.push(arrival, EventKind::Deliver { pkt, epoch });
                            }
                        }
                        None => {
                            self.slots[si].metrics.packets_lost += 1;
                            self.metrics.packets_lost += 1;
                            self.telemetry.metrics.incr("net.packets_lost");
                            if pkt.trace != 0 {
                                self.telemetry.tracer.record(
                                    self.now.as_nanos(),
                                    src.0,
                                    "net.drop",
                                    pkt.trace,
                                    format!("to={} port={}", pkt.dst, pkt.port),
                                );
                            }
                        }
                    }
                }
                Effect::SetTimer { at, tag, id } => {
                    let epoch = self.epoch_of(src);
                    self.queue.push(
                        at,
                        EventKind::Timer {
                            node: src,
                            tag,
                            timer_id: id,
                            epoch,
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.cancelled_timers.insert(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        packets: Vec<(SimTime, Vec<u8>)>,
        timers: Vec<(SimTime, TimerTag)>,
    }

    impl Node for Counter {
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
            self.packets.push((ctx.now(), pkt.payload));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            self.timers.push((ctx.now(), tag));
        }
    }

    struct Sender {
        dst: NodeId,
        n: u32,
    }

    impl Node for Sender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                ctx.send(self.dst, Port::new(1), vec![i as u8]);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
    }

    fn ideal_sim() -> Simulator {
        Simulator::new(SimConfig {
            seed: 1,
            default_link: LinkModel::ideal(),
        })
    }

    #[test]
    fn packets_flow_between_nodes() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let _tx = sim.add_node("tx", Sender { dst: rx, n: 3 });
        sim.run_until_idle(1000);
        let rx = sim.node_ref::<Counter>(rx).unwrap();
        assert_eq!(rx.packets.len(), 3);
        assert_eq!(rx.packets[0].1, vec![0]);
    }

    #[test]
    fn metrics_count_traffic() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let tx = sim.add_node("tx", Sender { dst: rx, n: 5 });
        sim.run_until_idle(1000);
        assert_eq!(sim.node_metrics(tx).packets_sent, 5);
        assert_eq!(sim.node_metrics(rx).packets_received, 5);
        assert_eq!(sim.metrics().packets_delivered, 5);
        sim.reset_metrics();
        assert_eq!(sim.metrics().packets_delivered, 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut sim = Simulator::new(SimConfig {
            seed: 2,
            default_link: LinkModel::builder()
                .latency(SimDuration::from_millis(10))
                .bandwidth_bps(u64::MAX - 1)
                .build(),
        });
        let rx = sim.add_node("rx", Counter::default());
        let _tx = sim.add_node("tx", Sender { dst: rx, n: 1 });
        sim.run_until_idle(1000);
        let rx = sim.node_ref::<Counter>(rx).unwrap();
        assert_eq!(
            rx.packets[0].0,
            SimTime::ZERO + SimDuration::from_millis(10)
        );
    }

    #[test]
    fn lossy_link_drops() {
        let mut sim = Simulator::new(SimConfig {
            seed: 3,
            default_link: LinkModel::builder().loss(1.0).build(),
        });
        let rx = sim.add_node("rx", Counter::default());
        let tx = sim.add_node("tx", Sender { dst: rx, n: 4 });
        sim.run_until_idle(1000);
        assert_eq!(sim.node_metrics(tx).packets_lost, 4);
        assert!(sim.node_ref::<Counter>(rx).unwrap().packets.is_empty());
    }

    struct TimerNode {
        fired: Vec<TimerTag>,
        cancel_second: bool,
    }

    impl Node for TimerNode {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), TimerTag(1));
            let t2 = ctx.set_timer(SimDuration::from_secs(2), TimerTag(2));
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_>, tag: TimerTag) {
            self.fired.push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = ideal_sim();
        let n = sim.add_node(
            "t",
            TimerNode {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.run_until_idle(100);
        assert_eq!(
            sim.node_ref::<TimerNode>(n).unwrap().fired,
            vec![TimerTag(1), TimerTag(2)]
        );
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = ideal_sim();
        let n = sim.add_node(
            "t",
            TimerNode {
                fired: vec![],
                cancel_second: true,
            },
        );
        sim.run_until_idle(100);
        assert_eq!(
            sim.node_ref::<TimerNode>(n).unwrap().fired,
            vec![TimerTag(1)]
        );
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = ideal_sim();
        sim.run_until(SimTime::from_secs(42));
        assert_eq!(sim.now(), SimTime::from_secs(42));
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut sim = Simulator::new(SimConfig {
                seed,
                default_link: LinkModel::wan(),
            });
            let rx = sim.add_node("rx", Counter::default());
            let _tx = sim.add_node("tx", Sender { dst: rx, n: 50 });
            sim.run_until_idle(10_000);
            sim.node_ref::<Counter>(rx)
                .unwrap()
                .packets
                .iter()
                .map(|(t, p)| (t.as_nanos(), p.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn find_node_by_name() {
        let mut sim = ideal_sim();
        let id = sim.add_node("alpha", Counter::default());
        assert_eq!(sim.find_node("alpha"), Some(id));
        assert_eq!(sim.node_name(id), "alpha");
        assert!(sim.find_node("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut sim = ideal_sim();
        sim.add_node("x", Counter::default());
        sim.add_node("x", Counter::default());
    }

    #[test]
    fn wrong_downcast_returns_none() {
        let mut sim = ideal_sim();
        let id = sim.add_node("x", Counter::default());
        assert!(sim.node_ref::<TimerNode>(id).is_none());
        assert!(sim.node_ref::<Counter>(id).is_some());
    }

    #[test]
    fn external_timer_injection() {
        let mut sim = ideal_sim();
        let n = sim.add_node(
            "t",
            TimerNode {
                fired: vec![],
                cancel_second: false,
            },
        );
        sim.run_until_idle(100);
        sim.schedule_timer(n, SimTime::from_secs(10), TimerTag(99));
        sim.run_until_idle(100);
        assert!(sim
            .node_ref::<TimerNode>(n)
            .unwrap()
            .fired
            .contains(&TimerTag(99)));
    }

    /// Ticks every second; counts restarts through the lifecycle hook.
    #[derive(Default)]
    struct Beeper {
        beeps: Vec<SimTime>,
        restarts: u32,
    }

    impl Node for Beeper {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), TimerTag(1));
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: TimerTag) {
            self.beeps.push(ctx.now());
            ctx.set_timer(SimDuration::from_secs(1), TimerTag(1));
        }
        fn on_restart(&mut self, ctx: &mut Context<'_>) {
            self.restarts += 1;
            self.on_start(ctx);
        }
    }

    #[test]
    fn crash_cancels_timers_until_restart() {
        let mut sim = ideal_sim();
        let n = sim.add_node("beeper", Beeper::default());
        sim.run_until(SimTime::from_secs(3));
        sim.crash(n);
        assert!(!sim.is_up(n));
        sim.run_until(SimTime::from_secs(10));
        let beeps = sim.node_ref::<Beeper>(n).unwrap().beeps.len();
        assert_eq!(beeps, 3, "no ticks while down");

        sim.restart(n, SimDuration::from_secs(2));
        sim.run_until(SimTime::from_secs(20));
        let b = sim.node_ref::<Beeper>(n).unwrap();
        assert_eq!(b.restarts, 1);
        assert!(sim.is_up(n));
        // Back up at t=12, ticking at 13..=20.
        assert_eq!(b.beeps.len(), 3 + 8);
        assert_eq!(sim.metrics().crashes, 1);
        assert_eq!(sim.metrics().restarts, 1);
    }

    #[test]
    fn packets_to_a_crashed_node_are_dropped() {
        let mut sim = Simulator::new(SimConfig {
            seed: 5,
            default_link: LinkModel::builder()
                .latency(SimDuration::from_millis(10))
                .bandwidth_bps(u64::MAX - 1)
                .build(),
        });
        let rx = sim.add_node("rx", Counter::default());
        let _tx = sim.add_node("tx", Sender { dst: rx, n: 3 });
        // Crash the receiver before the packets (in flight) arrive.
        sim.crash(rx);
        sim.run_until_idle(1000);
        assert!(sim.node_ref::<Counter>(rx).unwrap().packets.is_empty());
        assert_eq!(sim.metrics().packets_dropped_crashed, 3);
        assert_eq!(sim.metrics().packets_delivered, 0);
    }

    #[test]
    fn restart_between_send_and_delivery_still_drops() {
        let mut sim = Simulator::new(SimConfig {
            seed: 6,
            default_link: LinkModel::builder()
                .latency(SimDuration::from_secs(1))
                .bandwidth_bps(u64::MAX - 1)
                .build(),
        });
        let rx = sim.add_node("rx", Counter::default());
        let _tx = sim.add_node("tx", Sender { dst: rx, n: 1 });
        sim.run_until(SimTime::from_millis(1));
        // The packet is in flight (arrives at t=1s). Reboot quickly: the
        // epoch bump must still kill the packet.
        sim.crash(rx);
        sim.restart(rx, SimDuration::from_millis(10));
        sim.run_until_idle(1000);
        assert!(sim.node_ref::<Counter>(rx).unwrap().packets.is_empty());
        assert_eq!(sim.metrics().packets_dropped_crashed, 1);
    }

    #[test]
    fn partition_blocks_cross_group_traffic_until_heal() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let tx = sim.add_node("tx", Sender { dst: rx, n: 2 });
        sim.partition(vec![vec![rx], vec![tx]]);
        assert!(sim.partitioned(tx, rx));
        sim.run_until_idle(1000);
        assert!(sim.node_ref::<Counter>(rx).unwrap().packets.is_empty());
        assert_eq!(sim.metrics().packets_dropped_partitioned, 2);

        sim.heal();
        assert!(!sim.partitioned(tx, rx));
        sim.add_node("tx2", Sender { dst: rx, n: 2 });
        sim.run_until_idle(1000);
        assert_eq!(sim.node_ref::<Counter>(rx).unwrap().packets.len(), 2);
    }

    #[test]
    fn unlisted_nodes_are_unaffected_by_partition() {
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let a = sim.add_node("a", Counter::default());
        let b = sim.add_node("b", Counter::default());
        sim.partition(vec![vec![a], vec![b]]);
        // rx is in no group: everyone still reaches it.
        assert!(!sim.partitioned(a, rx));
        assert!(!sim.partitioned(rx, b));
        assert!(sim.partitioned(a, b));
    }

    #[test]
    fn faults_appear_in_the_trace_stream() {
        let mut sim = ideal_sim();
        let n = sim.add_node("victim", Beeper::default());
        sim.crash(n);
        sim.restart(n, SimDuration::from_secs(1));
        sim.partition(vec![vec![n]]);
        sim.heal();
        sim.record_fault("chaos.link_flap", "a=n0 b=n1");
        sim.run_until(SimTime::from_secs(2));
        let kinds: Vec<String> = sim
            .telemetry()
            .tracer
            .events()
            .into_iter()
            .map(|e| e.kind)
            .collect();
        for kind in [
            "chaos.crash",
            "chaos.restart",
            "chaos.partition",
            "chaos.heal",
            "chaos.link_flap",
        ] {
            assert!(kinds.iter().any(|k| k == kind), "missing {kind}: {kinds:?}");
        }
    }

    #[test]
    fn nic_bandwidth_serializes_egress() {
        // 10 packets of 68 wire bytes over an ideal link, but a sender
        // NIC of 8 kbit/s: each packet occupies the NIC for 68 ms, so
        // deliveries are spaced 68 ms apart instead of arriving at once.
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let tx = sim.add_node("tx", Sender { dst: rx, n: 10 });
        sim.set_node_bandwidth(tx, Some(8_000));
        assert_eq!(sim.node_bandwidth(tx), Some(8_000));
        sim.run_until_idle(1000);
        let got = &sim.node_ref::<Counter>(rx).unwrap().packets;
        assert_eq!(got.len(), 10);
        // Payload 1 byte + 32-byte header = 33 bytes = 33 ms at 1 kB/s.
        let spacing = SimDuration::from_millis(33);
        for (i, (t, _)) in got.iter().enumerate() {
            assert_eq!(*t, SimTime::ZERO + spacing * (i as u64 + 1), "packet {i}");
        }
    }

    #[test]
    fn nic_bandwidth_serializes_ingress() {
        // Two senders each fire 3 packets at t=0; the receiver NIC
        // drains one packet per 33 ms, so the last arrives at 6*33 ms.
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let _a = sim.add_node("a", Sender { dst: rx, n: 3 });
        let _b = sim.add_node("b", Sender { dst: rx, n: 3 });
        sim.set_node_bandwidth(rx, Some(8_000));
        sim.run_until_idle(1000);
        let got = &sim.node_ref::<Counter>(rx).unwrap().packets;
        assert_eq!(got.len(), 6);
        let last = got.iter().map(|(t, _)| *t).max().unwrap();
        assert_eq!(last, SimTime::ZERO + SimDuration::from_millis(6 * 33));
        assert_eq!(sim.metrics().packets_delivered, 6);
    }

    #[test]
    fn nic_default_off_keeps_timing_identical() {
        let run = |nic: bool| {
            let mut sim = Simulator::new(SimConfig {
                seed: 9,
                default_link: LinkModel::wan(),
            });
            let rx = sim.add_node("rx", Counter::default());
            let tx = sim.add_node("tx", Sender { dst: rx, n: 20 });
            if nic {
                // Effectively infinite NIC: must not shift any delivery.
                sim.set_node_bandwidth(tx, None);
            }
            sim.run_until_idle(10_000);
            sim.node_ref::<Counter>(rx)
                .unwrap()
                .packets
                .iter()
                .map(|(t, _)| t.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn slowdown_stretches_delays_by_the_factor() {
        // Ideal link with a fixed 10 ms latency: a 5× slow receiver
        // turns every delivery into 50 ms.
        let run = |factor: f64| {
            let mut sim = Simulator::new(SimConfig {
                seed: 11,
                default_link: LinkModel::builder()
                    .latency(SimDuration::from_millis(10))
                    .bandwidth_bps(u64::MAX - 1)
                    .build(),
            });
            let rx = sim.add_node("rx", Counter::default());
            let _tx = sim.add_node("tx", Sender { dst: rx, n: 3 });
            sim.set_node_slowdown(rx, factor);
            assert_eq!(sim.node_slowdown(rx), factor);
            sim.run_until_idle(1000);
            sim.node_ref::<Counter>(rx)
                .unwrap()
                .packets
                .iter()
                .map(|(t, _)| t.as_nanos())
                .collect::<Vec<_>>()
        };
        let normal = run(1.0);
        let slow = run(5.0);
        assert_eq!(normal.len(), 3);
        assert_eq!(slow.len(), 3, "a slow node still answers — late");
        for (n, s) in normal.iter().zip(&slow) {
            assert_eq!(*s, n * 5, "delay must scale exactly by the factor");
        }
    }

    #[test]
    fn slowdown_default_keeps_timing_identical() {
        let run = |touch: bool| {
            let mut sim = Simulator::new(SimConfig {
                seed: 12,
                default_link: LinkModel::wan(),
            });
            let rx = sim.add_node("rx", Counter::default());
            let tx = sim.add_node("tx", Sender { dst: rx, n: 20 });
            if touch {
                sim.set_node_slowdown(tx, 1.0);
            }
            sim.run_until_idle(10_000);
            sim.node_ref::<Counter>(rx)
                .unwrap()
                .packets
                .iter()
                .map(|(t, _)| t.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    struct BurstThenTimer {
        dst: NodeId,
        n: u32,
    }

    impl Node for BurstThenTimer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.n {
                ctx.send(self.dst, Port::new(1), vec![0]);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: TimerTag) {
            ctx.send(self.dst, Port::new(1), vec![7]);
        }
        fn on_restart(&mut self, _ctx: &mut Context<'_>) {
            // Don't resend the boot burst; the test probes the cursor.
        }
    }

    #[test]
    fn nic_backlog_resets_on_restart() {
        // 50 packets at 1 kbit/s push the egress cursor out to ~13 s.
        // The sender then crashes; a send after the restart must not
        // queue behind the dead process's backlog.
        let mut sim = ideal_sim();
        let rx = sim.add_node("rx", Counter::default());
        let tx = sim.add_node("tx", BurstThenTimer { dst: rx, n: 50 });
        sim.set_node_bandwidth(tx, Some(1_000));
        sim.run_until(SimTime::from_millis(1));
        sim.crash(tx);
        sim.restart(tx, SimDuration::from_millis(10));
        sim.schedule_timer(tx, SimTime::from_millis(100), TimerTag(1));
        sim.run_until_idle(100_000);
        let got = &sim.node_ref::<Counter>(rx).unwrap().packets;
        let (when, _) = got
            .iter()
            .find(|(_, p)| p == &vec![7])
            .expect("post-restart send delivered");
        // 33 bytes at 1 kbit/s is 264 ms on the wire; without the
        // cursor reset this would land after the ~13.2 s backlog.
        assert_eq!(
            *when,
            SimTime::from_millis(100) + SimDuration::from_millis(264)
        );
    }

    #[test]
    fn crashes_replay_identically_under_a_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(SimConfig {
                seed,
                default_link: LinkModel::wan(),
            });
            let rx = sim.add_node("rx", Counter::default());
            let _tx = sim.add_node("tx", Sender { dst: rx, n: 50 });
            sim.run_until(SimTime::from_millis(5));
            sim.crash(rx);
            sim.restart(rx, SimDuration::from_millis(20));
            sim.run_until_idle(10_000);
            let m = sim.metrics();
            (
                m.packets_dropped_crashed,
                m.packets_delivered,
                sim.node_ref::<Counter>(rx)
                    .unwrap()
                    .packets
                    .iter()
                    .map(|(t, p)| (t.as_nanos(), p.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(11), run(11));
    }
}
