//! Sharded parallel simulation with deterministic cross-shard merging.
//!
//! A [`ParallelSimulator`] partitions one logical simulation into up to
//! 256 [`Simulator`] shards (one per broker shard of the deployment, by
//! convention) and executes them on worker OS threads. Cross-shard
//! traffic flows through epoch-synchronized mailboxes drained at
//! **conservative lookahead barriers**: virtual time advances in windows
//! no wider than the minimum delay of any cross-shard link, so a packet
//! sent during a window can never arrive inside it, and every shard sees
//! the complete, identically-ordered set of foreign packets before it
//! executes the instants they land on.
//!
//! ## Why the merged order is bit-identical at any thread count
//!
//! 1. The barrier schedule (the sequence of window end times) is
//!    computed from per-shard event peeks and mailbox arrivals only —
//!    values each deterministic shard produces on its own — by one
//!    formula evaluated on the coordinator. Thread placement never
//!    enters it.
//! 2. Mailboxes are merged in shard-index order and stably sorted by
//!    arrival time, so ties resolve by (shard, send order), never by
//!    which thread finished first.
//! 3. Each shard's event queue assigns its `(time, seq)` total order
//!    from its own deterministic seed and the injection order of
//!    foreign packets, both of which are thread-count independent.
//!
//! Workers block at every barrier until the coordinator has merged all
//! mailboxes — the classic conservative (Chandy–Misra–Bryant style)
//! trade: parallelism bounded by lookahead, determinism absolute.
//!
//! ```
//! use simnet::parallel::{ParallelConfig, ParallelSimulator};
//! use simnet::{Context, Node, Packet, Port, SimDuration};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
//!         ctx.send(pkt.src, pkt.port, pkt.payload);
//!     }
//! }
//! struct Pinger { peer: simnet::NodeId, got: u32 }
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(self.peer, Port::new(7), b"ping".to_vec());
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut sim = ParallelSimulator::new(ParallelConfig {
//!     shards: 2,
//!     threads: 2,
//!     ..ParallelConfig::default()
//! });
//! let echo = sim.add_node_on(0, "echo", Echo);
//! let pinger = sim.add_node_on(1, "pinger", Pinger { peer: echo, got: 0 });
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.node_ref::<Pinger>(pinger).unwrap().got, 1);
//! ```

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};

use crate::chaos::FaultTarget;
use crate::link::LinkModel;
use crate::node::{Node, NodeId};
use crate::rng::DeterministicRng;
use crate::sim::{CrossPacket, NetMetrics, NodeMetrics, SimConfig, Simulator};
use crate::time::{SimDuration, SimTime};
use telemetry::Telemetry;

/// Configuration of a [`ParallelSimulator`].
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Seed from which every shard's randomness derives (each shard gets
    /// a distinct sub-seed, stable across thread counts).
    pub seed: u64,
    /// Number of simulation shards (1–256). Fixed for the lifetime of
    /// the simulation; determinism is guaranteed across *thread* counts
    /// for a given shard count, not across shard counts.
    pub shards: usize,
    /// Number of OS threads executing the shards (clamped to `shards`).
    /// Thread 0 is the caller's thread, which doubles as the barrier
    /// coordinator.
    pub threads: usize,
    /// Intra-shard link model for pairs without an explicit override.
    pub default_link: LinkModel,
    /// Cross-shard link model for pairs without an explicit override.
    /// Its minimum delay bounds the lookahead, so it must be able to
    /// deliver and must have positive latency − jitter.
    pub cross_link: LinkModel,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            seed: 0xD1_44_E2,
            shards: 1,
            threads: 1,
            default_link: LinkModel::lan(),
            cross_link: LinkModel::backbone(),
        }
    }
}

/// Counters accumulated by the barrier protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelStats {
    /// Lookahead windows executed.
    pub windows: u64,
    /// Cross-shard packets routed through the mailboxes.
    pub cross_packets: u64,
    /// Wall-clock nanoseconds the coordinator spent blocked waiting for
    /// worker reports (telemetry only — virtual time never sees it).
    pub barrier_stall_ns: u64,
    /// Largest single-barrier mailbox (packets bound for one shard).
    pub max_mailbox_depth: usize,
}

/// What a shard group hands back after running a window: per shard, its
/// cross-shard egress and the time of its earliest remaining event.
type GroupReport = Vec<(usize, Vec<CrossPacket>, Option<SimTime>)>;

/// A window order broadcast by the coordinator: mail to inject (indexed
/// like the group's shard list), then run to `end`. When `done` is set
/// the worker injects the final mail and exits without running.
struct Order {
    end: SimTime,
    ingress: Vec<Vec<CrossPacket>>,
    done: bool,
}

/// A deterministic parallel simulation: shards of one logical network,
/// each a [`Simulator`], synchronized by conservative lookahead barriers.
pub struct ParallelSimulator {
    shards: Vec<Simulator>,
    threads: usize,
    /// Global node-name registry (each shard also enforces uniqueness
    /// locally, but lookups must work across shards).
    names: HashMap<String, NodeId>,
    /// Directed cross-shard link overrides, tracked so the lookahead
    /// can shrink to match (the owning shard holds the model used for
    /// delay sampling).
    cross_links: HashMap<(NodeId, NodeId), LinkModel>,
    cross_default: LinkModel,
    /// The runner's own bundle: `sim.parallel.*` metrics plus fault
    /// records that apply to the whole simulation.
    telemetry: Telemetry,
    stats: ParallelStats,
}

impl std::fmt::Debug for ParallelSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSimulator")
            .field("shards", &self.shards.len())
            .field("threads", &self.threads)
            .field("now", &self.now())
            .finish()
    }
}

impl ParallelSimulator {
    /// Creates an empty sharded simulation at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds 256, or `threads` is 0.
    pub fn new(cfg: ParallelConfig) -> Self {
        assert!(
            (1..=1 << NodeId::SHARD_BITS).contains(&cfg.shards),
            "shard count must be 1..=256"
        );
        assert!(cfg.threads >= 1, "thread count must be positive");
        let root = DeterministicRng::seed_from(cfg.seed);
        let shards = (0..cfg.shards)
            .map(|i| {
                // Distinct per-shard seed, a pure function of (seed, i):
                // identical at every thread count.
                let seed = root.derive(i as u64).next_u64();
                let mut sim = Simulator::new(SimConfig {
                    seed,
                    default_link: cfg.default_link.clone(),
                });
                sim.set_shard(i as u32);
                sim.set_cross_default_link(cfg.cross_link.clone());
                sim
            })
            .collect();
        let telemetry = Telemetry::new();
        let sim = ParallelSimulator {
            shards,
            threads: cfg.threads.min(cfg.shards).max(1),
            names: HashMap::new(),
            cross_links: HashMap::new(),
            cross_default: cfg.cross_link,
            telemetry,
            stats: ParallelStats::default(),
        };
        sim.telemetry
            .metrics
            .set_gauge("sim.parallel.shards", sim.shards.len() as f64);
        sim.telemetry
            .metrics
            .set_gauge("sim.parallel.threads", sim.threads as f64);
        sim
    }

    /// Number of simulation shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of OS threads executing the shards.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The current virtual time (all shards agree between runs).
    pub fn now(&self) -> SimTime {
        self.shards[0].now()
    }

    /// Barrier-protocol counters accumulated so far.
    pub fn stats(&self) -> ParallelStats {
        self.stats
    }

    /// The runner's own telemetry bundle (`sim.parallel.*` gauges and
    /// counters, whole-simulation fault records).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The telemetry bundle of one shard.
    pub fn shard_telemetry(&self, shard: usize) -> &Telemetry {
        self.shards[shard].telemetry()
    }

    /// Registers a node on `shard` under a globally unique name and
    /// schedules its start callback.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `name` is taken anywhere in
    /// the simulation.
    pub fn add_node_on<N: Node>(
        &mut self,
        shard: usize,
        name: impl Into<String>,
        node: N,
    ) -> NodeId {
        let name = name.into();
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        assert!(
            !self.names.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let id = self.shards[shard].add_node(name.clone(), node);
        self.names.insert(name, id);
        id
    }

    /// The shard that owns `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id's shard tag is out of range.
    fn owner(&self, id: NodeId) -> &Simulator {
        &self.shards[id.shard()]
    }

    fn owner_mut(&mut self, id: NodeId) -> &mut Simulator {
        &mut self.shards[id.shard()]
    }

    /// Looks a node up by its registration name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// The registration name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.owner(id).node_name(id)
    }

    /// Borrows a node, downcast to its concrete type.
    pub fn node_ref<N: Node>(&self, id: NodeId) -> Option<&N> {
        self.owner(id).node_ref(id)
    }

    /// Mutably borrows a node, downcast to its concrete type.
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> Option<&mut N> {
        self.owner_mut(id).node_mut(id)
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.owner(id).is_up(id)
    }

    /// Traffic counters of one node.
    pub fn node_metrics(&self, id: NodeId) -> NodeMetrics {
        self.owner(id).node_metrics(id)
    }

    /// Models the node's NIC as a serializer (see
    /// [`Simulator::set_node_bandwidth`]). Cross-shard packets are
    /// shaped on egress by the sender's shard and on ingress by the
    /// owner's shard at barrier injection.
    pub fn set_node_bandwidth(&mut self, id: NodeId, bps: Option<u64>) {
        self.owner_mut(id).set_node_bandwidth(id, bps);
    }

    /// Whole-network counters, summed across shards.
    pub fn metrics(&self) -> NetMetrics {
        let mut total = NetMetrics::default();
        for s in &self.shards {
            let m = s.metrics();
            total.packets_sent += m.packets_sent;
            total.packets_delivered += m.packets_delivered;
            total.packets_lost += m.packets_lost;
            total.bytes_delivered += m.bytes_delivered;
            total.events_processed += m.events_processed;
            total.packets_dropped_crashed += m.packets_dropped_crashed;
            total.packets_dropped_partitioned += m.packets_dropped_partitioned;
            total.crashes += m.crashes;
            total.restarts += m.restarts;
        }
        total
    }

    /// Resets traffic counters on every shard.
    pub fn reset_metrics(&mut self) {
        for s in &mut self.shards {
            s.reset_metrics();
        }
    }

    /// Events still pending, summed across shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(Simulator::pending_events).sum()
    }

    /// The conservative lookahead: the minimum delay any cross-shard
    /// link can produce. Windows never exceed it, so a packet sent
    /// during a window always lands in a later one.
    ///
    /// Links that drop everything (loss ≥ 1.0, e.g. a chaos link flap)
    /// never deliver and do not constrain the lookahead.
    ///
    /// # Panics
    ///
    /// Panics if a cross-shard link that can deliver has zero minimum
    /// delay while more than one shard exists — conservative synchrony
    /// would need zero-width windows.
    pub fn lookahead(&self) -> SimDuration {
        let la = self
            .cross_links
            .values()
            .chain(std::iter::once(&self.cross_default))
            .filter_map(LinkModel::min_delay)
            .min()
            // Every deliverable cross link drops packets: no cross
            // traffic can ever arrive, so any positive window works.
            .unwrap_or_else(|| {
                self.cross_default
                    .latency()
                    .max(SimDuration::from_millis(1))
            });
        assert!(
            self.shards.len() == 1 || !la.is_zero(),
            "cross-shard lookahead is zero: a cross-shard link with \
             latency <= jitter cannot be parallelized conservatively"
        );
        la
    }

    /// Runs for `dur` of virtual time from the current instant.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now() + dur;
        self.run_until(deadline);
    }

    /// Runs every shard until virtual time `deadline`, injecting
    /// cross-shard packets at lookahead barriers. The merged event
    /// order is identical at every thread count.
    pub fn run_until(&mut self, deadline: SimTime) {
        if deadline < self.now() {
            return;
        }
        if self.shards.len() == 1 {
            // One shard has no cross traffic: the barrier protocol
            // degenerates to a plain run (identical event order, since
            // the protocol only splits the same run at window edges).
            self.shards[0].run_until(deadline);
            return;
        }
        let lookahead = self.lookahead();
        self.telemetry
            .metrics
            .set_gauge("sim.parallel.lookahead_ns", lookahead.as_nanos() as f64);
        let shard_count = self.shards.len();
        let threads = self.threads;

        // Distribute shards over thread groups round-robin; group 0
        // stays on the caller's thread with the coordinator.
        let mut sims: Vec<Option<Simulator>> = self.shards.drain(..).map(Some).collect();
        let group_of = |shard: usize| shard % threads;
        let mut local: Vec<(usize, Simulator)> = Vec::new();
        for i in (0..shard_count).filter(|&i| group_of(i) == 0) {
            local.push((i, sims[i].take().expect("shard taken twice")));
        }

        let stats = &mut self.stats;
        let run_start = (stats.cross_packets, stats.barrier_stall_ns);
        let runner_metrics = &self.telemetry.metrics;
        let mut returned: Vec<Vec<(usize, Simulator)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut order_txs: Vec<Sender<Order>> = Vec::new();
            let mut report_rxs: Vec<Receiver<GroupReport>> = Vec::new();
            let mut handles = Vec::new();
            for g in 1..threads {
                let mut group: Vec<(usize, Simulator)> = Vec::new();
                for i in (0..shard_count).filter(|&i| group_of(i) == g) {
                    group.push((i, sims[i].take().expect("shard taken twice")));
                }
                let (order_tx, order_rx) = std::sync::mpsc::channel::<Order>();
                let (report_tx, report_rx) = std::sync::mpsc::channel::<GroupReport>();
                order_txs.push(order_tx);
                report_rxs.push(report_rx);
                handles.push(scope.spawn(move || {
                    while let Ok(order) = order_rx.recv() {
                        for ((_, sim), mail) in group.iter_mut().zip(order.ingress) {
                            for cp in mail {
                                sim.inject_cross(cp);
                            }
                        }
                        if order.done {
                            break;
                        }
                        let report: GroupReport = group
                            .iter_mut()
                            .map(|(i, sim)| {
                                sim.run_until(order.end);
                                (*i, sim.take_cross_egress(), sim.next_event_time())
                            })
                            .collect();
                        if report_tx.send(report).is_err() {
                            break;
                        }
                    }
                    group
                }));
            }

            // The barrier protocol. Every quantity that determines the
            // window schedule or the injection order is derived from
            // shard-deterministic values and merged in shard order —
            // never from thread timing.
            let mut end = local[0].1.now();
            // Mail gathered at the previous barrier, per shard, in
            // merged (deterministic) order.
            let mut mailboxes: Vec<Vec<CrossPacket>> =
                (0..shard_count).map(|_| Vec::new()).collect();
            loop {
                // Hand every group its mail and the window to run.
                // Workers first, so they overlap with the local group.
                for (g, tx) in order_txs.iter().enumerate() {
                    let ingress = (0..shard_count)
                        .filter(|&i| group_of(i) == g + 1)
                        .map(|i| std::mem::take(&mut mailboxes[i]))
                        .collect();
                    tx.send(Order {
                        end,
                        ingress,
                        done: false,
                    })
                    .expect("worker died");
                }
                let mut egress: Vec<Vec<CrossPacket>> =
                    (0..shard_count).map(|_| Vec::new()).collect();
                let mut next: Option<SimTime> = None;
                let mut fold = |i: usize, out: Vec<CrossPacket>, peek: Option<SimTime>| {
                    egress[i] = out;
                    next = match (next, peek) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                };
                for (i, sim) in local.iter_mut() {
                    for cp in std::mem::take(&mut mailboxes[*i]) {
                        sim.inject_cross(cp);
                    }
                    sim.run_until(end);
                    fold(*i, sim.take_cross_egress(), sim.next_event_time());
                }
                for rx in &report_rxs {
                    let stall = std::time::Instant::now();
                    let report = rx.recv().expect("worker died");
                    stats.barrier_stall_ns += stall.elapsed().as_nanos() as u64;
                    for (i, out, peek) in report {
                        fold(i, out, peek);
                    }
                }
                // Merge: concatenate in shard order, stable-sort by
                // arrival. Ties keep (shard, send) order — the same
                // total order every thread count produces.
                let mut mail: Vec<CrossPacket> = egress.into_iter().flatten().collect();
                mail.sort_by_key(|cp| cp.arrival);
                stats.windows += 1;
                stats.cross_packets += mail.len() as u64;
                for cp in &mail {
                    // Raw (pre-ingress-shaping) arrivals bound the next
                    // window: shaping can only delay, so this is safe
                    // and identical on every path.
                    next = Some(next.map_or(cp.arrival, |n| n.min(cp.arrival)));
                }
                let mut depth = vec![0usize; shard_count];
                for cp in mail {
                    let dst = cp.pkt.dst.shard();
                    depth[dst] += 1;
                    mailboxes[dst].push(cp);
                }
                let max_depth = depth.into_iter().max().unwrap_or(0);
                stats.max_mailbox_depth = stats.max_mailbox_depth.max(max_depth);
                runner_metrics.add("sim.parallel.windows", 1);
                runner_metrics.set_gauge("sim.parallel.mailbox_depth", max_depth as f64);
                if end == deadline {
                    // Final barrier: deliver the last mail (it lands
                    // strictly past the deadline) and release workers.
                    for (g, tx) in order_txs.iter().enumerate() {
                        let ingress = (0..shard_count)
                            .filter(|&i| group_of(i) == g + 1)
                            .map(|i| std::mem::take(&mut mailboxes[i]))
                            .collect();
                        tx.send(Order {
                            end,
                            ingress,
                            done: true,
                        })
                        .expect("worker died");
                    }
                    for (i, sim) in local.iter_mut() {
                        for cp in std::mem::take(&mut mailboxes[*i]) {
                            sim.inject_cross(cp);
                        }
                    }
                    break;
                }
                // Next window: at most one lookahead ahead, but jump
                // straight to the next known event when everything is
                // idle longer than that.
                end = next
                    .map_or(deadline, |n| n.max(end + lookahead))
                    .min(deadline);
            }
            for handle in handles {
                returned.push(handle.join().expect("worker panicked"));
            }
        });

        // Reassemble the shard vector in index order.
        for (i, sim) in local.into_iter().chain(returned.into_iter().flatten()) {
            sims[i] = Some(sim);
        }
        self.shards = sims
            .into_iter()
            .map(|s| s.expect("shard lost in flight"))
            .collect();
        self.telemetry.metrics.add(
            "sim.parallel.cross_packets",
            self.stats.cross_packets - run_start.0,
        );
        self.telemetry.metrics.add(
            "sim.parallel.barrier_stall_ns",
            self.stats.barrier_stall_ns - run_start.1,
        );
    }

    /// Runs until no events remain anywhere. Returns the number of
    /// events processed.
    ///
    /// # Panics
    ///
    /// Panics after `max_events` as a runaway guard.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let before = self.metrics().events_processed;
        loop {
            let next = self
                .shards
                .iter_mut()
                .filter_map(Simulator::next_event_time)
                .min();
            let Some(next) = next else { break };
            self.run_until(next);
            let done = self.metrics().events_processed - before;
            assert!(
                done <= max_events,
                "simulation did not quiesce within {max_events} events"
            );
        }
        self.metrics().events_processed - before
    }

    /// A 64-bit FNV-1a digest of every flight-recorder event: the
    /// runner's own trace stream followed by each shard's in shard
    /// order. Two runs of the same scenario and seed produce the same
    /// digest at any thread count — `scripts/ci.sh` gates on exactly
    /// this.
    pub fn flight_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        let mut eat_events = |telemetry: &Telemetry| {
            for e in telemetry.tracer.events() {
                eat(&e.time_ns.to_le_bytes());
                eat(&e.node.to_le_bytes());
                eat(e.kind.as_bytes());
                eat(&e.trace_id.to_le_bytes());
                eat(&e.span.to_le_bytes());
                eat(&e.parent_span.to_le_bytes());
                eat(e.detail.as_bytes());
                eat(&[0xFF]);
            }
        };
        eat_events(&self.telemetry);
        for s in &self.shards {
            eat_events(s.telemetry());
        }
        hash
    }
}

/// A deployment target: either a stand-alone [`Simulator`] or a
/// [`ParallelSimulator`] shard set. `district::deploy` builds scenarios
/// against this so the same topology code places nodes in both.
pub trait SimHost {
    /// Number of shards nodes can be placed on (1 for a stand-alone
    /// simulator). Placement code maps its own partitioning (e.g.
    /// broker shards) onto `0..host_shards()`.
    fn host_shards(&self) -> usize;

    /// Registers a node on `shard` (ignored by stand-alone simulators).
    fn place_node<N: Node>(&mut self, shard: usize, name: String, node: N) -> NodeId;

    /// Mutably borrows a placed node, downcast to its concrete type.
    fn host_node_mut<N: Node>(&mut self, id: NodeId) -> Option<&mut N>;
}

impl SimHost for Simulator {
    fn host_shards(&self) -> usize {
        1
    }

    fn place_node<N: Node>(&mut self, _shard: usize, name: String, node: N) -> NodeId {
        self.add_node(name, node)
    }

    fn host_node_mut<N: Node>(&mut self, id: NodeId) -> Option<&mut N> {
        self.node_mut(id)
    }
}

impl SimHost for ParallelSimulator {
    fn host_shards(&self) -> usize {
        self.shard_count()
    }

    fn place_node<N: Node>(&mut self, shard: usize, name: String, node: N) -> NodeId {
        self.add_node_on(shard % self.shard_count(), name, node)
    }

    fn host_node_mut<N: Node>(&mut self, id: NodeId) -> Option<&mut N> {
        self.node_mut(id)
    }
}

impl FaultTarget for ParallelSimulator {
    fn now(&self) -> SimTime {
        ParallelSimulator::now(self)
    }

    fn run_until(&mut self, deadline: SimTime) {
        ParallelSimulator::run_until(self, deadline);
    }

    fn crash(&mut self, id: NodeId) {
        self.owner_mut(id).crash(id);
    }

    fn restart(&mut self, id: NodeId, after: SimDuration) {
        self.owner_mut(id).restart(id, after);
    }

    fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        // Every shard drops cross-group packets at its own senders, so
        // each needs the full group list.
        for s in &mut self.shards {
            s.partition(groups.clone());
        }
    }

    fn heal(&mut self) {
        for s in &mut self.shards {
            s.heal();
        }
    }

    fn set_link_directed(&mut self, src: NodeId, dst: NodeId, model: LinkModel) {
        if src.shard() != dst.shard() {
            // Track the override so the lookahead can adapt; delay
            // sampling happens on the sending shard.
            self.cross_links.insert((src, dst), model.clone());
        }
        self.shards[src.shard()].set_link_directed(src, dst, model);
    }

    fn link_model(&self, src: NodeId, dst: NodeId) -> LinkModel {
        self.shards[src.shard()].link(src, dst).clone()
    }

    fn node_slowdown(&self, id: NodeId) -> f64 {
        self.owner(id).node_slowdown(id)
    }

    fn set_node_slowdown(&mut self, id: NodeId, factor: f64) {
        // A factor below 1.0 would shrink delays under the lookahead
        // and break conservative synchrony; gray failures only slow
        // nodes down, so this loses no modelling power.
        assert!(
            factor >= 1.0,
            "parallel simulations require slowdown factors >= 1.0"
        );
        self.owner_mut(id).set_node_slowdown(id, factor);
    }

    fn record_fault(&self, kind: &str, detail: String) {
        self.telemetry.metrics.incr(kind);
        let trace = self.telemetry.tracer.next_trace_id();
        self.telemetry
            .tracer
            .record(self.now().as_nanos(), u32::MAX, kind, trace, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Packet, Port, TimerTag};
    use crate::{Context, Node};

    /// Sends `count` packets to `peer`, one per `period`.
    struct Chatter {
        peer: NodeId,
        period: SimDuration,
        count: u32,
        sent: u32,
    }
    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(self.period, TimerTag(1));
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: TimerTag) {
            if self.sent < self.count {
                self.sent += 1;
                ctx.send(self.peer, Port::new(9), vec![self.sent as u8]);
                ctx.set_timer(self.period, TimerTag(1));
            }
        }
    }

    /// Records `(time, payload)` of everything it receives and echoes.
    #[derive(Default)]
    struct Recorder {
        got: Vec<(SimTime, Vec<u8>)>,
    }
    impl Node for Recorder {
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
            self.got.push((ctx.now(), pkt.payload.clone()));
            ctx.send(pkt.src, pkt.port, pkt.payload);
        }
    }

    fn build(shards: usize, threads: usize) -> (ParallelSimulator, Vec<NodeId>) {
        let mut sim = ParallelSimulator::new(ParallelConfig {
            shards,
            threads,
            ..ParallelConfig::default()
        });
        let mut recorders = Vec::new();
        for s in 0..shards {
            let rx = sim.add_node_on(s, format!("rx-{s}"), Recorder::default());
            recorders.push(rx);
        }
        // Every shard chats with the recorder of the next shard (ring),
        // so all traffic crosses shard boundaries.
        for s in 0..shards {
            let peer = recorders[(s + 1) % shards];
            sim.add_node_on(
                s,
                format!("tx-{s}"),
                Chatter {
                    peer,
                    period: SimDuration::from_millis(17),
                    count: 40,
                    sent: 0,
                },
            );
        }
        (sim, recorders)
    }

    type Streams = Vec<Vec<(SimTime, Vec<u8>)>>;

    fn run_and_collect(shards: usize, threads: usize) -> (Streams, u64, NetMetrics) {
        let (mut sim, recorders) = build(shards, threads);
        sim.run_for(SimDuration::from_secs(2));
        let streams = recorders
            .iter()
            .map(|&r| sim.node_ref::<Recorder>(r).unwrap().got.clone())
            .collect();
        (streams, sim.flight_digest(), sim.metrics())
    }

    #[test]
    fn cross_shard_traffic_is_delivered() {
        let (streams, _, metrics) = run_and_collect(4, 1);
        for s in &streams {
            assert_eq!(s.len(), 40, "all 40 packets arrive cross-shard");
        }
        assert!(metrics.packets_delivered >= 4 * 40 * 2, "echoes count too");
    }

    #[test]
    fn thread_count_does_not_change_anything() {
        let base = run_and_collect(4, 1);
        for threads in [2, 3, 4] {
            let other = run_and_collect(4, threads);
            assert_eq!(base.0, other.0, "streams differ at {threads} threads");
            assert_eq!(base.1, other.1, "digest differs at {threads} threads");
            assert_eq!(base.2, other.2, "metrics differ at {threads} threads");
        }
    }

    #[test]
    fn single_shard_matches_stand_alone_simulator() {
        // A 1-shard parallel simulation must be bit-identical to a plain
        // Simulator with the shard's derived seed.
        let seed = DeterministicRng::seed_from(0xD1_44_E2).derive(0).next_u64();
        let mut plain = Simulator::new(SimConfig {
            seed,
            default_link: LinkModel::lan(),
        });
        let rx = plain.add_node("rx-0", Recorder::default());
        plain.add_node(
            "tx-0",
            Chatter {
                peer: rx,
                period: SimDuration::from_millis(17),
                count: 40,
                sent: 0,
            },
        );
        plain.run_for(SimDuration::from_secs(2));
        let plain_got = plain.node_ref::<Recorder>(rx).unwrap().got.clone();

        let (streams, _, _) = run_and_collect(1, 1);
        assert_eq!(plain_got, streams[0]);
    }

    #[test]
    fn lookahead_follows_min_cross_link() {
        let (mut sim, recorders) = build(2, 1);
        assert_eq!(sim.lookahead(), SimDuration::from_millis(5), "backbone");
        FaultTarget::set_link_directed(
            &mut sim,
            recorders[0],
            recorders[1],
            LinkModel::builder()
                .latency(SimDuration::from_millis(2))
                .jitter(SimDuration::from_micros(500))
                .build(),
        );
        assert_eq!(sim.lookahead(), SimDuration::from_micros(1500));
        // A total-loss link never delivers and must not constrain.
        FaultTarget::set_link_directed(
            &mut sim,
            recorders[1],
            recorders[0],
            LinkModel::builder().loss(1.0).build(),
        );
        assert_eq!(sim.lookahead(), SimDuration::from_micros(1500));
    }

    #[test]
    #[should_panic(expected = "lookahead is zero")]
    fn zero_lookahead_panics() {
        let mut sim = ParallelSimulator::new(ParallelConfig {
            shards: 2,
            cross_link: LinkModel::ideal(),
            ..ParallelConfig::default()
        });
        let a = sim.add_node_on(0, "a", Recorder::default());
        let b = sim.add_node_on(1, "b", Recorder::default());
        let _ = (a, b);
        sim.run_for(SimDuration::from_secs(1));
    }

    #[test]
    fn crash_and_partition_fan_out() {
        let (mut sim, recorders) = build(2, 2);
        FaultTarget::crash(&mut sim, recorders[0]);
        assert!(!sim.is_up(recorders[0]));
        FaultTarget::partition(&mut sim, vec![vec![recorders[0]], vec![recorders[1]]]);
        FaultTarget::restart(&mut sim, recorders[0], SimDuration::ZERO);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.is_up(recorders[0]));
        FaultTarget::heal(&mut sim);
        assert_eq!(sim.metrics().crashes, 1);
    }

    #[test]
    fn run_until_idle_drains_cross_traffic() {
        let (mut sim, recorders) = build(3, 3);
        let n = sim.run_until_idle(1_000_000);
        assert!(n > 0);
        assert_eq!(sim.pending_events(), 0);
        for &r in &recorders {
            assert_eq!(sim.node_ref::<Recorder>(r).unwrap().got.len(), 40);
        }
    }

    #[test]
    fn stats_count_windows_and_mail() {
        let (mut sim, _) = build(2, 1);
        sim.run_for(SimDuration::from_secs(1));
        let stats = sim.stats();
        assert!(stats.windows > 0);
        assert!(stats.cross_packets > 0);
        assert!(stats.max_mailbox_depth > 0);
    }
}
