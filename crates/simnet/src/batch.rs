//! Per-link batching: amortising per-packet overhead on busy hops.
//!
//! A [`Batcher`] accumulates items bound for one link and decides when
//! the accumulated batch must be flushed, governed by a [`BatchPolicy`]
//! (size, byte and age bounds). It is pure bookkeeping — the owner
//! encodes and sends the flushed items, and arms a timer for the age
//! bound when [`PushOutcome::ArmTimer`] asks for one. The inter-broker
//! bridges of the pub/sub federation run one batcher per peer link, so
//! N publishes crossing a bridge cost O(1) wire frames.
//!
//! ```
//! use simnet::batch::{BatchPolicy, Batcher, PushOutcome};
//! use simnet::SimDuration;
//!
//! let policy = BatchPolicy {
//!     max_items: 3,
//!     max_bytes: 1024,
//!     max_age: SimDuration::from_millis(50),
//! };
//! let mut batcher: Batcher<&str> = Batcher::new(policy);
//! assert_eq!(batcher.push("a", 1), PushOutcome::ArmTimer);
//! assert_eq!(batcher.push("b", 1), PushOutcome::Buffered);
//! assert_eq!(batcher.push("c", 1), PushOutcome::Flush);
//! assert_eq!(batcher.take(), vec!["a", "b", "c"]);
//! ```

use crate::time::SimDuration;
use telemetry::Registry;

/// When an accumulating batch is cut and put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many items are buffered.
    pub max_items: usize,
    /// Flush once the buffered payload bytes reach this bound.
    pub max_bytes: usize,
    /// Flush this long after the oldest buffered item arrived, even if
    /// the size bounds are not reached (bounds added latency).
    pub max_age: SimDuration,
}

impl Default for BatchPolicy {
    /// A bridge-friendly default: 32 items / 16 KiB / 25 ms.
    fn default() -> Self {
        BatchPolicy {
            max_items: 32,
            max_bytes: 16 * 1024,
            max_age: SimDuration::from_millis(25),
        }
    }
}

/// What the owner must do after buffering one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// First item of a fresh batch: arm a flush timer for
    /// [`BatchPolicy::max_age`] from now.
    ArmTimer,
    /// Item buffered; a timer is already running.
    Buffered,
    /// A size or byte bound was reached: flush immediately (the pending
    /// flush timer, if any, becomes a harmless no-op on an empty batch).
    Flush,
}

/// Accumulates items for one link under a [`BatchPolicy`].
#[derive(Debug)]
pub struct Batcher<T> {
    policy: BatchPolicy,
    items: Vec<T>,
    bytes: usize,
    /// Whether a flush timer is armed for the current accumulation run.
    timer_armed: bool,
}

impl<T> Batcher<T> {
    /// An empty batcher.
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher {
            policy,
            items: Vec::new(),
            bytes: 0,
            timer_armed: false,
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Buffered payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Buffers one item of `bytes` payload and reports what the owner
    /// must do: arm the age timer, nothing, or flush now.
    pub fn push(&mut self, item: T, bytes: usize) -> PushOutcome {
        let fresh = self.items.is_empty();
        self.items.push(item);
        self.bytes += bytes;
        if self.items.len() >= self.policy.max_items || self.bytes >= self.policy.max_bytes {
            self.timer_armed = false;
            return PushOutcome::Flush;
        }
        if fresh && !self.timer_armed {
            self.timer_armed = true;
            return PushOutcome::ArmTimer;
        }
        PushOutcome::Buffered
    }

    /// Drains the buffered items (the owner sends them as one frame).
    /// Returns an empty vec when nothing was buffered — timer flushes
    /// racing a size flush are harmless.
    pub fn take(&mut self) -> Vec<T> {
        self.bytes = 0;
        self.timer_armed = false;
        std::mem::take(&mut self.items)
    }

    /// Publishes this batcher's occupancy as ops-plane gauges
    /// (`<prefix>.items`, `<prefix>.bytes`) so backpressure on the link
    /// is scrape-visible. Call after pushes/takes, e.g. once per flush.
    pub fn refresh_gauges(&self, registry: &Registry, prefix: &str) {
        registry.set_gauge(&format!("{prefix}.items"), self.items.len() as f64);
        registry.set_gauge(&format!("{prefix}.bytes"), self.bytes as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BatchPolicy {
        BatchPolicy {
            max_items: 4,
            max_bytes: 100,
            max_age: SimDuration::from_millis(10),
        }
    }

    #[test]
    fn item_bound_flushes() {
        let mut b = Batcher::new(policy());
        assert_eq!(b.push(1, 1), PushOutcome::ArmTimer);
        assert_eq!(b.push(2, 1), PushOutcome::Buffered);
        assert_eq!(b.push(3, 1), PushOutcome::Buffered);
        assert_eq!(b.push(4, 1), PushOutcome::Flush);
        assert_eq!(b.take(), vec![1, 2, 3, 4]);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn byte_bound_flushes() {
        let mut b = Batcher::new(policy());
        assert_eq!(b.push("x", 60), PushOutcome::ArmTimer);
        assert_eq!(b.push("y", 60), PushOutcome::Flush);
        assert_eq!(b.take().len(), 2);
    }

    #[test]
    fn timer_rearms_after_flush() {
        let mut b = Batcher::new(policy());
        assert_eq!(b.push(1, 1), PushOutcome::ArmTimer);
        b.take(); // timer flush
        assert_eq!(b.push(2, 1), PushOutcome::ArmTimer, "fresh batch re-arms");
    }

    #[test]
    fn gauges_track_occupancy() {
        let r = Registry::new();
        let mut b = Batcher::new(policy());
        b.push("x", 7);
        b.push("y", 8);
        b.refresh_gauges(&r, "bridge.b0");
        assert_eq!(r.gauge("bridge.b0.items"), 2.0);
        assert_eq!(r.gauge("bridge.b0.bytes"), 15.0);
        b.take();
        b.refresh_gauges(&r, "bridge.b0");
        assert_eq!(r.gauge("bridge.b0.items"), 0.0);
    }

    #[test]
    fn take_on_empty_is_empty() {
        let mut b: Batcher<u8> = Batcher::new(policy());
        assert!(b.take().is_empty());
    }

    #[test]
    fn size_flush_then_push_rearms() {
        let mut b = Batcher::new(policy());
        for i in 0..3 {
            b.push(i, 1);
        }
        assert_eq!(b.push(3, 1), PushOutcome::Flush);
        b.take();
        // The armed timer was consumed by the size flush; the next run
        // must ask for a fresh one.
        assert_eq!(b.push(9, 1), PushOutcome::ArmTimer);
    }
}
