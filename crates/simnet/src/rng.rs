//! Deterministic random number generation for the simulation kernel.
//!
//! The kernel owns all randomness so that a simulation replays bit-for-bit
//! given the same seed. [`DeterministicRng`] is a self-contained
//! xoshiro256** generator (seeded through SplitMix64, as recommended by the
//! xoshiro authors); it is deliberately independent of external crates so
//! that its stream can never change under a dependency upgrade.

/// A deterministic xoshiro256** pseudo-random generator.
///
/// ```
/// use simnet::rng::DeterministicRng;
/// let mut a = DeterministicRng::seed_from(42);
/// let mut b = DeterministicRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DeterministicRng { state }
    }

    /// Derives an independent child stream, e.g. one per simulation node,
    /// so per-node randomness does not depend on scheduling order.
    pub fn derive(&self, stream: u64) -> Self {
        // Mix the stream id into a fresh seed through SplitMix64 twice to
        // decorrelate adjacent stream ids.
        let mut sm = self.state[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = splitmix64(&mut sm);
        DeterministicRng::seed_from(s)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_bounded(hi - lo + 1)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// A sample from the standard normal distribution (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                let v = self.next_f64();
                return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
            }
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_bounded(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::seed_from(7);
        let mut b = DeterministicRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = DeterministicRng::seed_from(7);
        let mut b = DeterministicRng::seed_from(8);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derived_streams_are_independent_of_order() {
        let root = DeterministicRng::seed_from(1);
        let mut c1 = root.derive(10);
        let mut c2 = root.derive(20);
        let first = (c1.next_u64(), c2.next_u64());

        let root = DeterministicRng::seed_from(1);
        let mut c2b = root.derive(20);
        let mut c1b = root.derive(10);
        assert_eq!(first, (c1b.next_u64(), c2b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DeterministicRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = DeterministicRng::seed_from(4);
        for _ in 0..1000 {
            assert!(r.next_bounded(7) < 7);
        }
    }

    #[test]
    fn bounded_covers_all_values() {
        let mut r = DeterministicRng::seed_from(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.next_bounded(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn bounded_panics_on_zero() {
        DeterministicRng::seed_from(0).next_bounded(0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = DeterministicRng::seed_from(6);
        for _ in 0..500 {
            let x = r.next_range(10, 12);
            assert!((10..=12).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DeterministicRng::seed_from(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn gaussian_mean_near_zero() {
        let mut r = DeterministicRng::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_gaussian()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DeterministicRng::seed_from(12);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DeterministicRng::seed_from(13);
        assert!(r.choose::<u8>(&[]).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
