//! Overload-protection primitives: admission gates, retry budgets and
//! circuit breakers.
//!
//! Three small deterministic state machines, shared by every tier that
//! answers requests or retries them:
//!
//! * [`AdmissionGate`] — a leaky-bucket admission controller bounding
//!   the work a server accepts. Requests past the bound are *shed*
//!   with a `Retry-After` hint instead of queued without limit, so an
//!   overloaded endpoint answers cheaply instead of collapsing.
//! * [`RetryBudget`] — a shared token bucket capping the *global*
//!   retry volume of a client population, so correlated failure decays
//!   into budget exhaustion instead of a retry storm.
//! * [`CircuitBreaker`] — a per-target closed/open/half-open breaker
//!   driven by both error rate and latency (a slow target is as broken
//!   as a dead one: gray failure), with single-probe half-open
//!   recovery.
//!
//! All three are driven exclusively by [`SimTime`] so behaviour is
//! deterministic and replayable; metric emission goes through the
//! caller-supplied [`Registry`] under the `admission.*` / `breaker.*`
//! names inventoried in `docs/metrics.txt`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use telemetry::metrics::Registry;

use crate::time::{SimDuration, SimTime};

/// Outcome of [`AdmissionGate::try_admit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The request is admitted; serve it.
    Admitted,
    /// The request is shed; answer a cheap 503 carrying `retry_after`.
    Shed {
        /// How long the client should wait before retrying: the time
        /// until the bucket drains below capacity.
        retry_after: SimDuration,
    },
}

/// A leaky-bucket admission controller for one endpoint.
///
/// Each admitted request adds one unit to the bucket; the bucket
/// drains at `drain_per_sec` (the endpoint's sustainable service
/// rate). Once the level reaches `capacity` (the queue bound), further
/// requests are shed until the bucket drains.
///
/// ```
/// use simnet::overload::{Admission, AdmissionGate};
/// use simnet::telemetry::metrics::Registry;
/// use simnet::SimTime;
///
/// let metrics = Registry::new();
/// // Bound of 2 outstanding requests, draining 1/s.
/// let mut gate = AdmissionGate::new(2, 1.0);
/// let t = SimTime::ZERO;
/// assert_eq!(gate.try_admit(t, &metrics), Admission::Admitted);
/// assert_eq!(gate.try_admit(t, &metrics), Admission::Admitted);
/// assert!(matches!(gate.try_admit(t, &metrics), Admission::Shed { .. }));
/// // A second later one unit has drained and a slot is free again.
/// let later = SimTime::from_secs(1);
/// assert_eq!(gate.try_admit(later, &metrics), Admission::Admitted);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    capacity: u64,
    drain_per_sec: f64,
    level: f64,
    last: SimTime,
    admitted: u64,
    shed: u64,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` queued units, draining at
    /// `drain_per_sec` units per second.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `drain_per_sec` is not positive.
    pub fn new(capacity: u64, drain_per_sec: f64) -> Self {
        assert!(capacity > 0, "admission capacity must be positive");
        assert!(drain_per_sec > 0.0, "drain rate must be positive");
        AdmissionGate {
            capacity,
            drain_per_sec,
            level: 0.0,
            last: SimTime::ZERO,
            admitted: 0,
            shed: 0,
        }
    }

    fn drain(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.level = (self.level - elapsed * self.drain_per_sec).max(0.0);
    }

    /// Admits or sheds one request at `now`, counting the outcome as
    /// `admission.admitted` / `admission.shed` in `metrics`.
    pub fn try_admit(&mut self, now: SimTime, metrics: &Registry) -> Admission {
        self.drain(now);
        let outcome = if self.level + 1.0 <= self.capacity as f64 {
            self.level += 1.0;
            self.admitted += 1;
            metrics.incr("admission.admitted");
            Admission::Admitted
        } else {
            self.shed += 1;
            metrics.incr("admission.shed");
            // Wait until enough has drained that one more unit fits.
            let overflow = self.level + 1.0 - self.capacity as f64;
            let secs = overflow / self.drain_per_sec;
            Admission::Shed {
                retry_after: SimDuration::from_nanos((secs * 1e9).ceil() as u64),
            }
        };
        metrics.set_gauge("admission.depth", self.level);
        outcome
    }

    /// Current bucket level (after draining to `now`).
    pub fn level(&mut self, now: SimTime) -> f64 {
        self.drain(now);
        self.level
    }

    /// Requests admitted over the gate's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed over the gate's lifetime.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[derive(Debug)]
struct BudgetInner {
    tokens: f64,
    max_tokens: f64,
    refill_per_sec: f64,
    last: SimTime,
    exhausted: u64,
}

/// A shared token bucket bounding fleet-wide retry volume.
///
/// Every retry must claim one token; the bucket refills at
/// `refill_per_sec` up to `max_tokens`. Clones share state, so one
/// budget can be handed to many [`rpc::RequestTracker`]s and the cap
/// holds across all of them — under correlated failure the fleet's
/// retries stop at the budget instead of storming the network.
///
/// ```
/// use simnet::overload::RetryBudget;
/// use simnet::SimTime;
///
/// let budget = RetryBudget::new(2.0, 1.0);
/// let t = SimTime::ZERO;
/// assert!(budget.try_claim(t));
/// assert!(budget.try_claim(t));
/// assert!(!budget.try_claim(t)); // exhausted
/// assert!(budget.try_claim(SimTime::from_secs(1))); // refilled
/// ```
///
/// [`rpc::RequestTracker`]: crate::rpc::RequestTracker
#[derive(Debug, Clone)]
pub struct RetryBudget {
    inner: Arc<Mutex<BudgetInner>>,
}

impl RetryBudget {
    /// A budget holding at most `max_tokens`, refilling at
    /// `refill_per_sec` tokens per second. Starts full.
    ///
    /// # Panics
    ///
    /// Panics if `max_tokens` or `refill_per_sec` is not positive.
    pub fn new(max_tokens: f64, refill_per_sec: f64) -> Self {
        assert!(max_tokens > 0.0, "budget must be positive");
        assert!(refill_per_sec > 0.0, "refill rate must be positive");
        RetryBudget {
            inner: Arc::new(Mutex::new(BudgetInner {
                tokens: max_tokens,
                max_tokens,
                refill_per_sec,
                last: SimTime::ZERO,
                exhausted: 0,
            })),
        }
    }

    /// Claims one retry token at `now`. Returns `false` (and counts
    /// the exhaustion) when the budget is empty.
    pub fn try_claim(&self, now: SimTime) -> bool {
        let mut g = self.inner.lock().unwrap();
        let elapsed = now.saturating_since(g.last).as_secs_f64();
        g.last = g.last.max(now);
        g.tokens = (g.tokens + elapsed * g.refill_per_sec).min(g.max_tokens);
        if g.tokens >= 1.0 {
            g.tokens -= 1.0;
            true
        } else {
            g.exhausted += 1;
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn tokens(&self, now: SimTime) -> f64 {
        let mut g = self.inner.lock().unwrap();
        let elapsed = now.saturating_since(g.last).as_secs_f64();
        g.last = g.last.max(now);
        g.tokens = (g.tokens + elapsed * g.refill_per_sec).min(g.max_tokens);
        g.tokens
    }

    /// Claims denied over the budget's lifetime.
    pub fn exhausted(&self) -> u64 {
        self.inner.lock().unwrap().exhausted
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes are sampled into the rolling window.
    Closed,
    /// Traffic is rejected until the cool-down elapses.
    Open,
    /// One probe request at a time is allowed through.
    HalfOpen,
}

/// Trip and recovery thresholds of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Rolling outcome-window length.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Error fraction in the window that trips the breaker.
    pub error_threshold: f64,
    /// A success slower than this counts as *slow* (gray failure).
    pub latency_threshold: SimDuration,
    /// Slow fraction in the window that trips the breaker.
    pub slow_threshold: f64,
    /// Cool-down in the open state before half-open probing.
    pub open_for: SimDuration,
    /// Probe successes required to close from half-open.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 20,
            min_samples: 8,
            error_threshold: 0.5,
            latency_threshold: SimDuration::from_secs(1),
            slow_threshold: 0.5,
            open_for: SimDuration::from_secs(10),
            probes_to_close: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Outcome {
    ok: bool,
    slow: bool,
}

/// A per-target circuit breaker with latency awareness.
///
/// Closed → open when the rolling window shows too many errors *or*
/// too many slow successes; open → half-open after the cool-down;
/// half-open admits exactly one probe at a time, closing after
/// `probes_to_close` consecutive probe successes and reopening on any
/// probe failure.
///
/// ```
/// use simnet::overload::{BreakerConfig, BreakerState, CircuitBreaker};
/// use simnet::telemetry::metrics::Registry;
/// use simnet::{SimDuration, SimTime};
///
/// let metrics = Registry::new();
/// let mut b = CircuitBreaker::new(BreakerConfig {
///     window: 4,
///     min_samples: 4,
///     ..BreakerConfig::default()
/// });
/// let t = SimTime::ZERO;
/// for _ in 0..4 {
///     assert!(b.allow(t, &metrics));
///     b.record_failure(t, &metrics);
/// }
/// assert_eq!(b.state(), BreakerState::Open);
/// assert!(!b.allow(t, &metrics));
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    outcomes: VecDeque<Outcome>,
    opened_at: SimTime,
    probe_inflight: bool,
    probe_successes: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            outcomes: VecDeque::with_capacity(config.window),
            opened_at: SimTime::ZERO,
            probe_inflight: false,
            probe_successes: 0,
            trips: 0,
        }
    }

    /// Current state (after any cool-down transition would apply on
    /// the next [`CircuitBreaker::allow`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request may be sent to the target at `now`. Rejections
    /// count as `breaker.rejected`.
    pub fn allow(&mut self, now: SimTime, metrics: &Registry) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_since(self.opened_at) >= self.config.open_for {
                    self.state = BreakerState::HalfOpen;
                    self.probe_inflight = true;
                    self.probe_successes = 0;
                    metrics.incr("breaker.half_open");
                    true
                } else {
                    metrics.incr("breaker.rejected");
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    metrics.incr("breaker.rejected");
                    false
                } else {
                    self.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// Records a successful request that took `latency`, counted as
    /// slow when it exceeds the configured threshold.
    pub fn record_success(&mut self, now: SimTime, latency: SimDuration, metrics: &Registry) {
        let slow = latency > self.config.latency_threshold;
        match self.state {
            BreakerState::Closed => {
                self.push(Outcome { ok: true, slow });
                self.maybe_trip(now, metrics);
            }
            BreakerState::HalfOpen => {
                self.probe_inflight = false;
                if slow {
                    // A slow probe is not a recovery: reopen.
                    self.trip(now, metrics);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probes_to_close {
                        self.state = BreakerState::Closed;
                        self.outcomes.clear();
                        metrics.incr("breaker.close");
                    }
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a failed (errored or timed-out) request.
    pub fn record_failure(&mut self, now: SimTime, metrics: &Registry) {
        match self.state {
            BreakerState::Closed => {
                self.push(Outcome {
                    ok: false,
                    slow: false,
                });
                self.maybe_trip(now, metrics);
            }
            BreakerState::HalfOpen => {
                self.probe_inflight = false;
                self.trip(now, metrics);
            }
            BreakerState::Open => {}
        }
    }

    fn push(&mut self, outcome: Outcome) {
        if self.outcomes.len() == self.config.window {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(outcome);
    }

    fn maybe_trip(&mut self, now: SimTime, metrics: &Registry) {
        let n = self.outcomes.len();
        if n < self.config.min_samples {
            return;
        }
        let errors = self.outcomes.iter().filter(|o| !o.ok).count() as f64;
        let slow = self.outcomes.iter().filter(|o| o.ok && o.slow).count() as f64;
        let n = n as f64;
        if errors / n >= self.config.error_threshold || slow / n >= self.config.slow_threshold {
            self.trip(now, metrics);
        }
    }

    fn trip(&mut self, now: SimTime, metrics: &Registry) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.outcomes.clear();
        self.probe_inflight = false;
        self.probe_successes = 0;
        self.trips += 1;
        metrics.incr("breaker.open");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    fn metrics() -> Registry {
        Registry::new()
    }

    #[test]
    fn gate_sheds_past_capacity_and_recovers_by_draining() {
        let m = metrics();
        let mut gate = AdmissionGate::new(4, 2.0);
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            assert_eq!(gate.try_admit(t0, &m), Admission::Admitted);
        }
        let Admission::Shed { retry_after } = gate.try_admit(t0, &m) else {
            panic!("fifth request must shed");
        };
        // Level 4, capacity 4, drain 2/s: one unit frees in 0.5 s.
        assert_eq!(retry_after, SimDuration::from_millis(500));
        assert_eq!(gate.try_admit(t0 + retry_after, &m), Admission::Admitted);
        assert_eq!(gate.admitted(), 5);
        assert_eq!(gate.shed(), 1);
        assert_eq!(m.counter("admission.admitted"), 5);
        assert_eq!(m.counter("admission.shed"), 1);
    }

    #[test]
    fn gate_conserves_offered_into_admitted_plus_shed() {
        let m = metrics();
        let mut gate = AdmissionGate::new(8, 100.0);
        let mut rng = DeterministicRng::seed_from(0x0AD1);
        let mut offered = 0u64;
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            t += SimDuration::from_micros(rng.next_bounded(20_000));
            offered += 1;
            gate.try_admit(t, &m);
        }
        assert_eq!(gate.admitted() + gate.shed(), offered);
        assert!(gate.shed() > 0, "offered load above drain rate must shed");
        assert!(gate.admitted() > 0);
    }

    #[test]
    fn budget_is_shared_across_clones_and_never_overdrawn() {
        // Property: under N concurrent claimants hammering clones of
        // one budget, total claims granted within any interval never
        // exceed max_tokens + refill over that interval.
        for seed in 0..20u64 {
            let mut rng = DeterministicRng::seed_from(0xB0D6 ^ seed);
            let max = 1.0 + rng.next_bounded(16) as f64;
            let rate = 0.5 + rng.next_f64() * 8.0;
            let budget = RetryBudget::new(max, rate);
            let claimants: Vec<RetryBudget> = (0..8).map(|_| budget.clone()).collect();
            let mut granted = 0u64;
            let mut t = SimTime::ZERO;
            let horizon = SimDuration::from_secs(20);
            while t.saturating_since(SimTime::ZERO) < horizon {
                let who = rng.next_bounded(claimants.len() as u64) as usize;
                if claimants[who].try_claim(t) {
                    granted += 1;
                }
                t += SimDuration::from_millis(rng.next_bounded(100));
            }
            let elapsed = t.as_secs_f64();
            let ceiling = max + rate * elapsed;
            assert!(
                (granted as f64) <= ceiling + 1e-6,
                "seed {seed}: granted {granted} > ceiling {ceiling}"
            );
            assert!(budget.exhausted() > 0, "seed {seed}: load must exhaust");
        }
    }

    #[test]
    fn budget_refills_to_cap_only() {
        let budget = RetryBudget::new(3.0, 1.0);
        for _ in 0..3 {
            assert!(budget.try_claim(SimTime::ZERO));
        }
        assert!(!budget.try_claim(SimTime::ZERO));
        // A long quiet period refills to the cap, not beyond.
        let later = SimTime::from_secs(1000);
        assert!((budget.tokens(later) - 3.0).abs() < 1e-9);
    }

    fn quick_breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            error_threshold: 0.5,
            latency_threshold: SimDuration::from_millis(100),
            slow_threshold: 0.5,
            open_for: SimDuration::from_secs(5),
            probes_to_close: 2,
        })
    }

    #[test]
    fn breaker_trips_on_errors_probes_then_closes() {
        let m = metrics();
        let mut b = quick_breaker();
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            assert!(b.allow(t0, &m));
            b.record_failure(t0, &m);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(t0 + SimDuration::from_secs(1), &m));
        // Cool-down elapses: exactly one probe at a time.
        let t1 = t0 + SimDuration::from_secs(5);
        assert!(b.allow(t1, &m));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(t1, &m), "second concurrent probe refused");
        b.record_success(t1, SimDuration::from_millis(1), &m);
        assert!(b.allow(t1, &m));
        b.record_success(t1, SimDuration::from_millis(1), &m);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn breaker_trips_on_slow_successes() {
        let m = metrics();
        let mut b = quick_breaker();
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            assert!(b.allow(t0, &m));
            b.record_success(t0, SimDuration::from_secs(2), &m);
        }
        assert_eq!(b.state(), BreakerState::Open, "gray failure must trip");
    }

    #[test]
    fn breaker_probe_failure_reopens() {
        let m = metrics();
        let mut b = quick_breaker();
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            b.allow(t0, &m);
            b.record_failure(t0, &m);
        }
        let t1 = t0 + SimDuration::from_secs(5);
        assert!(b.allow(t1, &m));
        b.record_failure(t1, &m);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(t1 + SimDuration::from_secs(1), &m));
    }

    #[test]
    fn breaker_state_machine_invariants_under_random_sequences() {
        // Property sweep standing in for a proptest harness: across
        // many random error/latency sequences the breaker (1) never
        // admits while open and inside the cool-down, (2) admits at
        // most one concurrent probe in half-open, and (3) only reaches
        // closed from half-open via probes_to_close successes.
        for seed in 0..64u64 {
            let m = metrics();
            let mut rng = DeterministicRng::seed_from(0xC1BC ^ (seed * 0x9E37));
            let config = BreakerConfig {
                window: 4 + rng.next_bounded(12) as usize,
                min_samples: 2 + rng.next_bounded(4) as usize,
                error_threshold: 0.3 + rng.next_f64() * 0.5,
                latency_threshold: SimDuration::from_millis(50 + rng.next_bounded(200)),
                slow_threshold: 0.3 + rng.next_f64() * 0.5,
                open_for: SimDuration::from_secs(1 + rng.next_bounded(10)),
                probes_to_close: 1 + rng.next_bounded(3) as u32,
            };
            let mut b = CircuitBreaker::new(config);
            let mut t = SimTime::ZERO;
            let mut inflight_probes = 0u32;
            let mut opened_at = SimTime::ZERO;
            for _ in 0..400 {
                t += SimDuration::from_millis(rng.next_bounded(2_000));
                let before = b.state();
                let allowed = b.allow(t, &m);
                match before {
                    BreakerState::Open => {
                        if allowed {
                            assert!(
                                t.saturating_since(opened_at) >= config.open_for,
                                "seed {seed}: served inside the cool-down"
                            );
                            assert_eq!(b.state(), BreakerState::HalfOpen);
                            inflight_probes = 1;
                        }
                    }
                    BreakerState::HalfOpen => {
                        if allowed {
                            inflight_probes += 1;
                        }
                        assert!(
                            inflight_probes <= 1,
                            "seed {seed}: more than one concurrent half-open probe"
                        );
                    }
                    BreakerState::Closed => assert!(allowed, "seed {seed}: closed must admit"),
                }
                if !allowed {
                    continue;
                }
                let in_probe = b.state() == BreakerState::HalfOpen;
                let trips_before = b.trips();
                if rng.chance(0.4) {
                    b.record_failure(t, &m);
                } else {
                    let latency = SimDuration::from_millis(rng.next_bounded(500));
                    b.record_success(t, latency, &m);
                }
                if in_probe {
                    inflight_probes = 0;
                }
                if b.trips() > trips_before {
                    opened_at = t;
                }
            }
        }
    }
}
