//! Randomized properties of the windowed operators, driven by
//! `simnet::rng::DeterministicRng` (reproducible, no external
//! property-testing dependency): watermark monotonicity, window-close
//! determinism under reordering, sample conservation and bounded state.

use std::collections::BTreeMap;

use simnet::rng::DeterministicRng;
use streams::{ClosedWindow, Observed, WindowSpec, WindowedAggregator};
use telemetry::NO_TRACE;

const CASES: usize = 256;

fn seed(case: usize, stream: u64) -> DeterministicRng {
    let base: u64 = std::env::var("DIMMER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x57E4);
    DeterministicRng::seed_from(base ^ (case as u64).wrapping_mul(0x9E37_79B9)).derive(stream)
}

fn rand_spec(rng: &mut DeterministicRng) -> WindowSpec {
    let size = rng.next_range(1, 2_000) as i64;
    if rng.chance(0.5) {
        WindowSpec::tumbling(size)
    } else {
        let slide = rng.next_range(1, size as u64) as i64;
        WindowSpec::sliding(size, slide)
    }
}

/// `(key, event time, value)` samples in arrival order.
fn rand_samples(rng: &mut DeterministicRng, span: i64) -> Vec<(u8, i64, f64)> {
    let n = rng.next_range(1, 200) as usize;
    (0..n)
        .map(|_| {
            (
                rng.next_bounded(4) as u8,
                rng.next_range(0, span as u64 - 1) as i64,
                rng.next_f64_range(-50.0, 50.0),
            )
        })
        .collect()
}

fn drain<K: Ord + Clone>(agg: &mut WindowedAggregator<K>) -> Vec<ClosedWindow<K>> {
    let mut closed = agg.close_ready();
    agg.advance_watermark_to(i64::MAX);
    closed.extend(agg.close_ready());
    closed
}

fn digest(closed: &[ClosedWindow<u8>]) -> Vec<(u8, i64, i64, u64)> {
    closed
        .iter()
        .map(|w| (w.key, w.start, w.end, w.acc.count))
        .collect()
}

/// Sums folded in a different arrival order differ in the last float
/// bits; everything else must agree exactly.
fn assert_equivalent(a: &[ClosedWindow<u8>], b: &[ClosedWindow<u8>], case: usize) {
    assert_eq!(digest(a), digest(b), "case {case}");
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x.acc.sum - y.acc.sum).abs() < 1e-9,
            "case {case}: sums diverged {} vs {}",
            x.acc.sum,
            y.acc.sum
        );
        assert_eq!(x.acc.min, y.acc.min, "case {case}");
        assert_eq!(x.acc.max, y.acc.max, "case {case}");
    }
}

#[test]
fn watermark_is_monotonic_under_arbitrary_streams() {
    for case in 0..CASES {
        let mut rng = seed(case, 1);
        let spec = rand_spec(&mut rng);
        let lateness = rng.next_range(0, 500) as i64;
        let mut agg: WindowedAggregator<u8> = WindowedAggregator::new(spec, lateness);
        let mut high = agg.watermark();
        for (key, t, value) in rand_samples(&mut rng, 5_000) {
            agg.observe(key, t, value, NO_TRACE);
            assert!(
                agg.watermark() >= high,
                "case {case}: watermark regressed {} -> {}",
                high,
                agg.watermark()
            );
            high = agg.watermark();
            // A wall-clock flush in between must never regress it either.
            if rng.chance(0.2) {
                agg.advance_watermark_to(rng.next_range(0, 6_000) as i64);
                assert!(agg.watermark() >= high, "case {case}: flush regressed");
                high = agg.watermark();
            }
        }
    }
}

#[test]
fn closes_are_deterministic_under_bounded_reordering() {
    for case in 0..CASES {
        let mut rng = seed(case, 2);
        let spec = rand_spec(&mut rng);
        let lateness = rng.next_range(100, 1_000) as i64;
        let mut samples = rand_samples(&mut rng, 5_000);
        samples.sort_by_key(|&(_, t, _)| t);

        // Reference: in timestamp order, closing incrementally.
        let mut reference: WindowedAggregator<u8> =
            WindowedAggregator::new(spec, lateness).with_max_open(usize::MAX);
        let mut ref_closed = Vec::new();
        for &(key, t, value) in &samples {
            assert_eq!(
                reference.observe(key, t, value, NO_TRACE),
                Observed::Accepted
            );
            ref_closed.extend(reference.close_ready());
        }
        ref_closed.extend(drain(&mut reference));

        // Jittered: each arrival delayed by at most the lateness horizon,
        // so nothing may be dropped and every close must be identical.
        let mut jittered: Vec<(i64, usize)> = samples
            .iter()
            .enumerate()
            .map(|(i, &(_, t, _))| (t + rng.next_range(0, lateness as u64) as i64, i))
            .collect();
        jittered.sort();
        let mut reordered: WindowedAggregator<u8> =
            WindowedAggregator::new(spec, lateness).with_max_open(usize::MAX);
        let mut out = Vec::new();
        for &(_, i) in &jittered {
            let (key, t, value) = samples[i];
            assert_eq!(
                reordered.observe(key, t, value, NO_TRACE),
                Observed::Accepted,
                "case {case}: bounded-late sample dropped"
            );
            out.extend(reordered.close_ready());
        }
        out.extend(drain(&mut reordered));

        assert_equivalent(&out, &ref_closed, case);
        assert_eq!(reordered.stats().late_dropped, 0, "case {case}");
    }
}

#[test]
fn full_shuffle_with_covering_lateness_matches_sorted_order() {
    for case in 0..CASES {
        let mut rng = seed(case, 3);
        let spec = rand_spec(&mut rng);
        let span = 3_000;
        // Lateness covering the whole span: no order can drop anything.
        // Unbounded state: shedding is arrival-order dependent by design
        // (the conservation test covers it); determinism is about closes.
        let mut sorted_agg: WindowedAggregator<u8> =
            WindowedAggregator::new(spec, span).with_max_open(usize::MAX);
        let mut shuffled_agg: WindowedAggregator<u8> =
            WindowedAggregator::new(spec, span).with_max_open(usize::MAX);

        let mut samples = rand_samples(&mut rng, span);
        let mut shuffled = samples.clone();
        rng.shuffle(&mut shuffled);
        samples.sort_by_key(|&(_, t, _)| t);

        for &(key, t, value) in &samples {
            sorted_agg.observe(key, t, value, NO_TRACE);
        }
        for &(key, t, value) in &shuffled {
            shuffled_agg.observe(key, t, value, NO_TRACE);
        }
        assert_equivalent(&drain(&mut sorted_agg), &drain(&mut shuffled_agg), case);
    }
}

#[test]
fn samples_are_conserved_across_accept_late_and_shed() {
    for case in 0..CASES {
        let mut rng = seed(case, 4);
        let size = rng.next_range(1, 500) as i64;
        let lateness = rng.next_range(0, 300) as i64;
        let max_open = rng.next_range(1, 8) as usize;
        let mut agg: WindowedAggregator<u8> =
            WindowedAggregator::new(WindowSpec::tumbling(size), lateness).with_max_open(max_open);

        let samples = rand_samples(&mut rng, 10_000);
        let mut accepted_closed = 0u64;
        for &(key, t, value) in &samples {
            agg.observe(key, t, value, NO_TRACE);
            accepted_closed += agg.close_ready().iter().map(|w| w.acc.count).sum::<u64>();
            assert!(
                agg.open_windows() <= max_open,
                "case {case}: state unbounded"
            );
        }
        accepted_closed += drain(&mut agg).iter().map(|w| w.acc.count).sum::<u64>();

        let stats = agg.stats();
        assert_eq!(stats.samples_in, samples.len() as u64, "case {case}");
        assert_eq!(
            stats.samples_in,
            stats.accepted + stats.late_dropped + stats.shed,
            "case {case}: {stats:?}"
        );
        // Tumbling windows assign each accepted sample to exactly one
        // pane, so every accepted sample surfaces in exactly one close.
        assert_eq!(accepted_closed, stats.accepted, "case {case}: {stats:?}");
    }
}

#[test]
fn closed_means_match_a_direct_computation() {
    for case in 0..CASES {
        let mut rng = seed(case, 5);
        let size = rng.next_range(10, 800) as i64;
        let span = 4_000;
        let mut agg: WindowedAggregator<u8> =
            WindowedAggregator::new(WindowSpec::tumbling(size), span);
        let samples = rand_samples(&mut rng, span);
        let mut expected: BTreeMap<(i64, u8), (u64, f64)> = BTreeMap::new();
        for &(key, t, value) in &samples {
            agg.observe(key, t, value, NO_TRACE);
            let start = t.div_euclid(size) * size;
            let e = expected.entry((start, key)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += value;
        }
        let closed = drain(&mut agg);
        assert_eq!(closed.len(), expected.len(), "case {case}");
        for w in closed {
            let (count, sum) = expected[&(w.start, w.key)];
            assert_eq!(w.acc.count, count, "case {case}");
            assert!((w.acc.sum - sum).abs() < 1e-9, "case {case}");
            assert!(
                (w.acc.mean() - sum / count as f64).abs() < 1e-12,
                "case {case}"
            );
        }
    }
}
