//! The aggregator node: the streaming tier between device proxies and
//! profile clients.
//!
//! One aggregator per district subscribes to every measurement topic
//! through a single wildcard, feeds samples into a keyed
//! [`WindowedAggregator`] (one pane per `(entity, quantity)` pair) and,
//! as the watermark closes windows, rolls the building panes up into
//! exact district aggregates. Closed windows go three places at once:
//!
//! 1. **retained middleware publications** on [`pubsub::RollupTopic`] topics,
//!    so late subscribers immediately see the latest window;
//! 2. the aggregator's **local tskv**, serving `/rollups` queries;
//! 3. the **flight recorder**, as `streams.window_close` hops carrying
//!    the trace ids of contributing samples.
//!
//! Recovery mirrors the Device-proxy's durable/volatile split: the
//! local store (raw samples, rollups, watermark) survives a crash, the
//! window state does not — it is rebuilt by replaying the raw tail
//! newer than `watermark - window size`. Samples that were in flight
//! during the outage come back through QoS 1 redelivery and the device
//! proxies' store-and-forward buffers; the raw store deduplicates, so
//! rollup sample counts are conserved exactly.

use std::collections::BTreeMap;

use dimmer_core::{DistrictId, Measurement, ProxyId, QuantityKind, Value};
use proxy::devices::unix_millis_at;
use proxy::registration::{ProxyRef, ProxyRole, Registration};
use proxy::webservice::{status, WsCall, WsClient, WsClientEvent, WsRequest, WsResponse, WsServer};
use proxy::{node_uri, WS_PORT};
use pubsub::{MeasurementTopic, PubSubClient, PubSubEvent, QoS, PUBSUB_PORT};
use simnet::overload::{Admission, AdmissionGate};
use simnet::{Context, Node, NodeId, Packet, SimDuration, TimerTag};
use storage::tskv::TimeSeriesStore;
use telemetry::{SpanId, NO_SPAN, NO_TRACE};

use crate::rollup::Rollup;
use crate::window::{Accumulator, WindowSpec, WindowedAggregator, DEFAULT_MAX_OPEN};

const TAG_HEARTBEAT: TimerTag = TimerTag(1);
const TAG_FLUSH: TimerTag = TimerTag(2);
const TAG_TSKV_MAINTAIN: TimerTag = TimerTag(3);
const WS_CLIENT_TAGS: u64 = 1_000_000_000;
const PUBSUB_TAGS: u64 = 2_000_000_000;

/// How often proxies heartbeat the master (matches the Device-proxy).
const HEARTBEAT_INTERVAL: SimDuration = SimDuration::from_secs(30);
/// Keepalive probing the broker so restarts are noticed and the
/// wildcard subscription re-established.
const KEEPALIVE_INTERVAL: SimDuration = SimDuration::from_secs(5);
/// Storage maintenance cadence: seal cold partitions, compact,
/// checkpoint the WAL (see `TimeSeriesStore::maintain`).
const TSKV_MAINTAIN_PERIOD: SimDuration = SimDuration::from_secs(300);
/// Default wall-clock flush period (watermark advance + window close).
pub const DEFAULT_FLUSH_INTERVAL: SimDuration = SimDuration::from_secs(5);
/// Default tumbling window size.
pub const DEFAULT_WINDOW_MILLIS: i64 = 300_000;
/// Default lateness horizon.
pub const DEFAULT_LATENESS_MILLIS: i64 = 30_000;
/// Default admission bound on queued `/rollups` queries.
pub const DEFAULT_ADMISSION_CAPACITY: u64 = 64;
/// Default sustained `/rollups` service rate (queries per second).
pub const DEFAULT_ADMISSION_RATE: f64 = 500.0;

/// Series name of the persisted watermark (single point at t=0).
const WATERMARK_SERIES: &str = "meta/watermark";

fn raw_series(entity: &str, device: &str, quantity: &str) -> String {
    format!("raw/{entity}/{device}/{quantity}")
}

/// Base name of the four per-window series (`<base>/{count,sum,min,max}`).
fn rollup_series_base(entity: Option<&str>, quantity: &str, window_millis: i64) -> String {
    match entity {
        Some(entity) => format!("agg/entity/{entity}/{quantity}/{window_millis}"),
        None => format!("agg/district/{quantity}/{window_millis}"),
    }
}

/// Static configuration of an aggregator.
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// The aggregator's proxy id (it registers like any proxy).
    pub proxy: ProxyId,
    /// The district whose measurements it rolls up.
    pub district: DistrictId,
    /// The master node.
    pub master: NodeId,
    /// The middleware broker.
    pub broker: NodeId,
    /// Window shape (tumbling by default).
    pub window: WindowSpec,
    /// Lateness horizon: how long the watermark trails the newest
    /// event time, bounding out-of-order acceptance.
    pub lateness_millis: i64,
    /// Wall-clock flush period.
    pub flush_interval: SimDuration,
    /// Unix time at simulation start.
    pub epoch_offset_millis: i64,
    /// Bound on concurrently open `(entity, quantity)` panes.
    pub max_open_windows: usize,
    /// Admission bound on queued `/rollups` queries; bursts past it are
    /// shed with a 503 and a `Retry-After`.
    pub admission_capacity: u64,
    /// Sustained `/rollups` queries per second the aggregator serves.
    pub admission_rate: f64,
}

impl AggregatorConfig {
    /// A configuration with default window, lateness and flush values.
    pub fn new(
        proxy: ProxyId,
        district: DistrictId,
        master: NodeId,
        broker: NodeId,
        epoch_offset_millis: i64,
    ) -> Self {
        AggregatorConfig {
            proxy,
            district,
            master,
            broker,
            window: WindowSpec::tumbling(DEFAULT_WINDOW_MILLIS),
            lateness_millis: DEFAULT_LATENESS_MILLIS,
            flush_interval: DEFAULT_FLUSH_INTERVAL,
            epoch_offset_millis,
            max_open_windows: DEFAULT_MAX_OPEN,
            admission_capacity: DEFAULT_ADMISSION_CAPACITY,
            admission_rate: DEFAULT_ADMISSION_RATE,
        }
    }

    /// Overrides the `/rollups` admission limits.
    #[must_use]
    pub fn with_admission(mut self, capacity: u64, rate: f64) -> Self {
        self.admission_capacity = capacity;
        self.admission_rate = rate;
        self
    }
}

/// Lifetime counters of an aggregator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Measurement messages decoded and stored.
    pub samples_in: u64,
    /// Redelivered samples already present in the raw store.
    pub duplicates: u64,
    /// Messages that failed to decode.
    pub decode_errors: u64,
    /// Building-tier windows closed.
    pub windows_closed: u64,
    /// Rollups published into the middleware (both tiers).
    pub rollups_published: u64,
    /// Raw samples replayed from the store after a restart.
    pub recovered: u64,
    /// Web-Service requests served.
    pub ws_requests: u64,
    /// `/rollups` queries shed by the admission gate.
    pub ws_shed: u64,
}

/// The per-district streaming aggregator node.
pub struct AggregatorNode {
    config: AggregatorConfig,
    /// Building-tier operator keyed by `(entity, quantity)`.
    op: WindowedAggregator<(String, String)>,
    store: TimeSeriesStore,
    ws: WsServer,
    ws_client: WsClient,
    pubsub: PubSubClient,
    registered: bool,
    heartbeat_req: Option<u64>,
    /// Admission gate over `/rollups` (the ops plane is never shed).
    gate: AdmissionGate,
    stats: AggregatorStats,
}

impl std::fmt::Debug for AggregatorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregatorNode")
            .field("proxy", &self.config.proxy)
            .field("district", &self.config.district)
            .field("registered", &self.registered)
            .field("open_windows", &self.op.open_windows())
            .finish()
    }
}

impl AggregatorNode {
    /// Creates an aggregator.
    pub fn new(config: AggregatorConfig) -> Self {
        let op = WindowedAggregator::new(config.window, config.lateness_millis)
            .with_max_open(config.max_open_windows);
        let pubsub = PubSubClient::new(config.broker, PUBSUB_TAGS);
        let gate = AdmissionGate::new(config.admission_capacity, config.admission_rate);
        AggregatorNode {
            config,
            op,
            gate,
            store: TimeSeriesStore::new(),
            ws: WsServer::new(),
            ws_client: WsClient::new(WS_CLIENT_TAGS),
            pubsub,
            registered: false,
            heartbeat_req: None,
            stats: AggregatorStats::default(),
        }
    }

    /// Whether the master has acknowledged registration.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// The counters.
    pub fn stats(&self) -> AggregatorStats {
        self.stats
    }

    /// The window-operator counters (acceptance conservation etc.).
    pub fn window_stats(&self) -> crate::window::WindowStats {
        self.op.stats()
    }

    /// The local rollup store, for inspection.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// The current event-time watermark.
    pub fn watermark(&self) -> i64 {
        self.op.watermark()
    }

    /// District-tier rollups persisted for `quantity` over
    /// `[from, to)`, assembled from the local store.
    pub fn district_rollups(&self, quantity: QuantityKind, from: i64, to: i64) -> Vec<Rollup> {
        self.assemble_rollups(None, quantity, self.config.window.size_millis(), from, to)
    }

    fn assemble_rollups(
        &self,
        entity: Option<&str>,
        quantity: QuantityKind,
        window_millis: i64,
        from: i64,
        to: i64,
    ) -> Vec<Rollup> {
        let base = rollup_series_base(entity, quantity.as_str(), window_millis);
        let counts = self.store.range(&format!("{base}/count"), from, to);
        let sums: BTreeMap<i64, f64> = self
            .store
            .range(&format!("{base}/sum"), from, to)
            .into_iter()
            .collect();
        let mins: BTreeMap<i64, f64> = self
            .store
            .range(&format!("{base}/min"), from, to)
            .into_iter()
            .collect();
        let maxs: BTreeMap<i64, f64> = self
            .store
            .range(&format!("{base}/max"), from, to)
            .into_iter()
            .collect();
        counts
            .into_iter()
            .map(|(start, count)| Rollup {
                district: self.config.district.as_str().to_owned(),
                entity: entity.map(str::to_owned),
                quantity,
                window_start: start,
                window_millis,
                count: count as u64,
                sum: sums.get(&start).copied().unwrap_or(0.0),
                min: mins.get(&start).copied().unwrap_or(f64::INFINITY),
                max: maxs.get(&start).copied().unwrap_or(f64::NEG_INFINITY),
            })
            .collect()
    }

    fn register(&mut self, ctx: &mut Context<'_>) {
        let registration = Registration {
            proxy: self.config.proxy.clone(),
            district: self.config.district.clone(),
            uri: node_uri(ctx.node_id(), "/"),
            role: ProxyRole::Aggregator,
        };
        let request = WsRequest::post("/register", registration.to_value());
        self.ws_client.request(ctx, self.config.master, &request);
    }

    fn ingest(
        &mut self,
        ctx: &mut Context<'_>,
        pkt_topic: &pubsub::Topic,
        payload: &[u8],
        trace: u64,
        recv_span: SpanId,
    ) {
        let Some(topic) = MeasurementTopic::parse(pkt_topic) else {
            return; // not a measurement topic
        };
        let decoded = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| dimmer_core::json::from_str(text).ok())
            .and_then(|v| Measurement::from_value(&v).ok());
        let Some(measurement) = decoded else {
            self.stats.decode_errors += 1;
            ctx.telemetry().metrics.incr("streams.decode_errors");
            return;
        };
        let t = measurement.timestamp().as_unix_millis();
        let value = measurement.value();
        let series = raw_series(&topic.entity, &topic.device, &topic.quantity);
        // QoS 1 redelivery and post-restart retained replays produce
        // duplicates; the raw store is the dedup authority.
        if !self.store.range(&series, t, t.saturating_add(1)).is_empty() {
            self.stats.duplicates += 1;
            ctx.telemetry().metrics.incr("streams.duplicates");
            return;
        }
        self.store.insert(&series, t, value);
        self.stats.samples_in += 1;
        ctx.telemetry().metrics.incr("streams.samples_in");
        let ingest_span = ctx.span_hop(
            "streams.ingest",
            trace,
            recv_span,
            format!("entity={} device={}", topic.entity, topic.device),
        );
        match self
            .op
            .observe_spanned((topic.entity, topic.quantity), t, value, trace, ingest_span)
        {
            crate::window::Observed::Late => ctx.telemetry().metrics.incr("streams.late_dropped"),
            crate::window::Observed::Shed => ctx.telemetry().metrics.incr("streams.shed"),
            crate::window::Observed::Accepted => {}
        }
        self.drain(ctx);
    }

    /// Closes every ready building pane, rolls the same panes up into
    /// district accumulators, then persists + publishes both tiers.
    fn drain(&mut self, ctx: &mut Context<'_>) {
        let closed = self.op.close_ready();
        if !closed.is_empty() {
            self.stats.windows_closed += closed.len() as u64;
            ctx.telemetry()
                .metrics
                .add("streams.windows_closed", closed.len() as u64);
            // Merging the building accumulators that closed for the same
            // (window, quantity) gives the exact district aggregate: the
            // watermark is shared, so all panes of a window close in the
            // same drain.
            let mut district: BTreeMap<(i64, String), Accumulator> = BTreeMap::new();
            for w in &closed {
                let (entity, quantity) = &w.key;
                self.emit_rollup(ctx, Some(entity.clone()), quantity, w.start, &w.acc);
                district
                    .entry((w.start, quantity.clone()))
                    .or_default()
                    .merge(&w.acc);
            }
            for ((start, quantity), acc) in district {
                self.emit_rollup(ctx, None, &quantity, start, &acc);
            }
        }
        // Persist progress so recovery never re-closes a closed window.
        let wm = self.op.watermark();
        if wm > i64::MIN {
            self.store.insert(WATERMARK_SERIES, 0, wm as f64);
        }
        ctx.telemetry()
            .metrics
            .set_gauge("streams.open_windows", self.op.open_windows() as f64);
    }

    fn emit_rollup(
        &mut self,
        ctx: &mut Context<'_>,
        entity: Option<String>,
        quantity: &str,
        start: i64,
        acc: &Accumulator,
    ) {
        let Ok(quantity_kind) = QuantityKind::parse(quantity) else {
            return; // foreign quantity segment; nothing speaks it downstream
        };
        let window_millis = self.config.window.size_millis();
        let base = rollup_series_base(entity.as_deref(), quantity, window_millis);
        self.store
            .insert(&format!("{base}/count"), start, acc.count as f64);
        self.store.insert(&format!("{base}/sum"), start, acc.sum);
        self.store.insert(&format!("{base}/min"), start, acc.min);
        self.store.insert(&format!("{base}/max"), start, acc.max);

        let rollup = Rollup {
            district: self.config.district.as_str().to_owned(),
            entity,
            quantity: quantity_kind,
            window_start: start,
            window_millis,
            count: acc.count,
            sum: acc.sum,
            min: acc.min,
            max: acc.max,
        };
        let Ok(topic) = rollup.topic() else {
            return;
        };
        // Tie the closed window into the flight recorder: one hop per
        // (bounded) contributing sample, each parented onto the span the
        // sample entered the operator under.
        let mut close = (NO_TRACE, NO_SPAN);
        for &(trace, parent) in acc.traces() {
            let span = ctx.span_hop(
                "streams.window_close",
                trace,
                parent,
                format!("{topic} start={start} count={}", acc.count),
            );
            if close.0 == NO_TRACE {
                close = (trace, span);
            }
        }
        let payload = dimmer_core::json::to_string(&rollup.to_value()).into_bytes();
        self.pubsub
            .publish_spanned(ctx, topic, payload, true, QoS::AtMostOnce, close.0, close.1);
        self.stats.rollups_published += 1;
        ctx.telemetry().metrics.incr("streams.rollups_published");
        ctx.telemetry()
            .metrics
            .observe("streams.window_samples", acc.count as f64);
    }

    fn serve(&mut self, ctx: &mut Context<'_>, call: WsCall) {
        self.stats.ws_requests += 1;
        ctx.telemetry().metrics.incr("streams.ws_requests");
        let request = &call.request;
        let response = match request.path.as_str() {
            "/info" => self.info(ctx),
            "/rollups" => match self.gate.try_admit(ctx.now(), &ctx.telemetry().metrics) {
                Admission::Admitted => self.rollups(request),
                Admission::Shed { retry_after } => {
                    self.stats.ws_shed += 1;
                    WsResponse::unavailable(retry_after)
                }
            },
            "/metrics" => WsResponse::ok(Value::from(ctx.telemetry().exposition())),
            "/health" => self.health(ctx),
            _ => WsResponse::error(status::NOT_FOUND, "unknown path"),
        };
        self.ws.respond(ctx, &call, response);
    }

    fn info(&self, ctx: &Context<'_>) -> WsResponse {
        WsResponse::ok(Value::object([
            ("proxy", Value::from(self.config.proxy.as_str())),
            ("district", Value::from(self.config.district.as_str())),
            ("kind", Value::from("aggregator")),
            (
                "window_millis",
                Value::from(self.config.window.size_millis()),
            ),
            ("lateness_millis", Value::from(self.config.lateness_millis)),
            ("watermark", Value::from(self.op.watermark())),
            ("open_windows", Value::from(self.op.open_windows() as i64)),
            ("uri", Value::from(node_uri(ctx.node_id(), "/").to_string())),
        ]))
    }

    /// The ops-plane liveness view: identity plus the queue depths that
    /// show backpressure (open panes, unacked publishes).
    fn health(&self, ctx: &Context<'_>) -> WsResponse {
        ctx.telemetry().metrics.set_gauge(
            "streams.pending_publishes",
            self.pubsub.pending_publishes() as f64,
        );
        WsResponse::ok(Value::object([
            ("status", Value::from("ok")),
            ("proxy", Value::from(self.config.proxy.as_str())),
            ("district", Value::from(self.config.district.as_str())),
            ("kind", Value::from("aggregator")),
            ("registered", Value::from(self.registered)),
            ("watermark", Value::from(self.op.watermark())),
            ("open_windows", Value::from(self.op.open_windows() as i64)),
            (
                "pending_publishes",
                Value::from(self.pubsub.pending_publishes() as i64),
            ),
        ]))
    }

    fn rollups(&self, request: &WsRequest) -> WsResponse {
        let entity = match (
            request.query("level").unwrap_or("district"),
            request.query("entity"),
        ) {
            ("district", _) => None,
            ("entity", Some(entity)) => Some(entity.to_owned()),
            ("entity", None) => {
                return WsResponse::error(status::BAD_REQUEST, "entity parameter required")
            }
            _ => return WsResponse::error(status::BAD_REQUEST, "level must be district or entity"),
        };
        // No quantity at district level means a snapshot across every
        // quantity rolled up so far — what the master's fleet scraper
        // retains for degraded-mode serving. Entity level stays strict.
        let quantity = match request.query("quantity") {
            Some(raw) => match QuantityKind::parse(raw) {
                Ok(q) => Some(q),
                Err(e) => return WsResponse::error(status::BAD_REQUEST, e.to_string()),
            },
            None if entity.is_some() => {
                return WsResponse::error(status::BAD_REQUEST, "quantity parameter required")
            }
            None => None,
        };
        let parse_millis = |key: &str, default: i64| -> Result<i64, WsResponse> {
            match request.query(key) {
                None => Ok(default),
                Some(raw) => raw
                    .parse()
                    .map_err(|_| WsResponse::error(status::BAD_REQUEST, format!("invalid {key}"))),
            }
        };
        let window = match parse_millis("window", self.config.window.size_millis()) {
            Ok(w) if w > 0 => w,
            Ok(_) => return WsResponse::error(status::BAD_REQUEST, "invalid window"),
            Err(r) => return r,
        };
        let from = match parse_millis("from", i64::MIN) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let to = match parse_millis("to", i64::MAX) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let rollups = match quantity {
            Some(q) => self.assemble_rollups(entity.as_deref(), q, window, from, to),
            None => {
                let suffix = format!("/{window}/count");
                let mut quantities: Vec<QuantityKind> = self
                    .store
                    .series_names()
                    .filter_map(|s| s.strip_prefix("agg/district/")?.strip_suffix(&suffix))
                    .filter_map(|q| QuantityKind::parse(q).ok())
                    .collect();
                quantities.sort_unstable();
                quantities.dedup();
                quantities
                    .into_iter()
                    .flat_map(|q| self.assemble_rollups(None, q, window, from, to))
                    .collect()
            }
        };
        WsResponse::ok(Value::object([
            ("district", Value::from(self.config.district.as_str())),
            (
                "rollups",
                Value::Array(rollups.iter().map(Rollup::to_value).collect()),
            ),
        ]))
    }

    /// Rebuilds the volatile window state from the durable store: seed
    /// the watermark from its persisted value, then replay every raw
    /// sample new enough to still belong to an open window.
    fn recover(&mut self, ctx: &mut Context<'_>) {
        let mut op = WindowedAggregator::new(self.config.window, self.config.lateness_millis)
            .with_max_open(self.config.max_open_windows);
        if let Some((_, wm)) = self.store.latest(WATERMARK_SERIES) {
            op.advance_watermark_to(wm as i64);
        }
        let replay_from = op
            .watermark()
            .saturating_sub(self.config.window.size_millis());
        let mut recovered = 0u64;
        let raw: Vec<String> = self
            .store
            .series_names()
            .filter(|s| s.starts_with("raw/"))
            .map(str::to_owned)
            .collect();
        for series in raw {
            let mut parts = series.splitn(4, '/');
            let (Some("raw"), Some(entity), Some(_device), Some(quantity)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            for (t, v) in self.store.range(&series, replay_from, i64::MAX) {
                op.restore((entity.to_owned(), quantity.to_owned()), t, v);
                recovered += 1;
            }
        }
        self.op = op;
        self.stats.recovered += recovered;
        ctx.telemetry().metrics.add("streams.recovered", recovered);
    }
}

impl Node for AggregatorNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.store.attach_metrics(ctx.telemetry().metrics.clone());
        self.register(ctx);
        ctx.set_timer(HEARTBEAT_INTERVAL, TAG_HEARTBEAT);
        let filter = MeasurementTopic::district_filter(self.config.district.as_str())
            .expect("district ids satisfy the filter grammar");
        self.pubsub.subscribe(ctx, filter, QoS::AtLeastOnce);
        self.pubsub.start_keepalive(ctx, KEEPALIVE_INTERVAL);
        ctx.set_timer(self.config.flush_interval, TAG_FLUSH);
        ctx.set_timer(TSKV_MAINTAIN_PERIOD, TAG_TSKV_MAINTAIN);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // Volatile across a reboot: registration, the middleware
        // session, the open window panes, and the store's mutable head.
        // Durable: the store's sealed segments, snapshot and WAL (raw
        // tail, rollups, watermark) and the lifetime counters. Replay
        // the WAL tail first so `recover` rebuilds windows from a store
        // with every acknowledged point back in place.
        self.store.crash_recover();
        self.ws_client.reset();
        self.pubsub.reset();
        self.registered = false;
        self.heartbeat_req = None;
        self.recover(ctx);
        ctx.telemetry().metrics.incr("streams.restart");
        self.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.port {
            PUBSUB_PORT => {
                if let Some(PubSubEvent::Message {
                    topic,
                    payload,
                    trace,
                    span,
                }) = self.pubsub.accept(ctx, &pkt)
                {
                    self.ingest(ctx, &topic, &payload, trace, span);
                }
            }
            WS_PORT => {
                if let Some(event) = self.ws_client.accept(&pkt) {
                    match event {
                        WsClientEvent::Response { id, response } => {
                            if self.heartbeat_req == Some(id) {
                                self.heartbeat_req = None;
                                if response.status == status::NOT_FOUND {
                                    // The master evicted or forgot us:
                                    // register again.
                                    self.registered = false;
                                    ctx.telemetry().metrics.incr("streams.reregister");
                                    self.register(ctx);
                                }
                            } else if response.is_ok() {
                                self.registered = true;
                            }
                        }
                        WsClientEvent::TimedOut { id } => {
                            if self.heartbeat_req == Some(id) {
                                self.heartbeat_req = None;
                            }
                        }
                    }
                    return;
                }
                if let Some(call) = self.ws.accept(ctx, &pkt) {
                    self.serve(ctx, call);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        match tag {
            TAG_HEARTBEAT => {
                if self.registered {
                    let body = ProxyRef {
                        proxy: self.config.proxy.clone(),
                        district: self.config.district.clone(),
                    }
                    .to_value();
                    let request = WsRequest::post("/heartbeat", body);
                    let id = self.ws_client.request(ctx, self.config.master, &request);
                    self.heartbeat_req = Some(id);
                } else {
                    self.register(ctx);
                }
                ctx.set_timer(HEARTBEAT_INTERVAL, TAG_HEARTBEAT);
            }
            TAG_FLUSH => {
                // Even with no traffic, wall-clock progress closes
                // windows: the watermark may not regress, so this only
                // ever helps.
                let now_unix = unix_millis_at(self.config.epoch_offset_millis, ctx.now());
                self.op.advance_watermark(now_unix);
                self.drain(ctx);
                ctx.set_timer(self.config.flush_interval, TAG_FLUSH);
            }
            TAG_TSKV_MAINTAIN => {
                self.store.maintain();
                ctx.set_timer(TSKV_MAINTAIN_PERIOD, TAG_TSKV_MAINTAIN);
            }
            tag if tag.0 >= PUBSUB_TAGS => {
                self.pubsub.on_timer(ctx, tag);
            }
            tag if tag.0 >= WS_CLIENT_TAGS => {
                self.ws_client.on_timer(ctx, tag);
            }
            _ => {}
        }
    }
}
