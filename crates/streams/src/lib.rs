//! # dimmer-streams — windowed rollups for district profiling
//!
//! The paper claims the framework "profiles consumption from district
//! down to single building"; this crate is the streaming tier that
//! materializes those profiles instead of recomputing them per query:
//!
//! - [`window`] — event-time windowed operators: tumbling + sliding
//!   windows, monotonic watermarks with a bounded lateness horizon,
//!   bounded per-key state with shed accounting;
//! - [`rollup`] — the [`rollup::Rollup`] record shared by middleware
//!   publications, Web-Service responses and clients;
//! - [`aggregator`] — the [`aggregator::AggregatorNode`]: one per
//!   district, subscribing to measurement topics, rolling device →
//!   building → district up count-weighted (mean-of-means is exact),
//!   publishing retained rollups and serving `/rollups` redirects.

pub mod aggregator;
pub mod rollup;
pub mod window;

pub use aggregator::{AggregatorConfig, AggregatorNode, AggregatorStats};
pub use rollup::Rollup;
pub use window::{
    Accumulator, ClosedWindow, Observed, WindowSpec, WindowStats, WindowedAggregator,
};
