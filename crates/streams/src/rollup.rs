//! The rollup record — one closed window at one aggregation tier.
//!
//! The same shape travels three ways: retained middleware publications
//! on [`pubsub::RollupTopic`] topics, the aggregator's `/rollups` Web
//! Service responses, and the profile client's parsed results.

use dimmer_core::{CoreError, QuantityKind, Value};
use pubsub::{PubSubError, RollupScope, RollupTopic, Topic};

/// One closed window at district or entity scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// The district the rollup belongs to.
    pub district: String,
    /// `None` for the district tier, `Some(entity)` for one building /
    /// network.
    pub entity: Option<String>,
    /// The measured quantity.
    pub quantity: QuantityKind,
    /// Window start (unix millis, inclusive).
    pub window_start: i64,
    /// Window length in milliseconds.
    pub window_millis: i64,
    /// Raw samples folded into the window.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Minimum sample value.
    pub min: f64,
    /// Maximum sample value.
    pub max: f64,
}

impl Rollup {
    /// Window end (unix millis, exclusive).
    pub fn window_end(&self) -> i64 {
        self.window_start + self.window_millis
    }

    /// The count-weighted mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// The retained topic this rollup publishes on.
    ///
    /// # Errors
    ///
    /// Returns [`PubSubError`] when an id violates the topic grammar.
    pub fn topic(&self) -> Result<Topic, PubSubError> {
        RollupTopic {
            district: self.district.clone(),
            scope: match &self.entity {
                None => RollupScope::District,
                Some(entity) => RollupScope::Entity(entity.clone()),
            },
            quantity: self.quantity.as_str().to_owned(),
            window_millis: self.window_millis,
        }
        .topic()
    }

    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("district", Value::from(self.district.as_str())),
            (
                "entity",
                match &self.entity {
                    Some(e) => Value::from(e.as_str()),
                    None => Value::Null,
                },
            ),
            ("quantity", Value::from(self.quantity.as_str())),
            ("window_start", Value::from(self.window_start)),
            ("window_millis", Value::from(self.window_millis)),
            ("count", Value::from(self.count as i64)),
            ("sum", Value::from(self.sum)),
            ("min", Value::from(self.min)),
            ("max", Value::from(self.max)),
            ("mean", Value::from(self.mean())),
        ])
    }

    /// Decodes a value produced by [`Rollup::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "rollup";
        Ok(Rollup {
            district: v.require_str(T, "district")?.to_owned(),
            entity: match v.get("entity") {
                Some(Value::Null) | None => None,
                Some(e) => Some(
                    e.as_str()
                        .ok_or_else(|| CoreError::Shape {
                            target: T,
                            reason: "entity must be a string or null".to_owned(),
                        })?
                        .to_owned(),
                ),
            },
            quantity: QuantityKind::parse(v.require_str(T, "quantity")?)?,
            window_start: v.require_i64(T, "window_start")?,
            window_millis: v.require_i64(T, "window_millis")?,
            count: v.require_i64(T, "count")?.max(0) as u64,
            sum: v.require_f64(T, "sum")?,
            min: v.require_f64(T, "min")?,
            max: v.require_f64(T, "max")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(entity: Option<&str>) -> Rollup {
        Rollup {
            district: "d1".to_owned(),
            entity: entity.map(str::to_owned),
            quantity: QuantityKind::Temperature,
            window_start: 1_425_859_200_000,
            window_millis: 300_000,
            count: 12,
            sum: 252.0,
            min: 18.5,
            max: 23.5,
        }
    }

    #[test]
    fn value_round_trip_both_scopes() {
        for rollup in [sample(None), sample(Some("b3"))] {
            assert_eq!(Rollup::from_value(&rollup.to_value()).unwrap(), rollup);
        }
    }

    #[test]
    fn derived_fields() {
        let r = sample(None);
        assert_eq!(r.window_end(), 1_425_859_500_000);
        assert_eq!(r.mean(), 21.0);
        assert_eq!(
            r.topic().unwrap().as_str(),
            "district/d1/agg/district/temperature/300000"
        );
        assert_eq!(
            sample(Some("b3")).topic().unwrap().as_str(),
            "district/d1/agg/entity/b3/temperature/300000"
        );
    }

    #[test]
    fn malformed_rejected() {
        assert!(Rollup::from_value(&Value::Null).is_err());
        let mut v = sample(None).to_value();
        v.insert("quantity", Value::from("vibes"));
        assert!(Rollup::from_value(&v).is_err());
    }
}
