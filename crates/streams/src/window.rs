//! Sim-time windowed aggregation operators.
//!
//! The operators work on **event time** (the unix-millis timestamp a
//! sample carries), not arrival time, so out-of-order delivery — store
//! and forward replays, QoS 1 redeliveries, reordered packets — does
//! not change what a window contains. Progress is tracked by a
//! monotonic **watermark**: once it passes a window's end, the window
//! closes and later stragglers for it are counted as late drops. The
//! watermark trails the newest event time by a configurable *lateness
//! horizon*, bounding both how long results are delayed and how much
//! state stays open.

use std::collections::BTreeMap;

use telemetry::{SpanId, TraceId, NO_SPAN, NO_TRACE};

/// Most contributing flight-recorder traces kept per accumulator; the
/// bound keeps per-window state O(1) under heavy traffic.
pub const TRACE_CAP: usize = 32;

/// Default cap on concurrently open `(window, key)` panes.
pub const DEFAULT_MAX_OPEN: usize = 4096;

/// A mergeable aggregate over one window's samples. Carrying the raw
/// `count` and `sum` (not the mean) is what makes hierarchical rollups
/// exact: merging building accumulators into a district one weights
/// every sample equally, so mean-of-means equals the raw mean.
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    /// Samples folded in.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Minimum sample value (`∞` when empty).
    pub min: f64,
    /// Maximum sample value (`-∞` when empty).
    pub max: f64,
    /// Flight-recorder `(trace, span)` pairs of contributing samples
    /// (bounded). The span is the hop under which the sample entered
    /// the operator, so window-close hops can parent onto it.
    traces: Vec<(TraceId, SpanId)>,
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator::new()
    }
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            traces: Vec::new(),
        }
    }

    /// Folds one sample in.
    pub fn add(&mut self, value: f64, trace: TraceId) {
        self.add_spanned(value, trace, NO_SPAN);
    }

    /// Folds one sample in, remembering the span it arrived under.
    pub fn add_spanned(&mut self, value: f64, trace: TraceId, span: SpanId) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if trace != NO_TRACE && self.traces.len() < TRACE_CAP {
            self.traces.push((trace, span));
        }
    }

    /// Merges another accumulator in (used to roll buildings up into
    /// the district tier).
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &t in &other.traces {
            if self.traces.len() >= TRACE_CAP {
                break;
            }
            self.traces.push(t);
        }
    }

    /// The arithmetic mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// `(trace, span)` pairs of contributing samples (bounded to
    /// [`TRACE_CAP`]). The span is [`NO_SPAN`] for samples folded in
    /// through [`Accumulator::add`].
    pub fn traces(&self) -> &[(TraceId, SpanId)] {
        &self.traces
    }
}

/// Shape of the windows an operator assigns samples to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    size_millis: i64,
    slide_millis: i64,
}

impl WindowSpec {
    /// Tumbling (non-overlapping) windows of `size_millis`.
    ///
    /// # Panics
    ///
    /// Panics unless `size_millis > 0`.
    pub fn tumbling(size_millis: i64) -> Self {
        WindowSpec::sliding(size_millis, size_millis)
    }

    /// Sliding windows of `size_millis` advancing by `slide_millis`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < slide_millis <= size_millis`.
    pub fn sliding(size_millis: i64, slide_millis: i64) -> Self {
        assert!(slide_millis > 0, "slide must be positive");
        assert!(slide_millis <= size_millis, "slide must not exceed size");
        WindowSpec {
            size_millis,
            slide_millis,
        }
    }

    /// Window length in milliseconds.
    pub fn size_millis(&self) -> i64 {
        self.size_millis
    }

    /// Window advance in milliseconds (equals the size for tumbling).
    pub fn slide_millis(&self) -> i64 {
        self.slide_millis
    }

    /// Whether the windows tumble (no overlap).
    pub fn is_tumbling(&self) -> bool {
        self.size_millis == self.slide_millis
    }

    /// End (exclusive) of the window starting at `start`.
    pub fn window_end(&self, start: i64) -> i64 {
        start + self.size_millis
    }

    /// Starts of every window containing event time `t`, ascending.
    /// Starts are aligned to multiples of the slide (epoch origin), so
    /// independent operators agree on window boundaries.
    pub fn windows_for(&self, t: i64) -> Vec<i64> {
        let newest = t.div_euclid(self.slide_millis) * self.slide_millis;
        let mut starts = Vec::new();
        let mut start = newest;
        while self.window_end(start) > t {
            starts.push(start);
            start -= self.slide_millis;
        }
        starts.reverse();
        starts
    }
}

/// Lifetime counters of a [`WindowedAggregator`]. Every observed
/// sample lands in exactly one of `accepted`, `late_dropped` or
/// `shed`, so `samples_in = accepted + late_dropped + shed` always
/// holds (the conservation the chaos tests check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Samples fed through [`WindowedAggregator::observe`].
    pub samples_in: u64,
    /// Samples folded into at least one open pane.
    pub accepted: u64,
    /// Samples behind the watermark whose windows had all closed.
    pub late_dropped: u64,
    /// Samples refused because the open-pane cap was reached.
    pub shed: u64,
    /// Panes emitted by [`WindowedAggregator::close_ready`].
    pub windows_closed: u64,
}

/// One closed `(key, window)` pane.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedWindow<K> {
    /// The grouping key.
    pub key: K,
    /// Window start (unix millis, inclusive).
    pub start: i64,
    /// Window end (unix millis, exclusive).
    pub end: i64,
    /// The folded samples.
    pub acc: Accumulator,
}

/// What happened to one observed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// Folded into at least one open pane.
    Accepted,
    /// All its windows were already closed by the watermark.
    Late,
    /// Refused: opening a new pane would exceed the state bound.
    Shed,
}

/// A keyed, watermark-driven window operator with bounded state.
///
/// Panes are keyed `(window start, K)` in a `BTreeMap`, so ready panes
/// form a prefix and close in deterministic `(start, key)` order
/// regardless of arrival order — the property the reordering tests pin
/// down.
#[derive(Debug, Clone)]
pub struct WindowedAggregator<K> {
    spec: WindowSpec,
    lateness_millis: i64,
    watermark: i64,
    open: BTreeMap<(i64, K), Accumulator>,
    max_open: usize,
    stats: WindowStats,
}

impl<K: Ord + Clone> WindowedAggregator<K> {
    /// Creates an operator closing windows once the watermark — the
    /// newest event time seen minus `lateness_millis` — passes them.
    ///
    /// # Panics
    ///
    /// Panics if `lateness_millis` is negative.
    pub fn new(spec: WindowSpec, lateness_millis: i64) -> Self {
        assert!(lateness_millis >= 0, "lateness must be non-negative");
        WindowedAggregator {
            spec,
            lateness_millis,
            watermark: i64::MIN,
            open: BTreeMap::new(),
            max_open: DEFAULT_MAX_OPEN,
            stats: WindowStats::default(),
        }
    }

    /// Overrides the bound on concurrently open panes (default
    /// [`DEFAULT_MAX_OPEN`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_open` is zero.
    pub fn with_max_open(mut self, max_open: usize) -> Self {
        assert!(max_open > 0, "at least one pane must stay open");
        self.max_open = max_open;
        self
    }

    /// The window shape.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The lateness horizon in milliseconds.
    pub fn lateness_millis(&self) -> i64 {
        self.lateness_millis
    }

    /// The current watermark (`i64::MIN` before any sample).
    pub fn watermark(&self) -> i64 {
        self.watermark
    }

    /// Currently open panes.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Forces the watermark to at least `watermark` (it never goes
    /// backwards). Used on recovery to re-seed progress from a
    /// persisted watermark, and by wall-clock flushes so windows close
    /// even when traffic stops.
    pub fn advance_watermark_to(&mut self, watermark: i64) {
        self.watermark = self.watermark.max(watermark);
    }

    /// Advances the watermark from an event time: the watermark trails
    /// the newest event by the lateness horizon.
    pub fn advance_watermark(&mut self, event_time: i64) {
        self.advance_watermark_to(event_time.saturating_sub(self.lateness_millis));
    }

    /// Feeds one sample, advancing the watermark first; returns what
    /// happened to it. A maximally-recent sample is always accepted:
    /// its newest window ends after the watermark by construction.
    pub fn observe(&mut self, key: K, t: i64, value: f64, trace: TraceId) -> Observed {
        self.observe_spanned(key, t, value, trace, NO_SPAN)
    }

    /// Like [`WindowedAggregator::observe`], but remembers the span the
    /// sample arrived under so window-close hops can parent onto it.
    pub fn observe_spanned(
        &mut self,
        key: K,
        t: i64,
        value: f64,
        trace: TraceId,
        span: SpanId,
    ) -> Observed {
        self.stats.samples_in += 1;
        self.advance_watermark(t);
        let outcome = self.feed(key, t, value, trace, span);
        match outcome {
            Observed::Accepted => self.stats.accepted += 1,
            Observed::Late => self.stats.late_dropped += 1,
            Observed::Shed => self.stats.shed += 1,
        }
        outcome
    }

    /// Recovery path: re-feeds a persisted sample into still-open
    /// panes without re-counting it in the stats (it was counted when
    /// first observed; the raw store, like the counters, survived the
    /// crash).
    pub fn restore(&mut self, key: K, t: i64, value: f64) {
        self.advance_watermark(t);
        let _ = self.feed(key, t, value, NO_TRACE, NO_SPAN);
    }

    fn feed(&mut self, key: K, t: i64, value: f64, trace: TraceId, span: SpanId) -> Observed {
        let mut accepted = false;
        let mut shed = false;
        for start in self.spec.windows_for(t) {
            if self.spec.window_end(start) <= self.watermark {
                continue; // this pane already closed
            }
            let slot = (start, key.clone());
            if let Some(acc) = self.open.get_mut(&slot) {
                acc.add_spanned(value, trace, span);
                accepted = true;
            } else if self.open.len() < self.max_open {
                let mut acc = Accumulator::new();
                acc.add_spanned(value, trace, span);
                self.open.insert(slot, acc);
                accepted = true;
            } else {
                shed = true;
            }
        }
        if accepted {
            Observed::Accepted
        } else if shed {
            Observed::Shed
        } else {
            Observed::Late
        }
    }

    /// Drains every pane whose window end the watermark has passed, in
    /// `(start, key)` order.
    pub fn close_ready(&mut self) -> Vec<ClosedWindow<K>> {
        let mut out = Vec::new();
        while let Some(((start, _), _)) = self.open.first_key_value() {
            if self.spec.window_end(*start) > self.watermark {
                break;
            }
            let ((start, key), acc) = self.open.pop_first().expect("checked non-empty");
            out.push(ClosedWindow {
                key,
                start,
                end: self.spec.window_end(start),
                acc,
            });
        }
        self.stats.windows_closed += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_window_assignment() {
        let spec = WindowSpec::tumbling(10);
        assert_eq!(spec.windows_for(0), vec![0]);
        assert_eq!(spec.windows_for(9), vec![0]);
        assert_eq!(spec.windows_for(10), vec![10]);
        assert_eq!(spec.windows_for(-1), vec![-10], "euclidean alignment");
        assert!(spec.is_tumbling());
    }

    #[test]
    fn sliding_window_assignment() {
        let spec = WindowSpec::sliding(30, 10);
        assert_eq!(spec.windows_for(5), vec![-20, -10, 0]);
        assert_eq!(spec.windows_for(29), vec![0, 10, 20]);
        assert!(!spec.is_tumbling());
    }

    #[test]
    #[should_panic(expected = "slide must not exceed size")]
    fn oversized_slide_rejected() {
        WindowSpec::sliding(10, 20);
    }

    #[test]
    fn windows_close_in_deterministic_order_after_watermark() {
        let mut op = WindowedAggregator::new(WindowSpec::tumbling(10), 5);
        op.observe("b", 3, 1.0, NO_TRACE);
        op.observe("a", 4, 2.0, NO_TRACE);
        assert!(op.close_ready().is_empty(), "watermark still inside [0,10)");
        op.observe("a", 21, 3.0, NO_TRACE); // watermark -> 16
        let closed = op.close_ready();
        let keys: Vec<_> = closed.iter().map(|w| (w.start, w.key)).collect();
        assert_eq!(keys, vec![(0, "a"), (0, "b")]);
        assert_eq!(closed[1].acc.count, 1);
        assert_eq!(op.open_windows(), 1, "[20,30) still open");
    }

    #[test]
    fn late_samples_dropped_after_close() {
        let mut op = WindowedAggregator::new(WindowSpec::tumbling(10), 0);
        op.observe((), 5, 1.0, NO_TRACE);
        op.observe((), 12, 1.0, NO_TRACE); // watermark -> 12, closes [0,10)
        assert_eq!(op.close_ready().len(), 1);
        assert_eq!(op.observe((), 7, 9.0, NO_TRACE), Observed::Late);
        let stats = op.stats();
        assert_eq!(stats.late_dropped, 1);
        assert_eq!(
            stats.samples_in,
            stats.accepted + stats.late_dropped + stats.shed
        );
    }

    #[test]
    fn state_bound_sheds_new_panes() {
        let mut op = WindowedAggregator::new(WindowSpec::tumbling(10), 1_000).with_max_open(2);
        assert_eq!(op.observe("a", 0, 1.0, NO_TRACE), Observed::Accepted);
        assert_eq!(op.observe("b", 0, 1.0, NO_TRACE), Observed::Accepted);
        assert_eq!(op.observe("c", 0, 1.0, NO_TRACE), Observed::Shed);
        // Existing panes still accept.
        assert_eq!(op.observe("a", 5, 1.0, NO_TRACE), Observed::Accepted);
        assert_eq!(op.stats().shed, 1);
        assert_eq!(op.open_windows(), 2);
    }

    #[test]
    fn merged_accumulators_keep_mean_exact() {
        let mut building_a = Accumulator::new();
        let mut building_b = Accumulator::new();
        for v in [1.0, 2.0, 3.0] {
            building_a.add(v, NO_TRACE);
        }
        building_b.add(10.0, NO_TRACE);
        let mut district = Accumulator::new();
        district.merge(&building_a);
        district.merge(&building_b);
        assert_eq!(district.count, 4);
        assert_eq!(district.mean(), 4.0, "count-weighted, not mean of means");
        assert_eq!(district.min, 1.0);
        assert_eq!(district.max, 10.0);
    }

    #[test]
    fn trace_capture_is_bounded() {
        let mut acc = Accumulator::new();
        for i in 0..(2 * TRACE_CAP as u64) {
            acc.add(1.0, i + 1);
        }
        assert_eq!(acc.traces().len(), TRACE_CAP);
        assert_eq!(acc.count, 2 * TRACE_CAP as u64);
    }

    #[test]
    fn wall_clock_flush_closes_idle_windows() {
        let mut op = WindowedAggregator::new(WindowSpec::tumbling(10), 5);
        op.observe((), 3, 1.0, NO_TRACE);
        // Traffic stops; a flush advances the watermark from the clock.
        op.advance_watermark(100);
        let closed = op.close_ready();
        assert_eq!(closed.len(), 1);
        assert_eq!((closed[0].start, closed[0].end), (0, 10));
    }
}
