//! The Device-proxy's *dedicated layer*: one adapter per protocol.
//!
//! An adapter owns the protocol-specific knowledge — it decodes uplink
//! frames (or poll responses) into `(quantity, value)` pairs in canonical
//! units, and encodes actuation commands back into protocol frames. The
//! Device-proxy above it is completely protocol-agnostic, which is
//! exactly the abstraction the paper's Fig. 1(b) bottom layer provides.

use dimmer_core::QuantityKind;
use protocols::device::{Ieee802154Sensor, ZigbeeSensor};
use protocols::enocean::{Eep, EepReading, Erp1Telegram};
use protocols::ieee802154::{Address, MacFrame, PanId};
use protocols::opcua::{
    AttributeId, Message, NodeId as UaNodeId, ReadValueId, Variant, WriteValue,
};
use protocols::zigbee::{self, ClusterId, ZclAttribute, ZclValue, ZigbeeFrame};
use protocols::{ProtocolError, ProtocolKind};
use simnet::Port;

/// A decoded sample: the quantity and its value in the canonical unit.
pub type Sample = (QuantityKind, f64);

/// The dedicated (protocol-specific) layer of a Device-proxy.
pub trait DeviceAdapter: std::fmt::Debug + Send + 'static {
    /// The protocol family this adapter speaks.
    fn protocol(&self) -> ProtocolKind;

    /// Decodes an uplink frame pushed by the device.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for frames that are not valid uplinks
    /// from this adapter's device.
    fn decode_uplink(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError>;

    /// Encodes an actuation command carrying `value` (interpretation is
    /// protocol-specific: switch state, setpoint, …). `None` when the
    /// device is not actuatable.
    fn encode_actuation(&mut self, value: f64) -> Option<Vec<u8>>;

    /// For polled protocols: the next poll request. Push protocols
    /// return `None` (the default).
    fn poll_request(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// The port the polled device answers on (OPC UA default; CoAP
    /// overrides).
    fn poll_port(&self) -> Port {
        crate::OPCUA_PORT
    }

    /// Decodes a poll response (only called for polled protocols).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on malformed responses.
    fn decode_poll(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        let _ = bytes;
        Ok(Vec::new())
    }
}

/// Adapter for raw IEEE 802.15.4 sensors.
#[derive(Debug)]
pub struct Ieee802154Adapter {
    pan: PanId,
    device_address: u16,
    downlink_sequence: u8,
}

impl Ieee802154Adapter {
    /// Creates an adapter for the device at `device_address` in `pan`.
    pub fn new(pan: PanId, device_address: u16) -> Self {
        Ieee802154Adapter {
            pan,
            device_address,
            downlink_sequence: 0,
        }
    }
}

impl DeviceAdapter for Ieee802154Adapter {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::Ieee802154
    }

    fn decode_uplink(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        let frame = MacFrame::decode(bytes)?;
        if frame.src != Address::Short(self.device_address) {
            return Err(ProtocolError::Malformed {
                reason: "frame from a different device",
            });
        }
        let (quantity, value) = Ieee802154Sensor::parse_payload(&frame.payload)?;
        Ok(vec![(quantity, value)])
    }

    fn encode_actuation(&mut self, value: f64) -> Option<Vec<u8>> {
        // Downlink: the same raw payload format, switch-state quantity.
        let mut payload = vec![protocols::device::RAW_SENSOR_MARKER, 12];
        payload.extend_from_slice(&(value as f32).to_le_bytes());
        let frame = MacFrame::data(
            self.pan,
            Address::Short(self.device_address),
            Address::Short(0x0000),
            self.downlink_sequence,
            payload,
        );
        self.downlink_sequence = self.downlink_sequence.wrapping_add(1);
        Some(frame.encode())
    }
}

/// Adapter for ZigBee sensors (ZCL attribute reports).
#[derive(Debug)]
pub struct ZigbeeAdapter {
    nwk_address: u16,
    downlink_sequence: u8,
}

impl ZigbeeAdapter {
    /// Creates an adapter for the device with NWK address `nwk_address`.
    pub fn new(nwk_address: u16) -> Self {
        ZigbeeAdapter {
            nwk_address,
            downlink_sequence: 0,
        }
    }

    /// Maps a report's cluster + attribute to the quantity it carries.
    fn quantity_of(cluster: ClusterId, attribute: u16) -> Option<QuantityKind> {
        match (cluster, attribute) {
            (ClusterId::TEMPERATURE_MEASUREMENT, 0x0000) => Some(QuantityKind::Temperature),
            (ClusterId::RELATIVE_HUMIDITY, 0x0000) => Some(QuantityKind::Humidity),
            (ClusterId::ELECTRICAL_MEASUREMENT, 0x050B) => Some(QuantityKind::ActivePower),
            (ClusterId::SIMPLE_METERING, 0x0000) => Some(QuantityKind::ElectricalEnergy),
            (ClusterId::ON_OFF, 0x0000) => Some(QuantityKind::SwitchState),
            _ => None,
        }
    }
}

impl DeviceAdapter for ZigbeeAdapter {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::Zigbee
    }

    fn decode_uplink(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        let frame = ZigbeeFrame::decode(bytes)?;
        if frame.nwk_src != self.nwk_address {
            return Err(ProtocolError::Malformed {
                reason: "frame from a different device",
            });
        }
        Ok(frame
            .attributes
            .iter()
            .filter_map(|attr| {
                ZigbeeAdapter::quantity_of(frame.cluster, attr.id)
                    .map(|q| (q, ZigbeeSensor::scale_from_wire(q, attr.value)))
            })
            .collect())
    }

    fn encode_actuation(&mut self, value: f64) -> Option<Vec<u8>> {
        // An On/Off "report" in the downlink direction models the ZCL
        // On/Off command for the simulated stack.
        let frame = zigbee::report_builder(0x0000, ClusterId::ON_OFF)
            .sequence(self.downlink_sequence)
            .attribute(ZclAttribute::new(0x0000, ZclValue::Bool(value != 0.0)))
            .build();
        self.downlink_sequence = self.downlink_sequence.wrapping_add(1);
        Some(frame.encode())
    }
}

/// Adapter for EnOcean sensors (ESP3-wrapped ERP1 telegrams).
#[derive(Debug)]
pub struct EnoceanAdapter {
    sender_id: u32,
    eep: Eep,
}

impl EnoceanAdapter {
    /// Creates an adapter for the device with radio id `sender_id`
    /// speaking `eep`.
    pub fn new(sender_id: u32, eep: Eep) -> Self {
        EnoceanAdapter { sender_id, eep }
    }
}

impl DeviceAdapter for EnoceanAdapter {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::EnOcean
    }

    fn decode_uplink(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        let telegram = Erp1Telegram::from_esp3(bytes)?;
        if telegram.sender_id != self.sender_id {
            return Err(ProtocolError::Malformed {
                reason: "telegram from a different device",
            });
        }
        Ok(match self.eep.decode_reading(&telegram)? {
            EepReading::Temperature { celsius } => {
                vec![(QuantityKind::Temperature, celsius)]
            }
            EepReading::TemperatureHumidity { celsius, humidity } => vec![
                (QuantityKind::Temperature, celsius),
                (QuantityKind::Humidity, humidity),
            ],
            EepReading::MeterReading { kilowatt_hours, .. } => {
                vec![(QuantityKind::ElectricalEnergy, kilowatt_hours)]
            }
            EepReading::Contact { closed } => {
                vec![(QuantityKind::SwitchState, f64::from(u8::from(closed)))]
            }
            EepReading::Rocker { pressed, .. } => {
                vec![(QuantityKind::SwitchState, f64::from(u8::from(pressed)))]
            }
        })
    }

    fn encode_actuation(&mut self, value: f64) -> Option<Vec<u8>> {
        // Only the switch profiles are actuatable (virtual rocker press).
        match self.eep {
            Eep::F60201 | Eep::D50001 => Some(
                Eep::F60201
                    .encode_reading(
                        &EepReading::Rocker {
                            pressed: value != 0.0,
                            button: 0,
                        },
                        self.sender_id,
                    )
                    .to_esp3(),
            ),
            _ => None,
        }
    }
}

/// Adapter for OPC UA field servers — a *polled* protocol bridging wired
/// legacy automation into the infrastructure.
#[derive(Debug)]
pub struct OpcUaAdapter {
    value_node: UaNodeId,
    quantity: QuantityKind,
    writable_node: Option<UaNodeId>,
}

impl OpcUaAdapter {
    /// Creates an adapter polling `value_node` for `quantity`.
    pub fn new(value_node: UaNodeId, quantity: QuantityKind) -> Self {
        OpcUaAdapter {
            value_node,
            quantity,
            writable_node: None,
        }
    }

    /// Declares a writable setpoint node for actuation.
    pub fn with_writable_node(mut self, node: UaNodeId) -> Self {
        self.writable_node = Some(node);
        self
    }
}

impl DeviceAdapter for OpcUaAdapter {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::OpcUa
    }

    fn decode_uplink(&mut self, _bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        // OPC UA servers never push in this subset.
        Err(ProtocolError::Malformed {
            reason: "opcua is a polled protocol",
        })
    }

    fn encode_actuation(&mut self, value: f64) -> Option<Vec<u8>> {
        let node = self.writable_node.clone()?;
        Some(
            Message::WriteRequest {
                nodes: vec![WriteValue {
                    node_id: node,
                    attribute: AttributeId::Value,
                    value: Variant::Double(value),
                }],
            }
            .encode(),
        )
    }

    fn poll_request(&mut self) -> Option<Vec<u8>> {
        Some(
            Message::ReadRequest {
                nodes: vec![ReadValueId {
                    node_id: self.value_node.clone(),
                    attribute: AttributeId::Value,
                }],
            }
            .encode(),
        )
    }

    fn decode_poll(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        let Message::ReadResponse { results } = Message::decode(bytes)? else {
            return Err(ProtocolError::Malformed {
                reason: "expected a read response",
            });
        };
        Ok(results
            .iter()
            .filter(|dv| dv.status.is_good())
            .filter_map(|dv| dv.value.as_ref().and_then(Variant::as_f64))
            .map(|v| (self.quantity, v))
            .collect())
    }
}

/// Adapter for CoAP sensors — the second polled family, covering the
/// 6LoWPAN/CoAP motes the paper's §III anticipates.
#[derive(Debug)]
pub struct CoapAdapter {
    quantity: QuantityKind,
    next_message_id: u16,
}

impl CoapAdapter {
    /// Creates an adapter polling a [`protocols::device::CoapFieldServer`]
    /// for `quantity`.
    pub fn new(quantity: QuantityKind) -> Self {
        CoapAdapter {
            quantity,
            next_message_id: 1,
        }
    }
}

impl DeviceAdapter for CoapAdapter {
    fn protocol(&self) -> ProtocolKind {
        ProtocolKind::Coap
    }

    fn decode_uplink(&mut self, _bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        Err(ProtocolError::Malformed {
            reason: "coap sensors are polled in this deployment",
        })
    }

    fn encode_actuation(&mut self, value: f64) -> Option<Vec<u8>> {
        use protocols::coap::CoapMessage;
        let id = self.next_message_id;
        self.next_message_id = self.next_message_id.wrapping_add(1);
        Some(
            CoapMessage::post_json(
                id,
                id.to_be_bytes().to_vec(),
                "actuate",
                format!("{{\"value\":{value}}}").into_bytes(),
            )
            .encode(),
        )
    }

    fn poll_request(&mut self) -> Option<Vec<u8>> {
        use protocols::coap::CoapMessage;
        let id = self.next_message_id;
        self.next_message_id = self.next_message_id.wrapping_add(1);
        Some(CoapMessage::get(id, id.to_be_bytes().to_vec(), "sensor").encode())
    }

    fn poll_port(&self) -> Port {
        crate::COAP_PORT
    }

    fn decode_poll(&mut self, bytes: &[u8]) -> Result<Vec<Sample>, ProtocolError> {
        use protocols::coap::CoapMessage;
        let msg = CoapMessage::decode(bytes)?;
        if !msg.code.is_success() {
            return Err(ProtocolError::Malformed {
                reason: "coap poll answered with an error code",
            });
        }
        let value = std::str::from_utf8(&msg.payload)
            .ok()
            .and_then(|text| dimmer_core::json::from_str(text).ok())
            .and_then(|v| v.get("value").and_then(dimmer_core::Value::as_f64))
            .ok_or(ProtocolError::Malformed {
                reason: "coap payload is not a sensor reading",
            })?;
        Ok(vec![(self.quantity, value)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::device::{
        EnoceanSensor, OpcUaFieldServer, UplinkDevice, ZigbeeSensor as ZbSensor,
    };

    #[test]
    fn ieee802154_uplink_and_filtering() {
        let mut dev = Ieee802154Sensor::new(PanId(7), 0x0042, QuantityKind::Temperature);
        let mut adapter = Ieee802154Adapter::new(PanId(7), 0x0042);
        let samples = adapter.decode_uplink(&dev.emit(21.5)).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].0, QuantityKind::Temperature);
        assert!((samples[0].1 - 21.5).abs() < 1e-6);

        // A frame from another device is rejected.
        let mut other = Ieee802154Sensor::new(PanId(7), 0x0099, QuantityKind::Temperature);
        assert!(adapter.decode_uplink(&other.emit(1.0)).is_err());
    }

    #[test]
    fn ieee802154_actuation_decodes_on_device_side() {
        let mut adapter = Ieee802154Adapter::new(PanId(7), 0x0042);
        let bytes = adapter.encode_actuation(1.0).unwrap();
        let frame = MacFrame::decode(&bytes).unwrap();
        assert_eq!(frame.dest, Address::Short(0x0042));
        let (q, v) = Ieee802154Sensor::parse_payload(&frame.payload).unwrap();
        assert_eq!(q, QuantityKind::SwitchState);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn zigbee_uplink_scaling() {
        let mut dev = ZbSensor::new(0x4F21, QuantityKind::Temperature);
        let mut adapter = ZigbeeAdapter::new(0x4F21);
        let samples = adapter.decode_uplink(&dev.emit(21.57)).unwrap();
        assert_eq!(samples, vec![(QuantityKind::Temperature, 21.57)]);

        let mut meter = ZbSensor::new(0x4F21, QuantityKind::ElectricalEnergy);
        let samples = adapter.decode_uplink(&meter.emit(1234.56)).unwrap();
        assert_eq!(samples[0].0, QuantityKind::ElectricalEnergy);
        assert!((samples[0].1 - 1234.56).abs() < 0.011);
    }

    #[test]
    fn zigbee_wrong_source_rejected() {
        let mut dev = ZbSensor::new(0x1111, QuantityKind::Temperature);
        let mut adapter = ZigbeeAdapter::new(0x2222);
        assert!(adapter.decode_uplink(&dev.emit(20.0)).is_err());
    }

    #[test]
    fn zigbee_actuation_is_onoff() {
        let mut adapter = ZigbeeAdapter::new(0x4F21);
        let bytes = adapter.encode_actuation(1.0).unwrap();
        let frame = ZigbeeFrame::decode(&bytes).unwrap();
        assert_eq!(frame.cluster, ClusterId::ON_OFF);
        assert_eq!(frame.attributes[0].value, ZclValue::Bool(true));
    }

    #[test]
    fn enocean_multi_sample_uplink() {
        let mut dev = EnoceanSensor::new(0xABCD, Eep::A50401);
        let mut adapter = EnoceanAdapter::new(0xABCD, Eep::A50401);
        let samples = adapter.decode_uplink(&dev.emit(22.0)).unwrap();
        assert_eq!(samples.len(), 2, "A5-04-01 reports temperature + humidity");
        assert_eq!(samples[0].0, QuantityKind::Temperature);
        assert_eq!(samples[1].0, QuantityKind::Humidity);
    }

    #[test]
    fn enocean_actuation_only_for_switches() {
        let mut meter = EnoceanAdapter::new(1, Eep::A51201);
        assert!(meter.encode_actuation(1.0).is_none());
        let mut rocker = EnoceanAdapter::new(1, Eep::F60201);
        assert!(rocker.encode_actuation(1.0).is_some());
    }

    #[test]
    fn opcua_poll_cycle() {
        let mut server = OpcUaFieldServer::new(QuantityKind::ThermalEnergy);
        server.update(777.0, 123);
        let mut adapter =
            OpcUaAdapter::new(server.value_node().clone(), QuantityKind::ThermalEnergy);
        let poll = adapter.poll_request().unwrap();
        let response = server.handle_bytes(&poll).unwrap();
        let samples = adapter.decode_poll(&response).unwrap();
        assert_eq!(samples, vec![(QuantityKind::ThermalEnergy, 777.0)]);
        // Uplink path must refuse.
        assert!(adapter.decode_uplink(&response).is_err());
    }

    #[test]
    fn coap_poll_cycle() {
        use protocols::device::CoapFieldServer;
        let mut server = CoapFieldServer::new(QuantityKind::Co2);
        server.update(417.0, 5_000);
        let mut adapter = CoapAdapter::new(QuantityKind::Co2);
        assert_eq!(adapter.poll_port(), crate::COAP_PORT);
        let poll = adapter.poll_request().unwrap();
        let response = server.handle_bytes(&poll).unwrap();
        assert_eq!(
            adapter.decode_poll(&response).unwrap(),
            vec![(QuantityKind::Co2, 417.0)]
        );
        assert!(adapter.decode_uplink(&response).is_err());

        // Actuation lands on the device.
        let actuation = adapter.encode_actuation(1.0).unwrap();
        let resp = server.handle_bytes(&actuation).unwrap();
        let msg = protocols::coap::CoapMessage::decode(&resp).unwrap();
        assert!(msg.code.is_success());
        assert_eq!(server.actuations, vec![1.0]);
    }

    #[test]
    fn coap_error_responses_rejected() {
        use protocols::device::CoapFieldServer;
        let mut server = CoapFieldServer::new(QuantityKind::Co2);
        let mut adapter = CoapAdapter::new(QuantityKind::Co2);
        // Poll a missing resource by hand.
        let bad = protocols::coap::CoapMessage::get(1, vec![], "ghost").encode();
        let response = server.handle_bytes(&bad).unwrap();
        assert!(adapter.decode_poll(&response).is_err());
    }

    #[test]
    fn opcua_actuation_requires_writable_node() {
        let mut plain = OpcUaAdapter::new(UaNodeId::numeric(1, 1), QuantityKind::Temperature);
        assert!(plain.encode_actuation(60.0).is_none());
        let mut with_node = OpcUaAdapter::new(UaNodeId::numeric(1, 1), QuantityKind::Temperature)
            .with_writable_node(UaNodeId::string(1, "setpoint"));
        let bytes = with_node.encode_actuation(60.0).unwrap();
        match Message::decode(&bytes).unwrap() {
            Message::WriteRequest { nodes } => {
                assert_eq!(nodes[0].value, Variant::Double(60.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
