//! # dimmer-proxy — Device-proxies and Database-proxies
//!
//! "Each data source is therefore accompanied with its specific proxy,
//! which registers itself on a single master node." This crate implements
//! both proxy families plus the Web-Service layer they share:
//!
//! * [`webservice`] — the request/response layer (methods, paths, query
//!   strings, status codes) carried over the simulated network, with the
//!   client choosing JSON or XML per request;
//! * [`device_proxy`] — the paper's Fig. 1(b): a three-layer node with a
//!   protocol-specific *dedicated layer* ([`adapters`]), a local
//!   time-series database, and a Web-Service + publish/subscribe top
//!   layer; supports remote actuation;
//! * [`database_proxy`] — wraps one legacy database (BIM / SIM / GIS /
//!   measurement archive) behind translation endpoints;
//! * [`devices`] — the simulated field devices as network nodes (uplink
//!   emitters and the polled OPC UA server);
//! * [`registration`] — the register/deregister/heartbeat bodies proxies
//!   exchange with the master node.

pub mod adapters;
pub mod database_proxy;
pub mod device_proxy;
pub mod devices;
pub mod registration;
pub mod webservice;

use dimmer_core::Uri;
use simnet::{NodeId, Port};

/// Builds the `sim://n{index}{path}` URI addressing a node's Web
/// Service. The simulated network plays the role of DNS: the URI host
/// names the node.
///
/// # Panics
///
/// Panics if `path` does not satisfy the URI grammar (paths are
/// compile-time constants in practice).
pub fn node_uri(node: NodeId, path: &str) -> Uri {
    Uri::new("sim", format!("n{}", node.index()), None, path)
        .expect("node uris are grammatical by construction")
}

/// Resolves a `sim://n{index}/…` URI back to the node it addresses.
pub fn uri_node(uri: &Uri) -> Option<NodeId> {
    let index: usize = uri.host().strip_prefix('n')?.parse().ok()?;
    Some(NodeId::from_index(index))
}

/// Port of every Web-Service endpoint (proxies, master).
pub const WS_PORT: Port = Port(80);
/// Port devices push uplink frames to on their Device-proxy.
pub const DEVICE_UPLINK_PORT: Port = Port(7200);
/// Port Device-proxies push actuation frames to on their device.
pub const DEVICE_DOWNLINK_PORT: Port = Port(7201);
/// Port OPC UA field servers answer polls on.
pub const OPCUA_PORT: Port = Port(4840);
/// Port CoAP field servers answer polls on.
pub const COAP_PORT: Port = Port(5683);
