//! Registration bodies exchanged with the master node.
//!
//! On startup every proxy POSTs `/register` on the master with one of
//! these bodies; on shutdown it POSTs `/deregister`. Liveness is
//! maintained by periodic `/heartbeat` POSTs.

use dimmer_core::{CoreError, DistrictId, ProxyId, Uri, Value};
use ontology::{DeviceLeaf, EntityNode};

/// What kind of data source a registering proxy fronts.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyRole {
    /// A Device-proxy fronting one device; the leaf goes under
    /// `entity_id` in the district tree.
    Device {
        /// The entity (building/network) the device belongs to.
        entity_id: String,
        /// The device leaf to add to the ontology.
        leaf: DeviceLeaf,
    },
    /// A Database-proxy fronting a BIM or SIM database; the entity node
    /// goes directly under the district root.
    EntityDatabase {
        /// The entity node to add to the ontology.
        entity: EntityNode,
    },
    /// A Database-proxy fronting a GIS database (registered on the
    /// district root).
    Gis,
    /// A Database-proxy fronting a measurement archive (registered on
    /// the district root).
    MeasurementArchive,
    /// A streaming aggregator serving windowed rollups (registered on
    /// the district root).
    Aggregator,
}

impl ProxyRole {
    fn kind_str(&self) -> &'static str {
        match self {
            ProxyRole::Device { .. } => "device",
            ProxyRole::EntityDatabase { .. } => "entity_database",
            ProxyRole::Gis => "gis",
            ProxyRole::MeasurementArchive => "measurement_archive",
            ProxyRole::Aggregator => "aggregator",
        }
    }
}

/// The `/register` body.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// The registering proxy.
    pub proxy: ProxyId,
    /// The district the data source belongs to.
    pub district: DistrictId,
    /// The proxy's Web-Service URI (what the master hands to clients).
    pub uri: Uri,
    /// What the proxy fronts.
    pub role: ProxyRole,
}

impl Registration {
    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object([
            ("proxy", Value::from(self.proxy.as_str())),
            ("district", Value::from(self.district.as_str())),
            ("uri", Value::from(self.uri.to_string())),
            ("kind", Value::from(self.role.kind_str())),
        ]);
        match &self.role {
            ProxyRole::Device { entity_id, leaf } => {
                v.insert("entity_id", Value::from(entity_id.as_str()));
                v.insert("leaf", leaf.to_value());
            }
            ProxyRole::EntityDatabase { entity } => {
                v.insert("entity", entity.to_value());
            }
            ProxyRole::Gis | ProxyRole::MeasurementArchive | ProxyRole::Aggregator => {}
        }
        v
    }

    /// Decodes a value produced by [`Registration::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "registration";
        let role = match v.require_str(T, "kind")? {
            "device" => ProxyRole::Device {
                entity_id: v.require_str(T, "entity_id")?.to_owned(),
                leaf: DeviceLeaf::from_value(v.require(T, "leaf")?)?,
            },
            "entity_database" => ProxyRole::EntityDatabase {
                entity: EntityNode::from_value(v.require(T, "entity")?)?,
            },
            "gis" => ProxyRole::Gis,
            "measurement_archive" => ProxyRole::MeasurementArchive,
            "aggregator" => ProxyRole::Aggregator,
            other => {
                return Err(CoreError::Shape {
                    target: T,
                    reason: format!("unknown proxy kind {other:?}"),
                })
            }
        };
        Ok(Registration {
            proxy: ProxyId::new(v.require_str(T, "proxy")?)?,
            district: DistrictId::new(v.require_str(T, "district")?)?,
            uri: Uri::parse(v.require_str(T, "uri")?)?,
            role,
        })
    }
}

/// The `/deregister` and `/heartbeat` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyRef {
    /// The proxy.
    pub proxy: ProxyId,
    /// Its district.
    pub district: DistrictId,
}

impl ProxyRef {
    /// Translates to the common data format.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("proxy", Value::from(self.proxy.as_str())),
            ("district", Value::from(self.district.as_str())),
        ])
    }

    /// Decodes a value produced by [`ProxyRef::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on the wrong shape.
    pub fn from_value(v: &Value) -> Result<Self, CoreError> {
        const T: &str = "proxy ref";
        Ok(ProxyRef {
            proxy: ProxyId::new(v.require_str(T, "proxy")?)?,
            district: DistrictId::new(v.require_str(T, "district")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_core::{BuildingId, DeviceId, QuantityKind};

    fn uri(s: &str) -> Uri {
        Uri::parse(s).unwrap()
    }

    #[test]
    fn device_registration_round_trip() {
        let reg = Registration {
            proxy: ProxyId::new("p1").unwrap(),
            district: DistrictId::new("d1").unwrap(),
            uri: uri("sim://n9/"),
            role: ProxyRole::Device {
                entity_id: "b1".into(),
                leaf: DeviceLeaf::new(
                    DeviceId::new("dev1").unwrap(),
                    "zigbee",
                    QuantityKind::Temperature,
                    uri("sim://n9/data"),
                ),
            },
        };
        assert_eq!(Registration::from_value(&reg.to_value()).unwrap(), reg);
    }

    #[test]
    fn database_registrations_round_trip() {
        for role in [
            ProxyRole::EntityDatabase {
                entity: EntityNode::building(BuildingId::new("b1").unwrap(), uri("sim://n3/model")),
            },
            ProxyRole::Gis,
            ProxyRole::MeasurementArchive,
            ProxyRole::Aggregator,
        ] {
            let reg = Registration {
                proxy: ProxyId::new("p2").unwrap(),
                district: DistrictId::new("d1").unwrap(),
                uri: uri("sim://n3/"),
                role,
            };
            assert_eq!(Registration::from_value(&reg.to_value()).unwrap(), reg);
        }
    }

    #[test]
    fn proxy_ref_round_trip() {
        let r = ProxyRef {
            proxy: ProxyId::new("p1").unwrap(),
            district: DistrictId::new("d1").unwrap(),
        };
        assert_eq!(ProxyRef::from_value(&r.to_value()).unwrap(), r);
    }

    #[test]
    fn malformed_rejected() {
        assert!(Registration::from_value(&Value::Null).is_err());
        let mut v = ProxyRef {
            proxy: ProxyId::new("p").unwrap(),
            district: DistrictId::new("d").unwrap(),
        }
        .to_value();
        v.insert("proxy", Value::from("bad id!"));
        assert!(ProxyRef::from_value(&v).is_err());
    }
}
