//! The Device-proxy — the paper's Fig. 1(b), as a network node.
//!
//! Three layers:
//!
//! 1. **Dedicated layer** — a [`DeviceAdapter`] decoding the device's
//!    native frames (pushed on [`crate::DEVICE_UPLINK_PORT`] or polled
//!    over [`crate::OPCUA_PORT`]);
//! 2. **Local database** — a [`TimeSeriesStore`] holding every sample,
//!    with periodic retention;
//! 3. **Web Service layer** — data retrieval and remote actuation
//!    endpoints, plus publication of every new sample into the
//!    publish/subscribe middleware.
//!
//! On startup the proxy registers itself on the master node; it then
//! heartbeats periodically.

use std::collections::{HashMap, VecDeque};

use dimmer_core::{
    DeviceId, DistrictId, Measurement, MeasurementBatch, ProxyId, QuantityKind, Timestamp, Value,
};
use gis::geo::GeoPoint;
use ontology::DeviceLeaf;
use pubsub::{MeasurementTopic, PubSubClient, PubSubEvent, QoS, Topic, PUBSUB_PORT};
use simnet::overload::{Admission, AdmissionGate};
use simnet::rpc::{RequestTracker, RpcEvent};
use simnet::{Context, Node, Packet, SimDuration, TimerTag};
use storage::tskv::{Aggregate, TimeSeriesStore};

use crate::adapters::DeviceAdapter;
use crate::devices::unix_millis_at;
use crate::registration::{ProxyRole, Registration};
use crate::webservice::{status, WsClient, WsClientEvent, WsRequest, WsResponse, WsServer};
use crate::{node_uri, DEVICE_DOWNLINK_PORT, OPCUA_PORT, WS_PORT};

const TAG_POLL: TimerTag = TimerTag(1);
const TAG_RETENTION: TimerTag = TimerTag(2);
const TAG_HEARTBEAT: TimerTag = TimerTag(3);
const TAG_REGISTER_RETRY: TimerTag = TimerTag(4);
const TAG_REPLAY: TimerTag = TimerTag(5);
const TAG_TSKV_MAINTAIN: TimerTag = TimerTag(6);

const WS_CLIENT_TAGS: u64 = 1_000_000_000;
const PUBSUB_TAGS: u64 = 2_000_000_000;
const POLL_TAGS: u64 = 3_000_000_000;

/// How often proxies heartbeat the master.
pub const HEARTBEAT_INTERVAL: SimDuration = SimDuration::from_secs(30);
const RETENTION_PERIOD: SimDuration = SimDuration::from_hours(1);
/// Storage maintenance cadence: seal cold partitions, compact,
/// checkpoint the WAL (see `TimeSeriesStore::maintain`).
const TSKV_MAINTAIN_PERIOD: SimDuration = SimDuration::from_secs(300);
const POLL_TIMEOUT: SimDuration = SimDuration::from_secs(2);

/// Default bounded store-and-forward capacity (QoS 1 samples held while
/// the broker is unreachable); override with
/// [`DeviceProxyNode::set_store_forward_capacity`].
pub const STORE_FORWARD_CAPACITY: usize = 256;
/// First replay probe delay after the broker is detected down; doubles
/// (with jitter) up to [`REPLAY_BACKOFF_MAX`] on each failed probe.
const REPLAY_BACKOFF_BASE: SimDuration = SimDuration::from_secs(2);
const REPLAY_BACKOFF_MAX: SimDuration = SimDuration::from_secs(60);
/// Default admission bound on queued data queries (`/latest`, `/data`).
pub const DEFAULT_ADMISSION_CAPACITY: u64 = 32;
/// Default sustained data-query service rate (queries per second).
pub const DEFAULT_ADMISSION_RATE: f64 = 200.0;

/// Static configuration of a Device-proxy.
#[derive(Debug, Clone)]
pub struct DeviceProxyConfig {
    /// The proxy's own id.
    pub proxy: ProxyId,
    /// The district it registers under.
    pub district: DistrictId,
    /// The entity (building/network) its device belongs to.
    pub entity_id: String,
    /// The fronted device.
    pub device: DeviceId,
    /// The quantity the device primarily reports (advertised in the
    /// ontology leaf; multi-quantity devices list all series at /info).
    pub primary_quantity: QuantityKind,
    /// The master node.
    pub master: simnet::NodeId,
    /// The middleware broker, if publication is enabled.
    pub broker: Option<simnet::NodeId>,
    /// The device node (downlink/poll target), if any.
    pub device_node: Option<simnet::NodeId>,
    /// Poll period for polled protocols (OPC UA); `None` for push.
    pub poll_interval: Option<SimDuration>,
    /// Drop samples older than this, if set.
    pub retention: Option<SimDuration>,
    /// Device location, forwarded into the ontology.
    pub location: Option<GeoPoint>,
    /// Unix time at simulation start.
    pub epoch_offset_millis: i64,
    /// QoS for middleware publication.
    pub publish_qos: QoS,
}

/// Ingestion/serving counters for experiments.
#[derive(Debug, Clone, Default)]
pub struct DeviceProxyStats {
    /// Samples written to the local database.
    pub samples_ingested: u64,
    /// Frames that failed the dedicated layer.
    pub decode_errors: u64,
    /// Web-Service requests served.
    pub ws_requests: u64,
    /// Samples published into the middleware.
    pub published: u64,
    /// Actuation commands forwarded to the device.
    pub actuations: u64,
    /// QoS 1 samples parked in the store-and-forward buffer while the
    /// broker was unreachable.
    pub buffered: u64,
    /// Buffered samples successfully re-published after recovery.
    pub replayed: u64,
    /// Buffered samples dropped because the buffer was at capacity.
    /// Conservation: `buffered == replayed + shed_capacity + backlog`.
    pub shed_capacity: u64,
    /// Samples dropped at the door because their frame failed the
    /// dedicated layer — distinct from capacity shedding so overload
    /// and corruption cannot masquerade as each other.
    pub shed_decode: u64,
    /// Data queries (`/latest`, `/data`) shed by the admission gate.
    pub ws_shed: u64,
}

/// A QoS 1 sample parked while the broker is unreachable, carrying its
/// original flight-recorder trace so end-to-end reconstruction survives
/// the outage.
#[derive(Debug, Clone)]
struct BufferedSample {
    topic: Topic,
    payload: Vec<u8>,
    trace: u64,
    /// Causal parent for the next hop this sample takes (the span of
    /// the last hop recorded for it: ingest, buffer or replay).
    span: u64,
}

/// The Device-proxy node.
pub struct DeviceProxyNode {
    config: DeviceProxyConfig,
    adapter: Box<dyn DeviceAdapter>,
    store: TimeSeriesStore,
    ws: WsServer,
    ws_client: WsClient,
    pubsub: Option<PubSubClient>,
    poll_tracker: RequestTracker,
    registered: bool,
    /// Correlation id of the in-flight heartbeat, so a 404 answer (the
    /// master evicted or forgot us) can trigger re-registration.
    heartbeat_req: Option<u64>,
    /// QoS 1 publish id → sample, until the broker acks it.
    inflight: HashMap<u64, BufferedSample>,
    /// Bounded store-and-forward buffer (oldest at the front).
    backlog: VecDeque<BufferedSample>,
    backlog_capacity: usize,
    /// Whether the broker is currently considered unreachable.
    broker_down: bool,
    /// Current replay probe delay (exponential, jittered).
    replay_backoff: SimDuration,
    /// Admission gate over the data-query paths (`/latest`, `/data`);
    /// actuation and the ops plane are never shed.
    gate: AdmissionGate,
    stats: DeviceProxyStats,
}

impl std::fmt::Debug for DeviceProxyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceProxyNode")
            .field("proxy", &self.config.proxy)
            .field("device", &self.config.device)
            .field("registered", &self.registered)
            .field("samples", &self.stats.samples_ingested)
            .finish()
    }
}

impl DeviceProxyNode {
    /// Creates a Device-proxy over `adapter`.
    pub fn new(config: DeviceProxyConfig, adapter: Box<dyn DeviceAdapter>) -> Self {
        let pubsub = config
            .broker
            .map(|broker| PubSubClient::new(broker, PUBSUB_TAGS));
        DeviceProxyNode {
            config,
            adapter,
            store: TimeSeriesStore::new(),
            ws: WsServer::new(),
            ws_client: WsClient::new(WS_CLIENT_TAGS),
            pubsub,
            poll_tracker: RequestTracker::new(POLL_TAGS),
            registered: false,
            heartbeat_req: None,
            inflight: HashMap::new(),
            backlog: VecDeque::new(),
            backlog_capacity: STORE_FORWARD_CAPACITY,
            broker_down: false,
            replay_backoff: REPLAY_BACKOFF_BASE,
            gate: AdmissionGate::new(DEFAULT_ADMISSION_CAPACITY, DEFAULT_ADMISSION_RATE),
            stats: DeviceProxyStats::default(),
        }
    }

    /// Replaces the data-query admission limits.
    pub fn set_admission_limits(&mut self, capacity: u64, drain_per_sec: f64) {
        self.gate = AdmissionGate::new(capacity, drain_per_sec);
    }

    /// Whether the master has acknowledged registration.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// Overrides the bounded store-and-forward capacity (default
    /// [`STORE_FORWARD_CAPACITY`] QoS 1 samples).
    pub fn set_store_forward_capacity(&mut self, capacity: usize) {
        self.backlog_capacity = capacity;
    }

    /// QoS 1 samples currently parked waiting for the broker.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Attaches the device node after construction (deployment builders
    /// create the proxy before the device, so the id arrives late).
    pub fn set_device_node(&mut self, device_node: simnet::NodeId) {
        self.config.device_node = Some(device_node);
    }

    /// The counters.
    pub fn stats(&self) -> &DeviceProxyStats {
        &self.stats
    }

    /// The local database (layer 2), for inspection.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// Test hook: mutable access to the local store, so chaos tests can
    /// force seals/checkpoints at precise crash points.
    #[doc(hidden)]
    pub fn store_mut(&mut self) -> &mut TimeSeriesStore {
        &mut self.store
    }

    /// The topic this proxy publishes `quantity` under.
    pub fn topic_for(&self, quantity: QuantityKind) -> Topic {
        MeasurementTopic::new(
            self.config.district.as_str(),
            self.config.entity_id.as_str(),
            self.config.device.as_str(),
            quantity.as_str(),
        )
        .topic()
        .expect("ids satisfy the topic grammar")
    }

    fn register(&mut self, ctx: &mut Context<'_>) {
        let mut leaf = DeviceLeaf::new(
            self.config.device.clone(),
            self.adapter.protocol().as_str(),
            self.config.primary_quantity,
            node_uri(ctx.node_id(), "/data"),
        );
        if let Some(loc) = self.config.location {
            leaf = leaf.with_location(loc);
        }
        let registration = Registration {
            proxy: self.config.proxy.clone(),
            district: self.config.district.clone(),
            uri: node_uri(ctx.node_id(), "/"),
            role: ProxyRole::Device {
                entity_id: self.config.entity_id.clone(),
                leaf,
            },
        };
        let request = WsRequest::post("/register", registration.to_value());
        self.ws_client.request(ctx, self.config.master, &request);
    }

    fn ingest(
        &mut self,
        ctx: &mut Context<'_>,
        samples: Vec<(QuantityKind, f64)>,
        trace: u64,
        parent_span: u64,
    ) {
        let unix = unix_millis_at(self.config.epoch_offset_millis, ctx.now());
        for (quantity, value) in samples {
            self.store.insert(quantity.as_str(), unix, value);
            self.stats.samples_ingested += 1;
            ctx.telemetry().metrics.incr("proxy.samples_ingested");
            let ingest_span = ctx.span_hop(
                "proxy.ingest",
                trace,
                parent_span,
                format!("device={} quantity={quantity}", self.config.device),
            );
            if self.pubsub.is_some() {
                let topic = self.topic_for(quantity);
                let measurement = Measurement::new(
                    self.config.device.clone(),
                    quantity,
                    value,
                    quantity.canonical_unit(),
                    Timestamp::from_unix_millis(unix),
                );
                let sample = BufferedSample {
                    topic,
                    payload: dimmer_core::json::to_string(&measurement.to_value()).into_bytes(),
                    trace,
                    span: ingest_span,
                };
                if self.config.publish_qos == QoS::AtLeastOnce && self.broker_down {
                    self.buffer_sample(ctx, sample);
                } else {
                    self.publish_sample(ctx, sample);
                }
            }
        }
    }

    /// Publishes one sample into the middleware, remembering QoS 1
    /// publishes until the broker acknowledges them.
    fn publish_sample(&mut self, ctx: &mut Context<'_>, sample: BufferedSample) {
        let Some(pubsub) = &mut self.pubsub else {
            return;
        };
        let id = pubsub.publish_spanned(
            ctx,
            sample.topic.clone(),
            sample.payload.clone(),
            true,
            self.config.publish_qos,
            sample.trace,
            sample.span,
        );
        self.stats.published += 1;
        ctx.telemetry().metrics.incr("proxy.published");
        if self.config.publish_qos == QoS::AtLeastOnce {
            self.inflight.insert(id, sample);
        }
    }

    /// Parks a QoS 1 sample in the bounded store-and-forward buffer,
    /// shedding the oldest entry on overflow.
    fn buffer_sample(&mut self, ctx: &mut Context<'_>, mut sample: BufferedSample) {
        if self.backlog.len() >= self.backlog_capacity {
            self.backlog.pop_front();
            self.stats.shed_capacity += 1;
            ctx.telemetry().metrics.incr("proxy.shed_capacity");
        }
        sample.span = ctx.span_hop(
            "proxy.buffer",
            sample.trace,
            sample.span,
            format!("backlog={}", self.backlog.len() + 1),
        );
        self.backlog.push_back(sample);
        self.stats.buffered += 1;
        ctx.telemetry().metrics.incr("proxy.buffered");
        ctx.telemetry()
            .metrics
            .set_gauge("proxy.backlog", self.backlog.len() as f64);
    }

    /// A QoS 1 publish ran out of retries: the broker is unreachable.
    fn on_publish_timeout(&mut self, ctx: &mut Context<'_>, id: u64) {
        if let Some(mut sample) = self.inflight.remove(&id) {
            // Requeue at the front — it is older than everything parked.
            if self.backlog.len() >= self.backlog_capacity {
                // It enters the buffer's books and is immediately shed
                // (being the oldest), so `buffered == replayed +
                // shed_capacity + backlog` stays an exact identity.
                self.stats.buffered += 1;
                ctx.telemetry().metrics.incr("proxy.buffered");
                self.stats.shed_capacity += 1;
                ctx.telemetry().metrics.incr("proxy.shed_capacity");
            } else {
                sample.span = ctx.span_hop(
                    "proxy.buffer",
                    sample.trace,
                    sample.span,
                    format!("backlog={}", self.backlog.len() + 1),
                );
                self.backlog.push_front(sample);
                self.stats.buffered += 1;
                ctx.telemetry().metrics.incr("proxy.buffered");
                ctx.telemetry()
                    .metrics
                    .set_gauge("proxy.backlog", self.backlog.len() as f64);
            }
        }
        if !self.broker_down {
            self.broker_down = true;
            self.replay_backoff = REPLAY_BACKOFF_BASE;
            ctx.telemetry().metrics.incr("proxy.broker_down");
        }
        self.arm_replay(ctx);
    }

    /// Arms the next replay probe with jittered exponential backoff.
    fn arm_replay(&mut self, ctx: &mut Context<'_>) {
        let jitter = ctx.rng().next_f64_range(0.75, 1.25);
        let delay = SimDuration::from_secs_f64(self.replay_backoff.as_secs_f64() * jitter);
        ctx.set_timer(delay, TAG_REPLAY);
        self.replay_backoff = SimDuration::from_secs_f64(
            (self.replay_backoff.as_secs_f64() * 2.0).min(REPLAY_BACKOFF_MAX.as_secs_f64()),
        );
    }

    /// The broker acknowledged a publish after an outage: replay the
    /// whole backlog in order.
    fn mark_broker_up(&mut self, ctx: &mut Context<'_>) {
        self.broker_down = false;
        self.replay_backoff = REPLAY_BACKOFF_BASE;
        ctx.telemetry().metrics.incr("proxy.broker_up");
        let parked: Vec<BufferedSample> = self.backlog.drain(..).collect();
        ctx.telemetry().metrics.set_gauge("proxy.backlog", 0.0);
        for mut sample in parked {
            sample.span = ctx.span_hop(
                "proxy.replay",
                sample.trace,
                sample.span,
                format!("device={}", self.config.device),
            );
            self.stats.replayed += 1;
            ctx.telemetry().metrics.incr("proxy.replayed");
            self.publish_sample(ctx, sample);
        }
    }

    fn serve(&mut self, ctx: &mut Context<'_>, call: crate::webservice::WsCall) {
        self.stats.ws_requests += 1;
        ctx.telemetry().metrics.incr("proxy.ws_requests");
        let request = &call.request;
        let response = match request.path.as_str() {
            "/info" => self.info(ctx),
            "/latest" | "/data" => match self.gate.try_admit(ctx.now(), &ctx.telemetry().metrics) {
                Admission::Admitted if request.path == "/latest" => self.latest(request),
                Admission::Admitted => self.data(request),
                Admission::Shed { retry_after } => {
                    self.stats.ws_shed += 1;
                    WsResponse::unavailable(retry_after)
                }
            },
            "/actuate" => self.actuate(ctx, request),
            "/metrics" => WsResponse::ok(Value::from(ctx.telemetry().exposition())),
            "/health" => self.health(ctx),
            _ => WsResponse::error(status::NOT_FOUND, "unknown path"),
        };
        self.ws.respond(ctx, &call, response);
    }

    fn info(&self, ctx: &Context<'_>) -> WsResponse {
        WsResponse::ok(Value::object([
            ("proxy", Value::from(self.config.proxy.as_str())),
            ("device", Value::from(self.config.device.as_str())),
            ("district", Value::from(self.config.district.as_str())),
            ("entity", Value::from(self.config.entity_id.as_str())),
            ("protocol", Value::from(self.adapter.protocol().as_str())),
            (
                "series",
                Value::Array(self.store.series_names().map(Value::from).collect()),
            ),
            (
                "uri",
                Value::from(node_uri(ctx.node_id(), "/data").to_string()),
            ),
        ]))
    }

    /// The ops-plane liveness view: identity plus the queue depths that
    /// show backpressure (store-and-forward backlog, unacked publishes).
    fn health(&self, ctx: &Context<'_>) -> WsResponse {
        let metrics = &ctx.telemetry().metrics;
        metrics.set_gauge("proxy.backlog", self.backlog.len() as f64);
        metrics.set_gauge("proxy.inflight_publishes", self.inflight.len() as f64);
        WsResponse::ok(Value::object([
            ("status", Value::from("ok")),
            ("proxy", Value::from(self.config.proxy.as_str())),
            ("device", Value::from(self.config.device.as_str())),
            ("kind", Value::from("device")),
            ("registered", Value::from(self.registered)),
            ("broker_down", Value::from(self.broker_down)),
            ("backlog", Value::from(self.backlog.len() as i64)),
            (
                "inflight_publishes",
                Value::from(self.inflight.len() as i64),
            ),
            (
                "samples_ingested",
                Value::from(self.stats.samples_ingested as i64),
            ),
        ]))
    }

    fn quantity_param(&self, request: &WsRequest) -> Result<QuantityKind, WsResponse> {
        match request.query("quantity") {
            Some(q) => QuantityKind::parse(q)
                .map_err(|e| WsResponse::error(status::BAD_REQUEST, e.to_string())),
            None => {
                // Default: the proxy's single series when unambiguous.
                let mut names = self.store.series_names();
                match (names.next(), names.next()) {
                    (Some(only), None) => QuantityKind::parse(only)
                        .map_err(|e| WsResponse::error(status::INTERNAL_ERROR, e.to_string())),
                    _ => Err(WsResponse::error(
                        status::BAD_REQUEST,
                        "quantity parameter required",
                    )),
                }
            }
        }
    }

    fn latest(&self, request: &WsRequest) -> WsResponse {
        let quantity = match self.quantity_param(request) {
            Ok(q) => q,
            Err(resp) => return resp,
        };
        match self.store.latest(quantity.as_str()) {
            Some((t, v)) => WsResponse::ok(
                Measurement::new(
                    self.config.device.clone(),
                    quantity,
                    v,
                    quantity.canonical_unit(),
                    Timestamp::from_unix_millis(t),
                )
                .to_value(),
            ),
            None => WsResponse::error(status::NOT_FOUND, "no samples yet"),
        }
    }

    fn data(&self, request: &WsRequest) -> WsResponse {
        let quantity = match self.quantity_param(request) {
            Ok(q) => q,
            Err(resp) => return resp,
        };
        let parse_millis = |key: &str, default: i64| -> Result<i64, WsResponse> {
            match request.query(key) {
                None => Ok(default),
                Some(raw) => raw
                    .parse()
                    .map_err(|_| WsResponse::error(status::BAD_REQUEST, format!("invalid {key}"))),
            }
        };
        let from = match parse_millis("from", i64::MIN) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let to = match parse_millis("to", i64::MAX) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let points = match (request.query("bucket"), request.query("agg")) {
            (Some(bucket), agg) => {
                let Ok(bucket) = bucket.parse::<i64>() else {
                    return WsResponse::error(status::BAD_REQUEST, "invalid bucket");
                };
                if bucket <= 0 {
                    return WsResponse::error(status::BAD_REQUEST, "invalid bucket");
                }
                let Some(agg) = Aggregate::parse(agg.unwrap_or("mean")) else {
                    return WsResponse::error(status::BAD_REQUEST, "unknown aggregate");
                };
                self.store
                    .downsample(quantity.as_str(), from, to, bucket, agg)
            }
            (None, _) => self.store.range(quantity.as_str(), from, to),
        };
        let batch: MeasurementBatch = points
            .into_iter()
            .map(|(t, v)| {
                Measurement::new(
                    self.config.device.clone(),
                    quantity,
                    v,
                    quantity.canonical_unit(),
                    Timestamp::from_unix_millis(t),
                )
            })
            .collect();
        WsResponse::ok(batch.to_value())
    }

    fn actuate(&mut self, ctx: &mut Context<'_>, request: &WsRequest) -> WsResponse {
        if request.method != crate::webservice::Method::Post {
            return WsResponse::error(status::BAD_REQUEST, "actuation requires POST");
        }
        let Some(value) = request.body.get("value").and_then(Value::as_f64) else {
            return WsResponse::error(status::BAD_REQUEST, "body must carry a numeric value");
        };
        let Some(device_node) = self.config.device_node else {
            return WsResponse::error(status::NOT_FOUND, "no device attached");
        };
        match self.adapter.encode_actuation(value) {
            Some(bytes) => {
                ctx.send(device_node, DEVICE_DOWNLINK_PORT, bytes);
                self.stats.actuations += 1;
                ctx.telemetry().metrics.incr("proxy.actuations");
                WsResponse::ok(Value::object([("actuated", Value::from(value))]))
            }
            None => WsResponse::error(status::BAD_REQUEST, "device is not actuatable"),
        }
    }

    fn poll(&mut self, ctx: &mut Context<'_>) {
        let (Some(device_node), Some(request)) =
            (self.config.device_node, self.adapter.poll_request())
        else {
            return;
        };
        let port = self.adapter.poll_port();
        self.poll_tracker
            .send_request(ctx, device_node, port, request, POLL_TIMEOUT, 1);
    }
}

impl Node for DeviceProxyNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.store.attach_metrics(ctx.telemetry().metrics.clone());
        self.register(ctx);
        ctx.set_timer(HEARTBEAT_INTERVAL, TAG_HEARTBEAT);
        if let Some(interval) = self.config.poll_interval {
            ctx.set_timer(interval, TAG_POLL);
        }
        if self.config.retention.is_some() {
            ctx.set_timer(RETENTION_PERIOD, TAG_RETENTION);
        }
        ctx.set_timer(TSKV_MAINTAIN_PERIOD, TAG_TSKV_MAINTAIN);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // Volatile across a reboot: protocol trackers, registration, the
        // middleware session, and the store's mutable head. Durable: the
        // local database's sealed segments, snapshot, and WAL (layer 2),
        // the store-and-forward backlog and the lifetime counters. Replay
        // the WAL tail first so every acknowledged point is back before
        // any query or ingest runs.
        self.store.crash_recover();
        self.ws_client.reset();
        self.poll_tracker.reset();
        self.registered = false;
        self.heartbeat_req = None;
        // Unacked publishes were lost with the crash; park them (oldest
        // first) so they replay once the broker answers again.
        let mut unacked: Vec<(u64, BufferedSample)> = self.inflight.drain().collect();
        unacked.sort_by_key(|(id, _)| *id);
        if let Some(pubsub) = &mut self.pubsub {
            pubsub.reset();
        }
        for (_, sample) in unacked {
            self.buffer_sample(ctx, sample);
        }
        ctx.telemetry().metrics.incr("proxy.restart");
        self.on_start(ctx);
        self.broker_down = !self.backlog.is_empty();
        if self.broker_down {
            self.replay_backoff = REPLAY_BACKOFF_BASE;
            self.arm_replay(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.port {
            crate::DEVICE_UPLINK_PORT => match self.adapter.decode_uplink(&pkt.payload) {
                Ok(samples) => self.ingest(ctx, samples, pkt.trace, pkt.span),
                Err(_) => {
                    self.stats.decode_errors += 1;
                    self.stats.shed_decode += 1;
                    ctx.telemetry().metrics.incr("proxy.decode_errors");
                    ctx.telemetry().metrics.incr("proxy.shed_decode");
                }
            },
            OPCUA_PORT | crate::COAP_PORT => {
                if let Some(RpcEvent::ResponseReceived { body, .. }) =
                    self.poll_tracker.accept(&pkt)
                {
                    match self.adapter.decode_poll(&body) {
                        Ok(samples) => self.ingest(ctx, samples, pkt.trace, pkt.span),
                        Err(_) => {
                            self.stats.decode_errors += 1;
                            self.stats.shed_decode += 1;
                            ctx.telemetry().metrics.incr("proxy.decode_errors");
                            ctx.telemetry().metrics.incr("proxy.shed_decode");
                        }
                    }
                }
            }
            PUBSUB_PORT => {
                let event = match &mut self.pubsub {
                    Some(pubsub) => pubsub.accept(ctx, &pkt),
                    None => None,
                };
                if let Some(PubSubEvent::Published { id }) = event {
                    self.inflight.remove(&id);
                    if self.broker_down {
                        self.mark_broker_up(ctx);
                    }
                }
            }
            WS_PORT => {
                // A packet on the WS port is either the master's response
                // to our registration/heartbeat, or a client request.
                if let Some(event) = self.ws_client.accept(&pkt) {
                    match event {
                        WsClientEvent::Response { id, response } => {
                            if self.heartbeat_req == Some(id) {
                                self.heartbeat_req = None;
                                if response.status == status::NOT_FOUND {
                                    // The master no longer knows us (it
                                    // evicted us, or restarted and lost its
                                    // registry): register again.
                                    self.registered = false;
                                    ctx.telemetry().metrics.incr("proxy.reregister");
                                    self.register(ctx);
                                }
                            } else if response.is_ok() {
                                self.registered = true;
                            }
                        }
                        WsClientEvent::TimedOut { id } => {
                            if self.heartbeat_req == Some(id) {
                                self.heartbeat_req = None;
                            }
                        }
                    }
                    return;
                }
                if let Some(call) = self.ws.accept(ctx, &pkt) {
                    self.serve(ctx, call);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        match tag {
            TAG_POLL => {
                self.poll(ctx);
                if let Some(interval) = self.config.poll_interval {
                    ctx.set_timer(interval, TAG_POLL);
                }
            }
            TAG_RETENTION => {
                if let Some(retention) = self.config.retention {
                    let unix = unix_millis_at(self.config.epoch_offset_millis, ctx.now());
                    let horizon = unix - retention.as_nanos() as i64 / 1_000_000;
                    self.store.apply_retention(horizon);
                }
                ctx.set_timer(RETENTION_PERIOD, TAG_RETENTION);
            }
            TAG_TSKV_MAINTAIN => {
                self.store.maintain();
                ctx.set_timer(TSKV_MAINTAIN_PERIOD, TAG_TSKV_MAINTAIN);
            }
            TAG_HEARTBEAT => {
                if self.registered {
                    let body = crate::registration::ProxyRef {
                        proxy: self.config.proxy.clone(),
                        district: self.config.district.clone(),
                    }
                    .to_value();
                    let request = WsRequest::post("/heartbeat", body);
                    let id = self.ws_client.request(ctx, self.config.master, &request);
                    self.heartbeat_req = Some(id);
                } else {
                    // Registration response never came: retry now.
                    self.register(ctx);
                }
                ctx.set_timer(HEARTBEAT_INTERVAL, TAG_HEARTBEAT);
            }
            TAG_REGISTER_RETRY => self.register(ctx),
            // Probe the broker with the oldest parked sample; its ack
            // (or timeout) decides whether the backlog drains or the
            // backoff grows.
            TAG_REPLAY if self.broker_down => {
                if let Some(sample) = self.backlog.pop_front() {
                    if sample.trace != 0 {
                        ctx.trace_hop(
                            "proxy.replay",
                            sample.trace,
                            format!("device={} probe", self.config.device),
                        );
                    }
                    self.stats.replayed += 1;
                    ctx.telemetry().metrics.incr("proxy.replayed");
                    self.publish_sample(ctx, sample);
                }
            }
            TAG_REPLAY => {}
            tag if tag.0 >= POLL_TAGS => {
                self.poll_tracker.on_timer(ctx, tag);
            }
            tag if tag.0 >= PUBSUB_TAGS => {
                let event = match &mut self.pubsub {
                    Some(pubsub) => pubsub.on_timer(ctx, tag),
                    None => None,
                };
                if let Some(PubSubEvent::PublishTimedOut { id }) = event {
                    self.on_publish_timeout(ctx, id);
                }
            }
            tag if tag.0 >= WS_CLIENT_TAGS => {
                self.ws_client.on_timer(ctx, tag);
            }
            _ => {}
        }
    }
}
