//! The Database-proxy: translation of one legacy database to the common
//! data format.
//!
//! "Database-proxies are necessary to translate different databases,
//! each one encoded differently from the others, to a common data
//! format." Each proxy wraps one [`SourceTranslator`] — BIM tables, a
//! SIM fixed-width dump, a GIS feature database or a CSV measurement
//! archive — and serves:
//!
//! * `GET /model` — the full source translated to the common format;
//! * `GET /query?...` — source-specific filtered retrieval.

use dimmer_core::{DistrictId, Measurement, MeasurementBatch, ProxyId, Value};
use gis::feature::GisDatabase;
use gis::geo::{BoundingBox, GeoPoint};
use models::bim::{BimTables, BuildingModel};
use models::simmodel::NetworkModel;
use ontology::EntityNode;
use simnet::overload::{Admission, AdmissionGate};
use simnet::{Context, Node, Packet, SimDuration, TimerTag};
use storage::legacy::csv::CsvDocument;

use crate::registration::{ProxyRef, ProxyRole, Registration};
use crate::webservice::{status, WsClient, WsClientEvent, WsRequest, WsResponse, WsServer};
use crate::{node_uri, WS_PORT};

const TAG_HEARTBEAT: TimerTag = TimerTag(3);
const WS_CLIENT_TAGS: u64 = 1_000_000_000;
const HEARTBEAT_INTERVAL: SimDuration = SimDuration::from_secs(30);

/// Translates one legacy source into the common data format.
pub trait SourceTranslator: std::fmt::Debug + Send + 'static {
    /// The registration role this source plays (and the ontology payload
    /// it contributes). `proxy_uri` is the proxy's own Web-Service URI.
    fn role(&self, proxy_uri: &dimmer_core::Uri) -> ProxyRole;

    /// Translates the whole source.
    fn model(&self) -> Value;

    /// Answers a filtered query.
    fn query(&self, request: &WsRequest) -> WsResponse;
}

/// BIM source: the three relational tables of one building's export.
#[derive(Debug)]
pub struct BimSource {
    model: BuildingModel,
    tables: BimTables,
    location: Option<GeoPoint>,
    gis_feature: Option<String>,
}

impl BimSource {
    /// Wraps a BIM database dump.
    ///
    /// # Errors
    ///
    /// Returns an error when the tables cannot be reassembled into a
    /// building model (the translation the proxy exists to perform).
    pub fn new(tables: BimTables) -> Result<Self, Box<dyn std::error::Error>> {
        let model = BuildingModel::from_tables(&tables)?;
        Ok(BimSource {
            model,
            tables,
            location: None,
            gis_feature: None,
        })
    }

    /// Sets the building location for ontology registration.
    pub fn with_location(mut self, location: GeoPoint) -> Self {
        self.location = Some(location);
        self
    }

    /// Sets the GIS feature mapping for ontology registration.
    pub fn with_gis_feature(mut self, feature: impl Into<String>) -> Self {
        self.gis_feature = Some(feature.into());
        self
    }
}

impl SourceTranslator for BimSource {
    fn role(&self, proxy_uri: &dimmer_core::Uri) -> ProxyRole {
        let mut entity = EntityNode::building(self.model.building().clone(), proxy_uri.clone());
        if let Some(loc) = self.location {
            entity = entity.with_location(loc);
        }
        if let Some(feat) = &self.gis_feature {
            entity = entity.with_gis_feature(feat.clone());
        }
        entity = entity.with_properties(Value::object([
            (
                "floor_area_m2",
                Value::from(self.model.total_floor_area_m2()),
            ),
            (
                "heat_loss_w_per_k",
                Value::from(self.model.heat_loss_w_per_k()),
            ),
        ]));
        ProxyRole::EntityDatabase { entity }
    }

    fn model(&self) -> Value {
        self.model.to_value()
    }

    fn query(&self, request: &WsRequest) -> WsResponse {
        match request.query("table") {
            Some("spaces") => WsResponse::ok(self.tables.spaces.to_value()),
            Some("envelope") => WsResponse::ok(self.tables.envelope.to_value()),
            Some("equipment") => WsResponse::ok(self.tables.equipment.to_value()),
            Some(other) => WsResponse::error(status::NOT_FOUND, format!("unknown table {other:?}")),
            None => WsResponse::error(status::BAD_REQUEST, "table parameter required"),
        }
    }
}

/// SIM source: a fixed-width legacy dump of one distribution network.
#[derive(Debug)]
pub struct SimSource {
    model: NetworkModel,
    location: Option<GeoPoint>,
}

impl SimSource {
    /// Parses a legacy SIM dump.
    ///
    /// # Errors
    ///
    /// Returns an error when the dump does not parse.
    pub fn new(legacy_text: &str) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(SimSource {
            model: NetworkModel::from_legacy(legacy_text)?,
            location: None,
        })
    }

    /// Sets the network's reference location for ontology registration.
    pub fn with_location(mut self, location: GeoPoint) -> Self {
        self.location = Some(location);
        self
    }
}

impl SourceTranslator for SimSource {
    fn role(&self, proxy_uri: &dimmer_core::Uri) -> ProxyRole {
        let mut entity = EntityNode::network(self.model.network().clone(), proxy_uri.clone());
        if let Some(loc) = self.location {
            entity = entity.with_location(loc);
        }
        entity = entity.with_properties(Value::object([
            ("kind", Value::from(self.model.kind().as_str())),
            ("total_demand_kw", Value::from(self.model.total_demand_kw())),
        ]));
        ProxyRole::EntityDatabase { entity }
    }

    fn model(&self) -> Value {
        self.model.to_value()
    }

    fn query(&self, request: &WsRequest) -> WsResponse {
        match request.query("view") {
            Some("efficiency") => {
                let eff = self.model.delivery_efficiency();
                WsResponse::ok(Value::object(
                    eff.into_iter().map(|(k, v)| (k, Value::from(v))),
                ))
            }
            Some("unreachable") => WsResponse::ok(Value::Array(
                self.model
                    .unreachable_from_supply()
                    .into_iter()
                    .map(Value::from)
                    .collect(),
            )),
            Some(other) => WsResponse::error(status::NOT_FOUND, format!("unknown view {other:?}")),
            None => WsResponse::error(status::BAD_REQUEST, "view parameter required"),
        }
    }
}

/// GIS source: a georeferenced feature database.
#[derive(Debug)]
pub struct GisSource {
    db: GisDatabase,
}

impl GisSource {
    /// Wraps a GIS database.
    pub fn new(db: GisDatabase) -> Self {
        GisSource { db }
    }
}

impl SourceTranslator for GisSource {
    fn role(&self, _proxy_uri: &dimmer_core::Uri) -> ProxyRole {
        ProxyRole::Gis
    }

    fn model(&self) -> Value {
        self.db.to_value()
    }

    fn query(&self, request: &WsRequest) -> WsResponse {
        match request.query("bbox") {
            Some(raw) => match BoundingBox::parse_query(raw) {
                Ok(bbox) => WsResponse::ok(Value::object([(
                    "features",
                    Value::Array(
                        self.db
                            .query_bbox(&bbox)
                            .iter()
                            .map(gis::feature::Feature::to_value)
                            .collect(),
                    ),
                )])),
                Err(e) => WsResponse::error(status::BAD_REQUEST, e.to_string()),
            },
            None => match request.query("id") {
                Some(id) => match self.db.get(id) {
                    Some(f) => WsResponse::ok(f.to_value()),
                    None => WsResponse::error(status::NOT_FOUND, "unknown feature"),
                },
                None => WsResponse::error(status::BAD_REQUEST, "bbox or id parameter required"),
            },
        }
    }
}

/// Measurement-archive source: a CSV export of historical samples with
/// columns `timestamp,device,quantity,value,unit`.
#[derive(Debug)]
pub struct MeasurementArchiveSource {
    batch: MeasurementBatch,
}

impl MeasurementArchiveSource {
    /// Parses a CSV archive.
    ///
    /// # Errors
    ///
    /// Returns an error when the CSV or any record is malformed.
    pub fn new(csv_text: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let doc = CsvDocument::parse(csv_text)?;
        let need = |name: &str| -> Result<usize, Box<dyn std::error::Error>> {
            doc.column(name)
                .ok_or_else(|| format!("archive is missing column {name:?}").into())
        };
        let (t, d, q, v, u) = (
            need("timestamp")?,
            need("device")?,
            need("quantity")?,
            need("value")?,
            need("unit")?,
        );
        let mut batch = MeasurementBatch::new();
        for rec in &doc.records {
            batch.push(Measurement::new(
                dimmer_core::DeviceId::new(rec[d].as_str())?,
                dimmer_core::QuantityKind::parse(&rec[q])?,
                rec[v].parse()?,
                dimmer_core::Unit::parse(&rec[u])?,
                dimmer_core::Timestamp::parse(&rec[t])?,
            ));
        }
        Ok(MeasurementArchiveSource { batch })
    }

    /// Number of archived measurements.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True when the archive holds nothing.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }
}

impl SourceTranslator for MeasurementArchiveSource {
    fn role(&self, _proxy_uri: &dimmer_core::Uri) -> ProxyRole {
        ProxyRole::MeasurementArchive
    }

    fn model(&self) -> Value {
        self.batch.to_value()
    }

    fn query(&self, request: &WsRequest) -> WsResponse {
        let device = request.query("device");
        let quantity = request
            .query("quantity")
            .and_then(|q| dimmer_core::QuantityKind::parse(q).ok());
        let filtered: MeasurementBatch = self
            .batch
            .iter()
            .filter(|m| device.is_none_or(|d| m.device().as_str() == d))
            .filter(|m| quantity.is_none_or(|q| m.quantity() == q))
            .cloned()
            .collect();
        WsResponse::ok(filtered.to_value())
    }
}

/// Ingestion/serving counters.
#[derive(Debug, Clone, Default)]
pub struct DatabaseProxyStats {
    /// Web-Service requests served.
    pub ws_requests: u64,
    /// Queries (`/model`, `/query`) shed by the admission gate.
    pub ws_shed: u64,
}

/// Default admission bound on queued queries (`/model`, `/query`).
pub const DEFAULT_ADMISSION_CAPACITY: u64 = 32;
/// Default sustained query service rate (queries per second).
pub const DEFAULT_ADMISSION_RATE: f64 = 200.0;

/// The Database-proxy node.
pub struct DatabaseProxyNode {
    proxy: ProxyId,
    district: DistrictId,
    master: simnet::NodeId,
    source: Box<dyn SourceTranslator>,
    ws: WsServer,
    ws_client: WsClient,
    registered: bool,
    /// Correlation id of the in-flight heartbeat, so a 404 (the master
    /// evicted or forgot us) can trigger re-registration.
    heartbeat_req: Option<u64>,
    /// Admission gate over the query paths; the ops plane is never shed.
    gate: AdmissionGate,
    stats: DatabaseProxyStats,
}

impl std::fmt::Debug for DatabaseProxyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatabaseProxyNode")
            .field("proxy", &self.proxy)
            .field("district", &self.district)
            .field("registered", &self.registered)
            .finish()
    }
}

impl DatabaseProxyNode {
    /// Creates a Database-proxy over `source`, registering on `master`.
    pub fn new(
        proxy: ProxyId,
        district: DistrictId,
        master: simnet::NodeId,
        source: Box<dyn SourceTranslator>,
    ) -> Self {
        DatabaseProxyNode {
            proxy,
            district,
            master,
            source,
            ws: WsServer::new(),
            ws_client: WsClient::new(WS_CLIENT_TAGS),
            registered: false,
            heartbeat_req: None,
            gate: AdmissionGate::new(DEFAULT_ADMISSION_CAPACITY, DEFAULT_ADMISSION_RATE),
            stats: DatabaseProxyStats::default(),
        }
    }

    /// Replaces the query admission limits.
    pub fn set_admission_limits(&mut self, capacity: u64, drain_per_sec: f64) {
        self.gate = AdmissionGate::new(capacity, drain_per_sec);
    }

    /// Whether the master acknowledged registration.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// The counters.
    pub fn stats(&self) -> &DatabaseProxyStats {
        &self.stats
    }

    fn register(&mut self, ctx: &mut Context<'_>) {
        let uri = node_uri(ctx.node_id(), "/model");
        let registration = Registration {
            proxy: self.proxy.clone(),
            district: self.district.clone(),
            uri: node_uri(ctx.node_id(), "/"),
            role: self.source.role(&uri),
        };
        let request = WsRequest::post("/register", registration.to_value());
        self.ws_client.request(ctx, self.master, &request);
    }
}

impl Node for DatabaseProxyNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.register(ctx);
        ctx.set_timer(HEARTBEAT_INTERVAL, TAG_HEARTBEAT);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // The source model is durable; the WS session and registration
        // are not. Re-register from scratch.
        self.ws_client.reset();
        self.registered = false;
        self.heartbeat_req = None;
        ctx.telemetry().metrics.incr("proxy.restart");
        self.on_start(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != WS_PORT {
            return;
        }
        if let Some(event) = self.ws_client.accept(&pkt) {
            match event {
                WsClientEvent::Response { id, response } => {
                    if self.heartbeat_req == Some(id) {
                        self.heartbeat_req = None;
                        if response.status == status::NOT_FOUND {
                            // The master no longer knows us: re-register.
                            self.registered = false;
                            ctx.telemetry().metrics.incr("proxy.reregister");
                            self.register(ctx);
                        }
                    } else if response.is_ok() {
                        self.registered = true;
                    }
                }
                WsClientEvent::TimedOut { id } => {
                    if self.heartbeat_req == Some(id) {
                        self.heartbeat_req = None;
                    }
                }
            }
            return;
        }
        if let Some(call) = self.ws.accept(ctx, &pkt) {
            self.stats.ws_requests += 1;
            let response = match call.request.path.as_str() {
                "/model" | "/query" => {
                    match self.gate.try_admit(ctx.now(), &ctx.telemetry().metrics) {
                        Admission::Admitted if call.request.path == "/model" => {
                            WsResponse::ok(self.source.model())
                        }
                        Admission::Admitted => self.source.query(&call.request),
                        Admission::Shed { retry_after } => {
                            self.stats.ws_shed += 1;
                            WsResponse::unavailable(retry_after)
                        }
                    }
                }
                "/metrics" => WsResponse::ok(Value::from(ctx.telemetry().exposition())),
                "/health" => WsResponse::ok(Value::object([
                    ("status", Value::from("ok")),
                    ("proxy", Value::from(self.proxy.as_str())),
                    ("district", Value::from(self.district.as_str())),
                    ("kind", Value::from("database")),
                    ("registered", Value::from(self.registered)),
                    ("ws_requests", Value::from(self.stats.ws_requests as i64)),
                ])),
                _ => WsResponse::error(status::NOT_FOUND, "unknown path"),
            };
            self.ws.respond(ctx, &call, response);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        match tag {
            TAG_HEARTBEAT => {
                if self.registered {
                    let body = ProxyRef {
                        proxy: self.proxy.clone(),
                        district: self.district.clone(),
                    }
                    .to_value();
                    let id = self.ws_client.request(
                        ctx,
                        self.master,
                        &WsRequest::post("/heartbeat", body),
                    );
                    self.heartbeat_req = Some(id);
                } else {
                    self.register(ctx);
                }
                ctx.set_timer(HEARTBEAT_INTERVAL, TAG_HEARTBEAT);
            }
            tag if tag.0 >= WS_CLIENT_TAGS => {
                self.ws_client.on_timer(ctx, tag);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_core::BuildingId;

    #[test]
    fn bim_source_translates() {
        let bim = BuildingModel::sample(&BuildingId::new("b1").unwrap(), 2, 3);
        let source = BimSource::new(bim.to_tables())
            .unwrap()
            .with_location(GeoPoint::new(45.0, 7.6))
            .with_gis_feature("feat-1");
        let model = source.model();
        assert_eq!(model.get("building").and_then(Value::as_str), Some("b1"));
        let uri = dimmer_core::Uri::parse("sim://n1/model").unwrap();
        match source.role(&uri) {
            ProxyRole::EntityDatabase { entity } => {
                assert_eq!(entity.id(), "b1");
                assert!(entity.location().is_some());
                assert_eq!(entity.gis_feature(), Some("feat-1"));
                assert!(
                    entity
                        .properties()
                        .get("heat_loss_w_per_k")
                        .and_then(Value::as_f64)
                        .unwrap()
                        > 0.0
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Table queries.
        let resp = source.query(&WsRequest::get("/query").with_query("table", "spaces"));
        assert!(resp.is_ok());
        assert_eq!(resp.body.require_array("t", "rows").unwrap().len(), 6);
        assert!(!source
            .query(&WsRequest::get("/query").with_query("table", "ghost"))
            .is_ok());
        assert!(!source.query(&WsRequest::get("/query")).is_ok());
    }

    #[test]
    fn sim_source_translates() {
        let net = NetworkModel::sample(
            &dimmer_core::NetworkId::new("dh1").unwrap(),
            models::simmodel::NetworkKind::DistrictHeating,
            2,
            2,
        );
        let source = SimSource::new(&net.to_legacy().unwrap()).unwrap();
        let model = source.model();
        assert_eq!(model.get("network").and_then(Value::as_str), Some("dh1"));
        let resp = source.query(&WsRequest::get("/query").with_query("view", "efficiency"));
        assert!(resp.is_ok());
        assert_eq!(resp.body.as_object().unwrap().len(), 4, "four consumers");
        let resp = source.query(&WsRequest::get("/query").with_query("view", "unreachable"));
        assert_eq!(resp.body.as_array().unwrap().len(), 0);
    }

    #[test]
    fn gis_source_queries_bbox() {
        use gis::feature::{Feature, Geometry};
        let mut db = GisDatabase::new();
        db.insert(Feature::new(
            "f1",
            Geometry::Point(GeoPoint::new(45.05, 7.65)),
            Value::Null,
        ))
        .unwrap();
        db.insert(Feature::new(
            "f2",
            Geometry::Point(GeoPoint::new(52.0, 13.0)),
            Value::Null,
        ))
        .unwrap();
        let source = GisSource::new(db);
        let resp = source.query(&WsRequest::get("/query").with_query("bbox", "45.0,7.6,45.1,7.7"));
        assert!(resp.is_ok());
        assert_eq!(resp.body.require_array("t", "features").unwrap().len(), 1);
        let resp = source.query(&WsRequest::get("/query").with_query("id", "f2"));
        assert_eq!(resp.body.get("id").and_then(Value::as_str), Some("f2"));
        assert!(!source
            .query(&WsRequest::get("/query").with_query("bbox", "garbage"))
            .is_ok());
        assert!(!source.query(&WsRequest::get("/query")).is_ok());
    }

    #[test]
    fn measurement_archive_parses_and_filters() {
        let csv = "timestamp,device,quantity,value,unit\n\
                   2015-03-09T00:00:00Z,dev1,temperature,21.5,degC\n\
                   2015-03-09T00:01:00Z,dev2,active_power,1200,W\n\
                   2015-03-09T00:02:00Z,dev1,temperature,21.6,degC\n";
        let source = MeasurementArchiveSource::new(csv).unwrap();
        assert_eq!(source.len(), 3);
        let resp = source.query(&WsRequest::get("/query").with_query("device", "dev1"));
        let batch = MeasurementBatch::from_value(&resp.body).unwrap();
        assert_eq!(batch.len(), 2);
        let resp = source.query(&WsRequest::get("/query").with_query("quantity", "active_power"));
        let batch = MeasurementBatch::from_value(&resp.body).unwrap();
        assert_eq!(batch.len(), 1);

        // Malformed archives are rejected at construction (translation
        // failures surface at the proxy boundary, not at query time).
        assert!(MeasurementArchiveSource::new("nope\n1\n").is_err());
        assert!(MeasurementArchiveSource::new(
            "timestamp,device,quantity,value,unit\nbad,dev1,temperature,1,degC\n"
        )
        .is_err());
    }
}
