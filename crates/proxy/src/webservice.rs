//! The Web-Service layer shared by every proxy and the master node.
//!
//! Requests are REST-shaped — a method, a path, query parameters and a
//! common-data-format body — serialized in the client's chosen open
//! format (JSON or XML, one marker byte ahead of the text) and carried by
//! the [`simnet::rpc`] request/response framing. Servers route paths
//! against [`PathPattern`]s with `{param}` captures.

use std::collections::BTreeMap;

use dimmer_core::codec::{self, DataFormat};
use dimmer_core::{CoreError, Value};
use simnet::overload::RetryBudget;
use simnet::rpc::{RequestTracker, RpcEvent};
use simnet::{Context, NodeId, Packet, SimDuration, SimTime, TimerTag};

use crate::WS_PORT;

/// Default request timeout.
pub const REQUEST_TIMEOUT: SimDuration = SimDuration::from_secs(3);
/// Default retry count.
pub const REQUEST_RETRIES: u32 = 2;

/// Common status codes.
pub mod status {
    /// Success.
    pub const OK: u16 = 200;
    /// Malformed request.
    pub const BAD_REQUEST: u16 = 400;
    /// Unknown path or resource.
    pub const NOT_FOUND: u16 = 404;
    /// The server failed internally.
    pub const INTERNAL_ERROR: u16 = 500;
    /// The server is shedding load; retry after the advertised delay.
    pub const SERVICE_UNAVAILABLE: u16 = 503;
}

/// The request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Method {
    /// Retrieve data.
    #[default]
    Get,
    /// Mutate state (registration, actuation).
    Post,
}

impl Method {
    /// The canonical name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    /// Parses a canonical name.
    fn parse(s: &str) -> Option<Self> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

/// A Web-Service request.
#[derive(Debug, Clone, PartialEq)]
pub struct WsRequest {
    /// The method.
    pub method: Method,
    /// The path, starting with `/`.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// The body in the common data format (often `Null` for GET).
    pub body: Value,
    /// The open format this request (and its response) is encoded in.
    pub format: DataFormat,
}

impl WsRequest {
    /// A GET request for `path`.
    pub fn get(path: impl Into<String>) -> Self {
        WsRequest {
            method: Method::Get,
            path: path.into(),
            query: BTreeMap::new(),
            body: Value::Null,
            format: DataFormat::Json,
        }
    }

    /// A POST request for `path` carrying `body`.
    pub fn post(path: impl Into<String>, body: Value) -> Self {
        WsRequest {
            method: Method::Post,
            path: path.into(),
            query: BTreeMap::new(),
            body,
            format: DataFormat::Json,
        }
    }

    /// Adds a query parameter.
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Selects the open format (JSON default).
    pub fn with_format(mut self, format: DataFormat) -> Self {
        self.format = format;
        self
    }

    /// A query parameter.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// Serializes: one format byte, then the envelope in that format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let envelope = Value::object([
            ("method", Value::from(self.method.as_str())),
            ("path", Value::from(self.path.as_str())),
            (
                "query",
                Value::object(
                    self.query
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.as_str()))),
                ),
            ),
            ("body", self.body.clone()),
        ]);
        encode_with_marker(&envelope, self.format)
    }

    /// Deserializes bytes produced by [`WsRequest::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an unknown marker or malformed envelope.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let (envelope, format) = decode_with_marker(bytes)?;
        const T: &str = "ws request";
        let method =
            Method::parse(envelope.require_str(T, "method")?).ok_or_else(|| CoreError::Shape {
                target: T,
                reason: "unknown method".into(),
            })?;
        let mut query = BTreeMap::new();
        if let Some(map) = envelope.require(T, "query")?.as_object() {
            for (k, v) in map {
                query.insert(
                    k.clone(),
                    v.as_str()
                        .ok_or_else(|| CoreError::Shape {
                            target: T,
                            reason: "query values must be strings".into(),
                        })?
                        .to_owned(),
                );
            }
        }
        Ok(WsRequest {
            method,
            path: envelope.require_str(T, "path")?.to_owned(),
            query,
            body: envelope.get("body").cloned().unwrap_or(Value::Null),
            format,
        })
    }
}

/// A Web-Service response.
#[derive(Debug, Clone, PartialEq)]
pub struct WsResponse {
    /// The status code.
    pub status: u16,
    /// The body in the common data format.
    pub body: Value,
}

impl WsResponse {
    /// A 200 response with `body`.
    pub fn ok(body: Value) -> Self {
        WsResponse {
            status: status::OK,
            body,
        }
    }

    /// An error response carrying a `{error: reason}` body.
    pub fn error(status: u16, reason: impl Into<String>) -> Self {
        WsResponse {
            status,
            body: Value::object([("error", Value::from(reason.into()))]),
        }
    }

    /// A cheap 503 shed response advertising when to retry. The body
    /// carries only the reason and the `retry_after_ms` hint, so an
    /// overloaded server answers in a handful of bytes.
    pub fn unavailable(retry_after: SimDuration) -> Self {
        WsResponse {
            status: status::SERVICE_UNAVAILABLE,
            body: Value::object([
                ("error", Value::from("overloaded")),
                (
                    "retry_after_ms",
                    Value::from(retry_after.as_millis_f64().ceil() as i64),
                ),
            ]),
        }
    }

    /// The `Retry-After` hint of a shed response, when present.
    pub fn retry_after(&self) -> Option<SimDuration> {
        let ms = self.body.get("retry_after_ms")?.as_i64()?;
        Some(SimDuration::from_millis(ms.max(0) as u64))
    }

    /// True when the server shed this request at admission.
    pub fn is_shed(&self) -> bool {
        self.status == status::SERVICE_UNAVAILABLE
    }

    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Serializes in `format` (the request's format).
    pub fn to_bytes(&self, format: DataFormat) -> Vec<u8> {
        let envelope = Value::object([
            ("status", Value::from(i64::from(self.status))),
            ("body", self.body.clone()),
        ]);
        encode_with_marker(&envelope, format)
    }

    /// Deserializes bytes produced by [`WsResponse::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on an unknown marker or malformed envelope.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let (envelope, _) = decode_with_marker(bytes)?;
        const T: &str = "ws response";
        let status = envelope.require_i64(T, "status")?;
        if !(100..600).contains(&status) {
            return Err(CoreError::Shape {
                target: T,
                reason: "status out of range".into(),
            });
        }
        Ok(WsResponse {
            status: status as u16,
            body: envelope.get("body").cloned().unwrap_or(Value::Null),
        })
    }
}

fn encode_with_marker(envelope: &Value, format: DataFormat) -> Vec<u8> {
    let text = codec::encode_value(envelope, format);
    let mut out = Vec::with_capacity(text.len() + 1);
    out.push(match format {
        DataFormat::Json => 0,
        DataFormat::Xml => 1,
    });
    out.extend_from_slice(text.as_bytes());
    out
}

fn decode_with_marker(bytes: &[u8]) -> Result<(Value, DataFormat), CoreError> {
    let (&marker, text) = bytes.split_first().ok_or(CoreError::Shape {
        target: "ws envelope",
        reason: "empty payload".into(),
    })?;
    let format = match marker {
        0 => DataFormat::Json,
        1 => DataFormat::Xml,
        other => {
            return Err(CoreError::Shape {
                target: "ws envelope",
                reason: format!("unknown format marker {other}"),
            })
        }
    };
    let text = std::str::from_utf8(text).map_err(|_| CoreError::Shape {
        target: "ws envelope",
        reason: "payload is not utf-8".into(),
    })?;
    Ok((codec::decode_value(text, format)?, format))
}

/// A path pattern with `{param}` captures, e.g.
/// `/district/{id}/area`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPattern {
    segments: Vec<PatternSeg>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PatternSeg {
    Literal(String),
    Param(String),
}

impl PathPattern {
    /// Parses a pattern.
    ///
    /// # Panics
    ///
    /// Panics on an empty pattern or empty segments — patterns are
    /// compile-time constants in practice.
    pub fn new(pattern: &str) -> Self {
        assert!(pattern.starts_with('/'), "pattern must start with '/'");
        let segments = pattern[1..]
            .split('/')
            .map(|seg| {
                assert!(!seg.is_empty(), "empty segment in pattern {pattern:?}");
                if let Some(name) = seg.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                    PatternSeg::Param(name.to_owned())
                } else {
                    PatternSeg::Literal(seg.to_owned())
                }
            })
            .collect();
        PathPattern { segments }
    }

    /// Matches `path`, returning captured parameters on success.
    pub fn matches(&self, path: &str) -> Option<BTreeMap<String, String>> {
        let path = path.strip_prefix('/')?;
        let parts: Vec<&str> = if path.is_empty() {
            Vec::new()
        } else {
            path.split('/').collect()
        };
        if parts.len() != self.segments.len() {
            return None;
        }
        let mut params = BTreeMap::new();
        for (seg, part) in self.segments.iter().zip(parts) {
            match seg {
                PatternSeg::Literal(lit) if lit == part => {}
                PatternSeg::Literal(_) => return None,
                PatternSeg::Param(name) => {
                    params.insert(name.clone(), part.to_owned());
                }
            }
        }
        Some(params)
    }
}

/// An incoming call a server must answer.
#[derive(Debug, Clone, PartialEq)]
pub struct WsCall {
    /// Correlation id (pass back to [`WsServer::respond`]).
    pub id: u64,
    /// The requesting node.
    pub from: NodeId,
    /// The decoded request.
    pub request: WsRequest,
}

/// Server half of the Web-Service layer; embed in a [`simnet::Node`].
#[derive(Debug)]
pub struct WsServer {
    tracker: RequestTracker,
}

impl WsServer {
    /// Creates a server (servers never originate requests, so no tag
    /// namespace is needed).
    pub fn new() -> Self {
        WsServer {
            tracker: RequestTracker::new(u64::MAX / 2),
        }
    }

    /// Feeds an incoming packet; returns a call when it was a valid
    /// request. Malformed requests are answered with 400 automatically.
    pub fn accept(&mut self, ctx: &mut Context<'_>, pkt: &Packet) -> Option<WsCall> {
        match self.tracker.accept(pkt)? {
            RpcEvent::IncomingRequest { id, from, body, .. } => {
                match WsRequest::from_bytes(&body) {
                    Ok(request) => Some(WsCall { id, from, request }),
                    Err(e) => {
                        let resp = WsResponse::error(status::BAD_REQUEST, e.to_string());
                        self.tracker.respond(
                            ctx,
                            from,
                            WS_PORT,
                            id,
                            &resp.to_bytes(DataFormat::Json),
                        );
                        None
                    }
                }
            }
            _ => None,
        }
    }

    /// Sends the response for a previously accepted call.
    pub fn respond(&self, ctx: &mut Context<'_>, call: &WsCall, response: WsResponse) {
        self.tracker.respond(
            ctx,
            call.from,
            WS_PORT,
            call.id,
            &response.to_bytes(call.request.format),
        );
    }
}

impl Default for WsServer {
    fn default() -> Self {
        WsServer::new()
    }
}

/// Client-side events.
#[derive(Debug, Clone, PartialEq)]
pub enum WsClientEvent {
    /// The response to request `id` arrived.
    Response {
        /// Correlation id from [`WsClient::request`].
        id: u64,
        /// The decoded response (500 synthesized on decode failure).
        response: WsResponse,
    },
    /// Request `id` timed out after retries.
    TimedOut {
        /// Correlation id from [`WsClient::request`].
        id: u64,
    },
}

/// Client half of the Web-Service layer; embed in a [`simnet::Node`].
#[derive(Debug)]
pub struct WsClient {
    tracker: RequestTracker,
    /// Issue instants of in-flight requests, so callers can measure
    /// request latency (the breaker's gray-failure signal) without
    /// keeping their own books. Pruned on each new request.
    sent: BTreeMap<u64, SimTime>,
}

impl WsClient {
    /// Creates a client whose timers use tags from `tag_base`.
    pub fn new(tag_base: u64) -> Self {
        WsClient {
            tracker: RequestTracker::new(tag_base),
            sent: BTreeMap::new(),
        }
    }

    /// Number of requests in flight.
    pub fn outstanding(&self) -> usize {
        self.tracker.outstanding()
    }

    /// Forgets every in-flight request; call from a node's `on_restart`
    /// (the crash already cancelled the retry timers).
    pub fn reset(&mut self) {
        self.tracker.reset();
        self.sent.clear();
    }

    /// Attaches a shared retry budget to the underlying tracker (see
    /// [`RequestTracker::set_retry_budget`]).
    pub fn set_retry_budget(&mut self, budget: RetryBudget) {
        self.tracker.set_retry_budget(budget);
    }

    /// Sends `request` to the Web Service on `server`; returns the
    /// correlation id.
    pub fn request(&mut self, ctx: &mut Context<'_>, server: NodeId, request: &WsRequest) -> u64 {
        let tracker = &self.tracker;
        self.sent.retain(|id, _| tracker.is_pending(*id));
        let id = self.tracker.send_request(
            ctx,
            server,
            WS_PORT,
            request.to_bytes(),
            REQUEST_TIMEOUT,
            REQUEST_RETRIES,
        );
        self.sent.insert(id, ctx.now());
        id
    }

    /// Removes and returns the instant request `id` was issued. Call
    /// when its response (or timeout) arrives to measure the round-trip
    /// latency that feeds a circuit breaker.
    pub fn take_sent_at(&mut self, id: u64) -> Option<SimTime> {
        self.sent.remove(&id)
    }

    /// Feeds an incoming packet through the client.
    pub fn accept(&mut self, pkt: &Packet) -> Option<WsClientEvent> {
        match self.tracker.accept(pkt)? {
            RpcEvent::ResponseReceived { id, body } => {
                let response = WsResponse::from_bytes(&body)
                    .unwrap_or_else(|e| WsResponse::error(status::INTERNAL_ERROR, e.to_string()));
                Some(WsClientEvent::Response { id, response })
            }
            _ => None,
        }
    }

    /// Feeds a fired timer through the client.
    pub fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) -> Option<WsClientEvent> {
        match self.tracker.on_timer(ctx, tag)? {
            RpcEvent::RequestTimedOut { id } => Some(WsClientEvent::TimedOut { id }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_both_formats() {
        for format in DataFormat::all() {
            let req = WsRequest::get("/data")
                .with_query("from", "0")
                .with_query("to", "100")
                .with_format(format);
            let back = WsRequest::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(back, req, "{format}");
        }
    }

    #[test]
    fn post_body_round_trip() {
        let req = WsRequest::post("/register", Value::object([("proxy", Value::from("p1"))]));
        let back = WsRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.body.get("proxy").and_then(Value::as_str), Some("p1"));
    }

    #[test]
    fn response_round_trip() {
        for format in DataFormat::all() {
            let resp = WsResponse::ok(Value::object([("x", Value::from(1))]));
            let back = WsResponse::from_bytes(&resp.to_bytes(format)).unwrap();
            assert_eq!(back, resp);
        }
        let err = WsResponse::error(status::NOT_FOUND, "no such device");
        assert!(!err.is_ok());
        let back = WsResponse::from_bytes(&err.to_bytes(DataFormat::Json)).unwrap();
        assert_eq!(back.status, 404);
    }

    #[test]
    fn unavailable_round_trip_carries_retry_after() {
        let shed = WsResponse::unavailable(SimDuration::from_millis(750));
        assert!(shed.is_shed());
        assert!(!shed.is_ok());
        let back = WsResponse::from_bytes(&shed.to_bytes(DataFormat::Json)).unwrap();
        assert_eq!(back.status, status::SERVICE_UNAVAILABLE);
        assert_eq!(back.retry_after(), Some(SimDuration::from_millis(750)));
        assert_eq!(WsResponse::ok(Value::Null).retry_after(), None);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(WsRequest::from_bytes(&[]).is_err());
        assert!(WsRequest::from_bytes(&[9, b'{', b'}']).is_err());
        assert!(
            WsRequest::from_bytes(&[0, b'{', b'}']).is_err(),
            "missing members"
        );
        assert!(
            WsRequest::from_bytes(&[0, 0xFF, 0xFE]).is_err(),
            "not utf-8"
        );
        assert!(WsResponse::from_bytes(&[0]).is_err());
    }

    #[test]
    fn path_patterns() {
        let p = PathPattern::new("/district/{id}/area");
        let params = p.matches("/district/d1/area").unwrap();
        assert_eq!(params["id"], "d1");
        assert!(p.matches("/district/d1").is_none());
        assert!(p.matches("/district/d1/area/extra").is_none());
        assert!(p.matches("/other/d1/area").is_none());
        assert!(
            p.matches("district/d1/area").is_none(),
            "missing leading slash"
        );

        let root = PathPattern::new("/info");
        assert!(root.matches("/info").is_some());
        assert!(root.matches("/").is_none());
    }

    #[test]
    #[should_panic(expected = "start with")]
    fn pattern_requires_leading_slash() {
        PathPattern::new("no-slash");
    }

    // End-to-end over the simulator.
    use simnet::{Node, SimConfig, Simulator};

    struct EchoServer {
        server: WsServer,
    }

    impl Node for EchoServer {
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(call) = self.server.accept(ctx, &pkt) {
                let response = match call.request.path.as_str() {
                    "/info" => WsResponse::ok(Value::object([(
                        "echo",
                        Value::from(call.request.query("q").unwrap_or("")),
                    )])),
                    _ => WsResponse::error(status::NOT_FOUND, "unknown path"),
                };
                self.server.respond(ctx, &call, response);
            }
        }
    }

    struct TestClient {
        client: WsClient,
        server: NodeId,
        request: WsRequest,
        responses: Vec<WsResponse>,
        timeouts: usize,
    }

    impl Node for TestClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let request = self.request.clone();
            self.client.request(ctx, self.server, &request);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
                self.responses.push(response);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
            if let Some(WsClientEvent::TimedOut { .. }) = self.client.on_timer(ctx, tag) {
                self.timeouts += 1;
            }
        }
    }

    #[test]
    fn request_response_over_network() {
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node(
            "server",
            EchoServer {
                server: WsServer::new(),
            },
        );
        let client = sim.add_node(
            "client",
            TestClient {
                client: WsClient::new(1000),
                server,
                request: WsRequest::get("/info").with_query("q", "hello"),
                responses: vec![],
                timeouts: 0,
            },
        );
        sim.run_for(SimDuration::from_secs(5));
        let c = sim.node_ref::<TestClient>(client).unwrap();
        assert_eq!(c.responses.len(), 1);
        assert!(c.responses[0].is_ok());
        assert_eq!(
            c.responses[0].body.get("echo").and_then(Value::as_str),
            Some("hello")
        );
    }

    #[test]
    fn unknown_path_is_404_and_xml_works() {
        let mut sim = Simulator::new(SimConfig::default());
        let server = sim.add_node(
            "server",
            EchoServer {
                server: WsServer::new(),
            },
        );
        let client = sim.add_node(
            "client",
            TestClient {
                client: WsClient::new(1000),
                server,
                request: WsRequest::get("/ghost").with_format(DataFormat::Xml),
                responses: vec![],
                timeouts: 0,
            },
        );
        sim.run_for(SimDuration::from_secs(5));
        let c = sim.node_ref::<TestClient>(client).unwrap();
        assert_eq!(c.responses[0].status, status::NOT_FOUND);
    }
}
