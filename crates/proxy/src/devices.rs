//! Simulated field devices as network nodes.
//!
//! [`UplinkDeviceNode`] wraps a push device (802.15.4, ZigBee, EnOcean):
//! on a timer it samples its energy profile and transmits the encoded
//! frame to its Device-proxy. [`OpcUaFieldNode`] wraps the polled OPC UA
//! field server. Both substitute the physical hardware of the paper's
//! test sites.

use models::profiles::EnergyProfile;
use protocols::device::{CoapFieldServer, OpcUaFieldServer, UplinkDevice};
use simnet::rpc::{self, RpcFrame};
use simnet::{Context, Node, Packet, SimDuration, SimTime, TimerTag};

use crate::{COAP_PORT, DEVICE_UPLINK_PORT, OPCUA_PORT};

/// Converts simulated time to unix milliseconds given the scenario's
/// epoch offset (the unix time at simulation start).
pub fn unix_millis_at(epoch_offset_millis: i64, now: SimTime) -> i64 {
    epoch_offset_millis + (now.as_nanos() / 1_000_000) as i64
}

const TAG_EMIT: TimerTag = TimerTag(1);

/// A push device: samples its profile every `interval` and transmits the
/// protocol frame to its proxy.
pub struct UplinkDeviceNode {
    device: Box<dyn UplinkDevice>,
    profile: EnergyProfile,
    proxy: simnet::NodeId,
    interval: SimDuration,
    epoch_offset_millis: i64,
    /// Frames transmitted so far.
    pub frames_sent: u64,
    /// Raw actuation frames received from the proxy (most recent last).
    pub actuations: Vec<Vec<u8>>,
    /// The last value sampled (for test introspection).
    pub last_value: f64,
}

impl std::fmt::Debug for UplinkDeviceNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UplinkDeviceNode")
            .field("protocol", &self.device.protocol())
            .field("quantity", &self.device.quantity())
            .field("frames_sent", &self.frames_sent)
            .finish()
    }
}

impl UplinkDeviceNode {
    /// Creates a device that reports to `proxy` every `interval`.
    pub fn new(
        device: Box<dyn UplinkDevice>,
        profile: EnergyProfile,
        proxy: simnet::NodeId,
        interval: SimDuration,
        epoch_offset_millis: i64,
    ) -> Self {
        UplinkDeviceNode {
            device,
            profile,
            proxy,
            interval,
            epoch_offset_millis,
            frames_sent: 0,
            actuations: Vec::new(),
            last_value: 0.0,
        }
    }

    fn emit(&mut self, ctx: &mut Context<'_>) {
        let unix = unix_millis_at(self.epoch_offset_millis, ctx.now());
        let value = self.profile.sample(unix);
        self.last_value = value;
        let bytes = self.device.emit(value);
        // Every reading starts a fresh flight-recorder trace; the proxy
        // propagates the id into the pub/sub publish so the measurement
        // can be followed device → proxy → broker → subscriber.
        let trace = ctx.telemetry().tracer.next_trace_id();
        ctx.trace_hop(
            "device.sample",
            trace,
            format!(
                "protocol={:?} quantity={:?} value={value:.3}",
                self.device.protocol(),
                self.device.quantity()
            ),
        );
        ctx.telemetry().metrics.incr("device.samples");
        ctx.send_traced(self.proxy, DEVICE_UPLINK_PORT, bytes, trace);
        self.frames_sent += 1;
    }
}

impl Node for UplinkDeviceNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Desynchronize devices: first emission at a random fraction of
        // the interval, then periodic.
        let offset = ctx.rng().next_bounded(self.interval.as_nanos().max(1));
        ctx.set_timer(SimDuration::from_nanos(offset), TAG_EMIT);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
        // Downlink actuation frames from the proxy.
        self.actuations.push(pkt.payload);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TAG_EMIT {
            self.emit(ctx);
            ctx.set_timer(self.interval, TAG_EMIT);
        }
    }
}

/// A polled OPC UA field server: updates its live value every `interval`
/// and answers poll requests from its proxy.
pub struct OpcUaFieldNode {
    server: OpcUaFieldServer,
    profile: EnergyProfile,
    interval: SimDuration,
    epoch_offset_millis: i64,
    /// Polls answered so far.
    pub polls_answered: u64,
}

impl std::fmt::Debug for OpcUaFieldNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpcUaFieldNode")
            .field("quantity", &self.server.quantity())
            .field("polls_answered", &self.polls_answered)
            .finish()
    }
}

impl OpcUaFieldNode {
    /// Creates a field node refreshing its value every `interval`.
    pub fn new(
        server: OpcUaFieldServer,
        profile: EnergyProfile,
        interval: SimDuration,
        epoch_offset_millis: i64,
    ) -> Self {
        OpcUaFieldNode {
            server,
            profile,
            interval,
            epoch_offset_millis,
            polls_answered: 0,
        }
    }

    /// The wrapped server (e.g. to read its value node id).
    pub fn server(&self) -> &OpcUaFieldServer {
        &self.server
    }

    fn refresh(&mut self, now_millis: i64) {
        let value = self.profile.sample(now_millis);
        self.server.update(value, now_millis);
    }
}

impl Node for OpcUaFieldNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.refresh(unix_millis_at(self.epoch_offset_millis, ctx.now()));
        ctx.set_timer(self.interval, TAG_EMIT);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port != OPCUA_PORT {
            return;
        }
        // Poll requests arrive in rpc framing from the proxy's tracker.
        if let Ok(RpcFrame::Request { id, body }) = rpc::decode(&pkt.payload) {
            if let Ok(response) = self.server.handle_bytes(&body) {
                ctx.send(pkt.src, OPCUA_PORT, rpc::encode_response(id, &response));
                self.polls_answered += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TAG_EMIT {
            self.refresh(unix_millis_at(self.epoch_offset_millis, ctx.now()));
            ctx.set_timer(self.interval, TAG_EMIT);
        }
    }
}

/// A polled CoAP mote: refreshes its reading every `interval` and
/// answers CoAP GET/POST requests from its proxy.
pub struct CoapFieldNode {
    server: CoapFieldServer,
    profile: EnergyProfile,
    interval: SimDuration,
    epoch_offset_millis: i64,
    /// Requests answered so far.
    pub requests_answered: u64,
}

impl std::fmt::Debug for CoapFieldNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoapFieldNode")
            .field("quantity", &self.server.quantity())
            .field("requests_answered", &self.requests_answered)
            .finish()
    }
}

impl CoapFieldNode {
    /// Creates a mote refreshing its value every `interval`.
    pub fn new(
        server: CoapFieldServer,
        profile: EnergyProfile,
        interval: SimDuration,
        epoch_offset_millis: i64,
    ) -> Self {
        CoapFieldNode {
            server,
            profile,
            interval,
            epoch_offset_millis,
            requests_answered: 0,
        }
    }

    /// The wrapped server (e.g. to read received actuations).
    pub fn server(&self) -> &CoapFieldServer {
        &self.server
    }

    fn refresh(&mut self, now_millis: i64) {
        let value = self.profile.sample(now_millis);
        self.server.update(value, now_millis);
    }
}

impl Node for CoapFieldNode {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.refresh(unix_millis_at(self.epoch_offset_millis, ctx.now()));
        ctx.set_timer(self.interval, TAG_EMIT);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.port {
            COAP_PORT => {
                // Proxy polls arrive in rpc framing.
                if let Ok(RpcFrame::Request { id, body }) = rpc::decode(&pkt.payload) {
                    if let Ok(response) = self.server.handle_bytes(&body) {
                        ctx.send(pkt.src, COAP_PORT, rpc::encode_response(id, &response));
                        self.requests_answered += 1;
                    }
                }
            }
            // Raw actuation frames (no rpc framing) from /actuate.
            crate::DEVICE_DOWNLINK_PORT if self.server.handle_bytes(&pkt.payload).is_ok() => {
                self.requests_answered += 1;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        if tag == TAG_EMIT {
            self.refresh(unix_millis_at(self.epoch_offset_millis, ctx.now()));
            ctx.set_timer(self.interval, TAG_EMIT);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmer_core::QuantityKind;
    use protocols::device::ZigbeeSensor;
    use protocols::zigbee::ZigbeeFrame;
    use simnet::{LinkModel, SimConfig, Simulator};

    #[derive(Default)]
    struct Sink {
        frames: Vec<Vec<u8>>,
    }

    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
            self.frames.push(pkt.payload);
        }
    }

    #[test]
    fn uplink_device_emits_periodically() {
        let mut sim = Simulator::new(SimConfig {
            seed: 5,
            default_link: LinkModel::ideal(),
        });
        let sink = sim.add_node("proxy", Sink::default());
        let dev = sim.add_node(
            "dev",
            UplinkDeviceNode::new(
                Box::new(ZigbeeSensor::new(0x10, QuantityKind::Temperature)),
                EnergyProfile::for_quantity(QuantityKind::Temperature, 1),
                sink,
                SimDuration::from_secs(60),
                1_420_416_000_000,
            ),
        );
        sim.run_for(SimDuration::from_secs(600));
        let frames = &sim.node_ref::<Sink>(sink).unwrap().frames;
        // 10 minutes at 1/min: 9-11 frames depending on the start offset.
        assert!((9..=11).contains(&frames.len()), "{}", frames.len());
        assert_eq!(
            sim.node_ref::<UplinkDeviceNode>(dev).unwrap().frames_sent as usize,
            frames.len()
        );
        // Every frame is a decodable ZigBee report.
        for f in frames {
            ZigbeeFrame::decode(f).unwrap();
        }
    }

    #[test]
    fn opcua_field_node_answers_polls() {
        use protocols::opcua::{AttributeId, Message, ReadValueId};

        struct Poller {
            target: simnet::NodeId,
            value_node: protocols::opcua::NodeId,
            responses: Vec<Vec<u8>>,
        }
        impl Node for Poller {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let req = Message::ReadRequest {
                    nodes: vec![ReadValueId {
                        node_id: self.value_node.clone(),
                        attribute: AttributeId::Value,
                    }],
                }
                .encode();
                ctx.send(self.target, OPCUA_PORT, rpc::encode_request(0, &req));
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                if let Ok(RpcFrame::Response { body, .. }) = rpc::decode(&pkt.payload) {
                    self.responses.push(body);
                }
            }
        }

        let mut sim = Simulator::new(SimConfig::default());
        let server = OpcUaFieldServer::new(QuantityKind::ThermalEnergy);
        let value_node = server.value_node().clone();
        let field = sim.add_node(
            "plc",
            OpcUaFieldNode::new(
                server,
                EnergyProfile::for_quantity(QuantityKind::ThermalEnergy, 2),
                SimDuration::from_secs(10),
                0,
            ),
        );
        let poller = sim.add_node(
            "poller",
            Poller {
                target: field,
                value_node,
                responses: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(5));
        let p = sim.node_ref::<Poller>(poller).unwrap();
        assert_eq!(p.responses.len(), 1);
        match Message::decode(&p.responses[0]).unwrap() {
            Message::ReadResponse { results } => {
                assert!(results[0].status.is_good());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            sim.node_ref::<OpcUaFieldNode>(field)
                .unwrap()
                .polls_answered,
            1
        );
    }

    #[test]
    fn coap_field_node_answers_polls() {
        use protocols::coap::{CoapCode, CoapMessage};

        struct Poller {
            target: simnet::NodeId,
            responses: Vec<Vec<u8>>,
        }
        impl Node for Poller {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let req = CoapMessage::get(1, vec![9], "sensor").encode();
                ctx.send(self.target, COAP_PORT, rpc::encode_request(0, &req));
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
                if let Ok(RpcFrame::Response { body, .. }) = rpc::decode(&pkt.payload) {
                    self.responses.push(body);
                }
            }
        }

        let mut sim = Simulator::new(SimConfig::default());
        let mote = sim.add_node(
            "mote",
            CoapFieldNode::new(
                CoapFieldServer::new(QuantityKind::Co2),
                EnergyProfile::for_quantity(QuantityKind::Co2, 4),
                SimDuration::from_secs(10),
                0,
            ),
        );
        let poller = sim.add_node(
            "poller",
            Poller {
                target: mote,
                responses: vec![],
            },
        );
        sim.run_for(SimDuration::from_secs(5));
        let p = sim.node_ref::<Poller>(poller).unwrap();
        assert_eq!(p.responses.len(), 1);
        let msg = CoapMessage::decode(&p.responses[0]).unwrap();
        assert_eq!(msg.code, CoapCode::CONTENT);
        assert_eq!(
            sim.node_ref::<CoapFieldNode>(mote)
                .unwrap()
                .requests_answered,
            1
        );
    }

    #[test]
    fn unix_time_mapping() {
        assert_eq!(unix_millis_at(1_000, SimTime::ZERO), 1_000);
        assert_eq!(unix_millis_at(1_000, SimTime::from_secs(2)), 3_000);
    }
}
