//! Area monitoring: a dashboard application polling a district area.
//!
//! Motivating workload from the paper's introduction: "visualization and
//! simulation of energy consumption trends … to increase the energy
//! distribution network efficiency and promote user awareness". A
//! periodic client queries one area every five minutes, and the example
//! renders a tiny consumption dashboard from the integrated snapshots:
//! per-building power, district totals and the trend over time.
//!
//! Run with `cargo run --example area_monitor`.

use dimmer::core::codec::DataFormat;
use dimmer::core::QuantityKind;
use dimmer::district::client::{ClientConfig, ClientNode};
use dimmer::district::deploy::Deployment;
use dimmer::district::report::{fmt_f64, Table};
use dimmer::district::scenario::ScenarioConfig;
use dimmer::simnet::{SimConfig, SimDuration, Simulator};
use std::collections::BTreeMap;

fn main() {
    // A slightly larger district so the dashboard has content.
    let scenario = ScenarioConfig::small()
        .with_buildings(6)
        .with_devices_per_building(4)
        .build();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);

    // Warm-up: 20 minutes of reporting.
    sim.run_for(SimDuration::from_secs(1200));

    // The dashboard queries every 5 minutes for half an hour.
    let district = scenario.districts[0].district.clone();
    let client = sim.add_node(
        "dashboard",
        ClientNode::new(ClientConfig {
            master: deployment.master,
            district,
            bbox: scenario.districts[0].bbox(),
            data_window_millis: None,
            period: Some(SimDuration::from_secs(300)),
            format: DataFormat::Json,
        }),
    );
    sim.run_for(SimDuration::from_secs(1801));

    let snapshots = sim
        .node_ref::<ClientNode>(client)
        .expect("dashboard node")
        .snapshots()
        .to_vec();
    println!("collected {} snapshots\n", snapshots.len());

    // Trend table: measurements per snapshot (the "consumption trend"
    // view the paper motivates).
    let mut trend = Table::new(
        "Dashboard refreshes",
        [
            "t_sim_s",
            "entities",
            "measurements",
            "latency_ms",
            "errors",
        ],
    );
    for s in &snapshots {
        trend.row([
            fmt_f64(s.started_at.as_secs_f64(), 0),
            s.resolution.entities.len().to_string(),
            s.measurements.len().to_string(),
            fmt_f64(s.latency().as_millis_f64(), 2),
            s.errors.to_string(),
        ]);
    }
    println!("{trend}");

    // Per-building mean power from the last snapshot.
    let last = snapshots.last().expect("at least one snapshot");
    let mut by_device: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for m in last.measurements.iter() {
        if m.quantity() == QuantityKind::ActivePower {
            let e = by_device.entry(m.device().as_str()).or_insert((0.0, 0));
            e.0 += m.value();
            e.1 += 1;
        }
    }
    let mut power = Table::new(
        "Mean active power by metering device (last snapshot)",
        ["device", "samples", "mean_w"],
    );
    for (device, (sum, n)) in &by_device {
        power.row([
            (*device).to_owned(),
            n.to_string(),
            fmt_f64(sum / *n as f64, 1),
        ]);
    }
    println!("{power}");

    // District totals across quantities.
    let mut totals = Table::new(
        "Samples per quantity (last snapshot)",
        ["quantity", "samples"],
    );
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for m in last.measurements.iter() {
        *counts.entry(m.quantity().as_str()).or_default() += 1;
    }
    for (q, n) in counts {
        totals.row([q.to_owned(), n.to_string()]);
    }
    println!("{totals}");

    assert!(snapshots.len() >= 6);
    assert!(snapshots.iter().all(|s| s.errors == 0));
    println!("ok");
}
