//! District-heating analysis: integrating SIM, BIM and live data.
//!
//! The second motivating workload: "tracing energy consumption at
//! different levels of detail is crucial to increase distribution
//! networks efficiency". This example joins three heterogeneous sources
//! through their proxies — the SIM network model (delivery efficiency
//! per consumer), the BIM building models (envelope heat loss) and the
//! live thermal measurements — into one per-building efficiency report
//! no single source could produce.
//!
//! Run with `cargo run --example district_heating`.

use dimmer::core::{QuantityKind, Value};
use dimmer::district::client::ClientNode;
use dimmer::district::deploy::Deployment;
use dimmer::district::report::{fmt_f64, Table};
use dimmer::district::scenario::ScenarioConfig;
use dimmer::proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use dimmer::simnet::{Context, Node, Packet, SimConfig, SimDuration, Simulator, TimerTag};

/// Probes one proxy endpoint.
struct Probe {
    client: WsClient,
    target: dimmer::simnet::NodeId,
    request: WsRequest,
    response: Option<WsResponse>,
}

impl Node for Probe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let request = self.request.clone();
        self.client.request(ctx, self.target, &request);
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            self.response = Some(response);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

fn main() {
    let scenario = ScenarioConfig::small().with_buildings(8).build();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(900));

    // Source 1: the SIM Database-proxy's efficiency view.
    let sim_proxy = deployment.districts[0].sim_proxies[0];
    let probe = sim.add_node(
        "sim-probe",
        Probe {
            client: WsClient::new(1000),
            target: sim_proxy,
            request: WsRequest::get("/query").with_query("view", "efficiency"),
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(10));
    let efficiency = sim
        .node_ref::<Probe>(probe)
        .expect("probe")
        .response
        .clone()
        .expect("SIM proxy answered");
    assert!(efficiency.is_ok());
    println!(
        "SIM proxy: delivery efficiency for {} consumers",
        efficiency.body.as_object().map_or(0, |m| m.len())
    );

    // Source 2 + 3: BIM models and live thermal data via an area query.
    let district = scenario.districts[0].district.clone();
    let bbox = scenario.districts[0].bbox();
    let client = ClientNode::spawn(&mut sim, &deployment, district, bbox);
    sim.run_for(SimDuration::from_secs(30));
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .expect("client")
        .latest_snapshot()
        .expect("query done")
        .clone();

    // Join: per building, the BIM heat loss + live thermal/temperature
    // series + the network's delivery efficiency at its consumer.
    let consumers: Vec<(&String, f64)> = efficiency
        .body
        .as_object()
        .map(|m| {
            m.iter()
                .filter_map(|(k, v)| v.as_f64().map(|e| (k, e)))
                .collect()
        })
        .unwrap_or_default();

    let mut table = Table::new(
        "District heating: per-building integration",
        [
            "building",
            "heat_loss_w_per_k",
            "floor_m2",
            "thermal_samples",
            "mean_temp_c",
        ],
    );
    for entity in &snapshot.resolution.entities {
        let Some(model) = snapshot.entities.get(entity.id()) else {
            continue;
        };
        let Some(heat_loss) = model.get("heat_loss_w_per_k").and_then(Value::as_f64) else {
            continue; // networks have no envelope
        };
        let floor = model
            .get("floor_area_m2")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let device_ids: Vec<&str> = snapshot
            .resolution
            .devices
            .iter()
            .filter(|d| d.device().as_str().starts_with(entity.id()))
            .map(|d| d.device().as_str())
            .collect();
        let temps: Vec<f64> = snapshot
            .measurements
            .iter()
            .filter(|m| {
                m.quantity() == QuantityKind::Temperature
                    && device_ids.contains(&m.device().as_str())
            })
            .map(|m| m.value())
            .collect();
        let thermal = snapshot
            .measurements
            .iter()
            .filter(|m| {
                m.quantity() == QuantityKind::ThermalEnergy
                    && device_ids.contains(&m.device().as_str())
            })
            .count();
        let mean_temp = if temps.is_empty() {
            f64::NAN
        } else {
            temps.iter().sum::<f64>() / temps.len() as f64
        };
        table.row([
            entity.id().to_owned(),
            fmt_f64(heat_loss, 1),
            fmt_f64(floor, 0),
            thermal.to_string(),
            if mean_temp.is_nan() {
                "-".to_owned()
            } else {
                fmt_f64(mean_temp, 2)
            },
        ]);
    }
    println!("{table}");

    let mut eff_table = Table::new(
        "Network delivery efficiency (from the SIM proxy)",
        ["consumer", "efficiency"],
    );
    for (consumer, e) in &consumers {
        eff_table.row([(*consumer).clone(), fmt_f64(*e, 6)]);
    }
    println!("{eff_table}");

    assert!(!table.is_empty());
    assert!(!consumers.is_empty());
    println!("ok");
}
