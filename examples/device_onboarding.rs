//! Device onboarding: the paper's Fig. 1(b) walked layer by layer.
//!
//! One EnOcean temperature+humidity sensor is attached to a fresh
//! Device-proxy. The example traces a frame through the three proxy
//! layers — dedicated (ESP3/ERP1 decode), local database, Web Service +
//! publish/subscribe — and finishes with a remote actuation of a second,
//! switchable device.
//!
//! Run with `cargo run --example device_onboarding`.

use dimmer::core::{DeviceId, DistrictId, ProxyId, QuantityKind, Value};
use dimmer::master::MasterNode;
use dimmer::models::profiles::EnergyProfile;
use dimmer::protocols::device::EnoceanSensor;
use dimmer::protocols::enocean::Eep;
use dimmer::proxy::adapters::EnoceanAdapter;
use dimmer::proxy::device_proxy::{DeviceProxyConfig, DeviceProxyNode};
use dimmer::proxy::devices::UplinkDeviceNode;
use dimmer::proxy::webservice::{WsClient, WsClientEvent, WsRequest, WsResponse};
use dimmer::pubsub::{BrokerNode, PubSubClient, PubSubEvent, QoS, TopicFilter, PUBSUB_PORT};
use dimmer::simnet::{Context, Node, Packet, SimConfig, SimDuration, Simulator, TimerTag};

/// A monitoring application subscribed to every temperature in the
/// district through the middleware.
struct Monitor {
    client: PubSubClient,
    received: Vec<(String, String)>,
}

impl Node for Monitor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.client.subscribe(
            ctx,
            TopicFilter::new("district/+/entity/+/device/+/temperature").expect("valid"),
            QoS::AtLeastOnce,
        );
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.port == PUBSUB_PORT {
            if let Some(PubSubEvent::Message { topic, payload, .. }) = self.client.accept(ctx, &pkt)
            {
                self.received.push((
                    topic.to_string(),
                    String::from_utf8_lossy(&payload).into_owned(),
                ));
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

/// Fires one WS request and remembers the answer.
struct Probe {
    client: WsClient,
    target: dimmer::simnet::NodeId,
    request: WsRequest,
    response: Option<WsResponse>,
}

impl Node for Probe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let request = self.request.clone();
        self.client.request(ctx, self.target, &request);
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, pkt: Packet) {
        if let Some(WsClientEvent::Response { response, .. }) = self.client.accept(&pkt) {
            self.response = Some(response);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: TimerTag) {
        self.client.on_timer(ctx, tag);
    }
}

fn main() {
    let mut sim = Simulator::new(SimConfig::default());
    let district = DistrictId::new("d0").expect("valid id");
    let master = sim.add_node(
        "master",
        MasterNode::new([(district.clone(), "Demo".into())]),
    );
    let broker = sim.add_node("broker", BrokerNode::new());
    let monitor = sim.add_node(
        "monitor",
        Monitor {
            client: PubSubClient::new(broker, 100),
            received: vec![],
        },
    );

    // Layer 1 wiring: an EnOcean A5-04-01 sensor and its adapter.
    let sensor_id = 0x0180_92AB;
    let proxy = sim.add_node(
        "proxy-th",
        DeviceProxyNode::new(
            DeviceProxyConfig {
                proxy: ProxyId::new("proxy-th").expect("valid id"),
                district: district.clone(),
                entity_id: "b0".into(),
                device: DeviceId::new("th-sensor").expect("valid id"),
                primary_quantity: QuantityKind::Temperature,
                master,
                broker: Some(broker),
                device_node: None,
                poll_interval: None,
                retention: None,
                location: None,
                epoch_offset_millis: dimmer::district::DEFAULT_EPOCH_MILLIS,
                publish_qos: QoS::AtLeastOnce,
            },
            Box::new(EnoceanAdapter::new(sensor_id, Eep::A50401)),
        ),
    );
    let device = sim.add_node(
        "th-sensor",
        UplinkDeviceNode::new(
            Box::new(EnoceanSensor::new(sensor_id, Eep::A50401)),
            EnergyProfile::for_quantity(QuantityKind::Temperature, 7),
            proxy,
            SimDuration::from_secs(30),
            dimmer::district::DEFAULT_EPOCH_MILLIS,
        ),
    );
    sim.node_mut::<DeviceProxyNode>(proxy)
        .expect("proxy node")
        .set_device_node(device);

    // Let the sensor report for five minutes.
    sim.run_for(SimDuration::from_secs(300));

    // Layer 2: the local database filled up.
    {
        let p = sim.node_ref::<DeviceProxyNode>(proxy).expect("proxy node");
        println!(
            "dedicated layer decoded {} samples ({} decode errors)",
            p.stats().samples_ingested,
            p.stats().decode_errors
        );
        println!(
            "local database series: {:?} ({} points total)",
            p.store().series_names().collect::<Vec<_>>(),
            p.store().len()
        );
        assert!(p.is_registered(), "proxy registered on the master");
    }

    // Layer 3a: the Web Service serves translated data.
    let probe = sim.add_node(
        "probe",
        Probe {
            client: WsClient::new(1000),
            target: proxy,
            request: WsRequest::get("/latest").with_query("quantity", "temperature"),
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(5));
    let latest = sim
        .node_ref::<Probe>(probe)
        .expect("probe node")
        .response
        .clone()
        .expect("latest answered");
    println!(
        "GET /latest -> {} {}",
        latest.status,
        dimmer::core::json::to_string(&latest.body)
    );

    // Layer 3b: the middleware delivered to the monitoring application.
    let received = &sim
        .node_ref::<Monitor>(monitor)
        .expect("monitor node")
        .received;
    println!(
        "monitor received {} temperature publications",
        received.len()
    );
    println!("  first: {} {}", received[0].0, received[0].1);
    assert!(!received.is_empty());

    // Remote actuation: a rocker switch behind a second proxy.
    let switch_id = 0x0180_92AC;
    let switch_proxy = sim.add_node(
        "proxy-switch",
        DeviceProxyNode::new(
            DeviceProxyConfig {
                proxy: ProxyId::new("proxy-switch").expect("valid id"),
                district,
                entity_id: "b0".into(),
                device: DeviceId::new("rocker").expect("valid id"),
                primary_quantity: QuantityKind::SwitchState,
                master,
                broker: Some(broker),
                device_node: None,
                poll_interval: None,
                retention: None,
                location: None,
                epoch_offset_millis: dimmer::district::DEFAULT_EPOCH_MILLIS,
                publish_qos: QoS::AtMostOnce,
            },
            Box::new(EnoceanAdapter::new(switch_id, Eep::F60201)),
        ),
    );
    let switch = sim.add_node(
        "rocker",
        UplinkDeviceNode::new(
            Box::new(EnoceanSensor::new(switch_id, Eep::F60201)),
            EnergyProfile::for_quantity(QuantityKind::SwitchState, 8),
            switch_proxy,
            SimDuration::from_secs(3600), // quiet device
            dimmer::district::DEFAULT_EPOCH_MILLIS,
        ),
    );
    sim.node_mut::<DeviceProxyNode>(switch_proxy)
        .expect("proxy node")
        .set_device_node(switch);
    let actuator = sim.add_node(
        "actuator",
        Probe {
            client: WsClient::new(1000),
            target: switch_proxy,
            request: WsRequest::post("/actuate", Value::object([("value", Value::from(1.0))])),
            response: None,
        },
    );
    sim.run_for(SimDuration::from_secs(5));
    let actuated = sim
        .node_ref::<Probe>(actuator)
        .expect("actuator node")
        .response
        .clone()
        .expect("actuation answered");
    let frames = &sim
        .node_ref::<UplinkDeviceNode>(switch)
        .expect("switch")
        .actuations;
    println!(
        "POST /actuate -> {} ; device received {} downlink frame(s)",
        actuated.status,
        frames.len()
    );
    assert!(actuated.is_ok());
    assert_eq!(frames.len(), 1);
    println!("ok");
}
