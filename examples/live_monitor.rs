//! Live monitoring: the event-driven alternative to polling.
//!
//! The paper's middleware heritage is event-driven: once an application
//! knows which devices cover its area (one redirect query), it can
//! *subscribe* and let the data come to it. This example runs a polling
//! dashboard and a live monitor side by side over the same area and
//! compares their traffic and freshness.
//!
//! Run with `cargo run --example live_monitor`.

use dimmer::core::codec::DataFormat;
use dimmer::district::client::{ClientConfig, ClientNode};
use dimmer::district::deploy::Deployment;
use dimmer::district::live::LiveMonitorNode;
use dimmer::district::report::Table;
use dimmer::district::scenario::ScenarioConfig;
use dimmer::simnet::{SimConfig, SimDuration, Simulator};

fn main() {
    let scenario = ScenarioConfig::small().build();
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    sim.run_for(SimDuration::from_secs(300));

    let district = scenario.districts[0].district.clone();
    let bbox = scenario.districts[0].bbox();

    // Contestant 1: a polling client, refreshing every minute.
    let poller = sim.add_node(
        "poller",
        ClientNode::new(ClientConfig {
            master: deployment.master,
            district: district.clone(),
            bbox,
            data_window_millis: None,
            period: Some(SimDuration::from_secs(60)),
            format: DataFormat::Json,
        }),
    );
    // Contestant 2: the live monitor — one resolution, then events only.
    let live = sim.add_node(
        "live",
        LiveMonitorNode::new(deployment.master, deployment.broker, district, bbox),
    );
    sim.reset_metrics();
    sim.run_for(SimDuration::from_secs(1800));

    let poll_metrics = sim.node_metrics(poller);
    let live_metrics = sim.node_metrics(live);
    let poll_snapshots = sim
        .node_ref::<ClientNode>(poller)
        .expect("poller")
        .snapshots()
        .len();
    let live_node = sim.node_ref::<LiveMonitorNode>(live).expect("live");

    let mut table = Table::new(
        "Polling dashboard vs event-driven live monitor (30 min)",
        [
            "client",
            "refreshes/updates",
            "packets_sent",
            "bytes_received",
        ],
    );
    table.row([
        "polling (60 s)".to_owned(),
        poll_snapshots.to_string(),
        poll_metrics.packets_sent.to_string(),
        poll_metrics.bytes_received.to_string(),
    ]);
    table.row([
        "live monitor".to_owned(),
        live_node.stats().updates.to_string(),
        live_metrics.packets_sent.to_string(),
        live_metrics.bytes_received.to_string(),
    ]);
    println!("{table}");

    println!("live series (latest values):");
    for (key, value) in live_node.series().iter().take(6) {
        println!(
            "  {:<24} {:<18} {:>9.2} {}  (arrived {})",
            key.0,
            key.1,
            value.measurement.value(),
            value.measurement.unit(),
            value.arrived_at
        );
    }
    assert!(live_node.stats().updates as usize > poll_snapshots);
    assert!(live_metrics.packets_sent < poll_metrics.packets_sent);
    println!("ok");
}
