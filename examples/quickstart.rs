//! Quickstart: deploy a small district, let it run, query an area.
//!
//! This walks the exact flow of the paper's §II: proxies register on the
//! master, devices report through their Device-proxies, and an end-user
//! application asks the master for an area, gets redirected to the
//! proxies, and integrates the translated data.
//!
//! Run with `cargo run --example quickstart`.

use dimmer::district::client::ClientNode;
use dimmer::district::deploy::Deployment;
use dimmer::district::scenario::ScenarioConfig;
use dimmer::master::MasterNode;
use dimmer::simnet::{SimConfig, SimDuration, Simulator};

fn main() {
    // 1. A deterministic synthetic district: 4 buildings, 12 devices
    //    across all four protocols, one heating network.
    let scenario = ScenarioConfig::small().build();
    println!(
        "scenario: {} district(s), {} buildings, {} devices",
        scenario.districts.len(),
        scenario.building_count(),
        scenario.device_count()
    );

    // 2. Deploy it on the simulated network: master, broker, one proxy
    //    per data source, one node per device.
    let mut sim = Simulator::new(SimConfig::default());
    let deployment = Deployment::build(&mut sim, &scenario);
    println!("deployed {} nodes", deployment.node_count());

    // 3. Run for 15 simulated minutes: everything registers, devices
    //    sample once a minute, proxies ingest, translate and publish.
    sim.run_for(SimDuration::from_secs(900));
    let master = sim
        .node_ref::<MasterNode>(deployment.master)
        .expect("master is a MasterNode");
    println!(
        "after 15 min: {} proxies registered, ontology holds {} entities / {} devices",
        master.proxy_count(),
        master.ontology().entity_count(),
        master.ontology().device_count()
    );

    // 4. The end-user application queries the whole district area.
    let district = scenario.districts[0].district.clone();
    let bbox = scenario.districts[0].bbox();
    let client = ClientNode::spawn(&mut sim, &deployment, district, bbox);
    sim.run_for(SimDuration::from_secs(30));

    // 5. Inspect the integrated snapshot.
    let snapshot = sim
        .node_ref::<ClientNode>(client)
        .expect("client node")
        .latest_snapshot()
        .expect("query completed")
        .clone();
    println!(
        "area query: {} entities, {} device series, {} measurements, {} request(s), {:?} end-to-end",
        snapshot.resolution.entities.len(),
        snapshot.resolution.devices.len(),
        snapshot.measurements.len(),
        snapshot.requests,
        snapshot.latency()
    );
    for entity in &snapshot.resolution.entities {
        let heat_loss = snapshot
            .entities
            .get(entity.id())
            .and_then(|m| m.get("heat_loss_w_per_k"))
            .and_then(dimmer::core::Value::as_f64);
        match heat_loss {
            Some(h) => println!("  building {:<10} heat loss {h:8.1} W/K", entity.id()),
            None => println!("  network  {:<10} (SIM model fetched)", entity.id()),
        }
    }
    assert!(snapshot.errors == 0, "the quickstart must complete cleanly");
    println!("ok");
}
